"""Seeded random program generation for the soundness fuzzer.

The generator produces well-typed programs in the supported C subset —
scalar assignments, pointer stores through a may-aliased pointer,
procedure calls (including the call-result-into-a-global shape that bit
PR 4), bounded loops, branches, nondeterministic reads, extern calls,
and asserts — together with a predicate set biased toward the program's
own guard conditions (the predicates SLAM itself would discover).

Programs are kept as a small *structural* representation (:class:`GStmt`
trees inside a :class:`GProgram`) rather than flat text so the shrinker
(:mod:`repro.fuzz.shrink`) can delete statements, unwrap branches, and
drop predicates while every intermediate candidate stays parseable.
Rendering is deterministic; all randomness flows through the single
``random.Random`` owned by :class:`ProgramGenerator`.

Generated programs always terminate: loops are bounded by dedicated
fresh counters, and the only recursion-free call graph is main ->
helper.  Division and modulo are never generated (no division-by-zero
traps), and the alias pointer is initialized before any dereference.
"""

import copy
import random
import re

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Scalar locals every generated main owns (whether or not they are used;
#: unused declarations are legal and keep rendering simple).
MAIN_VARS = ("a", "b", "c")
HELPER_VARS = ("p", "h")
POINTER = "pt"
EXTERN = "mystery"


# -- the structural statement language -------------------------------------------


class GStmt:
    """Base class; subclasses are plain data and deep-copyable."""

    def render(self, lines, indent):
        raise NotImplementedError

    def blocks(self):
        """Mutable nested statement lists (for the shrinker)."""
        return []


class GAssign(GStmt):
    def __init__(self, lhs, rhs):
        self.lhs = lhs  # variable name, or "*pt" for a pointer store
        self.rhs = rhs  # rendered expression text

    def render(self, lines, indent):
        lines.append("%s%s = %s;" % (indent, self.lhs, self.rhs))


class GCall(GStmt):
    def __init__(self, target, callee, args):
        self.target = target  # variable name, or None for a bare call
        self.callee = callee
        self.args = list(args)

    def render(self, lines, indent):
        call = "%s(%s)" % (self.callee, ", ".join(self.args))
        if self.target is None:
            lines.append("%s%s;" % (indent, call))
        else:
            lines.append("%s%s = %s;" % (indent, self.target, call))


class GIf(GStmt):
    def __init__(self, cond, then_block, else_block):
        self.cond = cond
        self.then_block = list(then_block)
        self.else_block = list(else_block)

    def render(self, lines, indent):
        lines.append("%sif (%s) {" % (indent, self.cond))
        render_block(self.then_block, lines, indent + "    ")
        if self.else_block:
            lines.append("%s} else {" % indent)
            render_block(self.else_block, lines, indent + "    ")
        lines.append("%s}" % indent)

    def blocks(self):
        return [self.then_block, self.else_block]


class GLoop(GStmt):
    """A loop bounded by a dedicated fresh counter (guarantees termination)."""

    def __init__(self, counter, bound, body):
        self.counter = counter
        self.bound = bound
        self.body = list(body)

    def render(self, lines, indent):
        lines.append("%s%s = 0;" % (indent, self.counter))
        lines.append("%swhile (%s < %d) {" % (indent, self.counter, self.bound))
        lines.append("%s    %s = %s + 1;" % (indent, self.counter, self.counter))
        render_block(self.body, lines, indent + "    ")
        lines.append("%s}" % indent)

    def blocks(self):
        return [self.body]


class GAssert(GStmt):
    def __init__(self, cond):
        self.cond = cond

    def render(self, lines, indent):
        lines.append("%sassert(%s);" % (indent, self.cond))


def render_block(block, lines, indent):
    for stmt in block:
        stmt.render(lines, indent)


# -- the whole program ------------------------------------------------------------


class GProgram:
    """A generated program plus its predicate set, re-renderable at will."""

    def __init__(self):
        self.globals = []  # global int names
        self.helper = None  # (params, body, return expr) or None
        self.main_params = []  # formal int parameter names of main
        self.main_body = []  # [GStmt]
        # (scope, text) pairs; scope is "global", "main", or "helper".
        self.predicates = []

    def clone(self):
        return copy.deepcopy(self)

    # -- rendering -------------------------------------------------------------

    def helper_body_blocks(self):
        return [self.helper[1]] if self.helper is not None else []

    def _words_used(self):
        lines = []
        render_block(self.main_body, lines, "")
        if self.helper is not None:
            render_block(self.helper[1], lines, "")
            lines.append(self.helper[2])
        lines.extend(text for _, text in self.predicates)
        return set(_WORD.findall("\n".join(lines)))

    def _counters(self, block, found):
        for stmt in block:
            if isinstance(stmt, GLoop):
                found.add(stmt.counter)
            for sub in stmt.blocks():
                self._counters(sub, found)
        return found

    def render_source(self):
        used = self._words_used()
        lines = []
        for name in self.globals:
            lines.append("int %s;" % name)
        if self.helper is not None:
            params, body, ret = self.helper
            counters = sorted(self._counters(body, set()))
            decls = [v for v in HELPER_VARS if v not in params] + counters
            lines.append("int helper(%s) {" % ", ".join("int %s" % p for p in params))
            if decls:
                lines.append("    int %s;" % ", ".join(decls))
            render_block(body, lines, "    ")
            lines.append("    return %s;" % ret)
            lines.append("}")
        params = ", ".join("int %s" % p for p in self.main_params) or "void"
        counters = sorted(self._counters(self.main_body, set()))
        lines.append("void main(%s) {" % params)
        lines.append("    int %s;" % ", ".join(list(MAIN_VARS) + counters))
        if POINTER in used:
            lines.append("    int *%s;" % POINTER)
            lines.append("    %s = &a;" % POINTER)
        for var in MAIN_VARS:
            lines.append("    %s = 0;" % var)
        render_block(self.main_body, lines, "    ")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def render_predicates(self):
        sections = {"global": [], "main": [], "helper": []}
        for scope, text in self.predicates:
            if text not in sections[scope]:
                sections[scope].append(text)
        parts = []
        for scope, name in (("global", "global"), ("helper", "helper"), ("main", "main")):
            if scope == "helper" and self.helper is None:
                continue
            if sections[scope]:
                parts.append("%s\n%s\n" % (name, ", ".join(sections[scope])))
        return "\n".join(parts) if parts else "main\na == 0\n"


class FuzzCase:
    """One generated (or corpus-loaded) program + predicates + run plan."""

    def __init__(self, name, gprog=None, source=None, predicate_text=None,
                 args_list=((),), oracle_seeds=(0,), entry="main"):
        self.name = name
        self.gprog = gprog
        self._source = source
        self._predicate_text = predicate_text
        self.args_list = [tuple(a) for a in args_list]
        self.oracle_seeds = list(oracle_seeds)
        self.entry = entry

    @property
    def source(self):
        if self.gprog is not None:
            return self.gprog.render_source()
        return self._source

    @property
    def predicate_text(self):
        if self.gprog is not None:
            return self.gprog.render_predicates()
        return self._predicate_text

    def with_program(self, gprog):
        clone = FuzzCase(
            self.name,
            gprog=gprog,
            args_list=self.args_list,
            oracle_seeds=self.oracle_seeds,
            entry=self.entry,
        )
        return clone

    def fingerprint(self):
        return (self.source, self.predicate_text, tuple(self.args_list),
                tuple(self.oracle_seeds))

    def __repr__(self):
        return "FuzzCase(%s)" % self.name


# -- the generator ---------------------------------------------------------------


class ProgramGenerator:
    """Deterministic program generation from one seeded ``random.Random``.

    ``generate(index)`` derives a per-case RNG from (seed, index) so cases
    are independent of generation order; the same (seed, index) always
    yields a byte-identical case.
    """

    def __init__(self, seed=0, bit_weight=False):
        self.seed = seed
        # Also emit bitwise expressions (& | <<) and near-INT16_MAX
        # constants — the scenario family only the bit-precise BMC oracle
        # can judge.  Off by default: the flag must not perturb the
        # default RNG stream, so every draw it adds is gated on it.
        self.bit_weight = bit_weight

    def generate(self, index):
        rng = random.Random("fuzz:%s:%d" % (self.seed, index))
        builder = _CaseBuilder(rng, bit_weight=self.bit_weight)
        gprog = builder.build()
        nargs = len(gprog.main_params)
        args_list = [
            tuple(rng.randint(-3, 4) for _ in range(nargs))
            for _ in range(2 if nargs else 1)
        ]
        oracle_seeds = [rng.randint(0, 10_000) for _ in range(2)]
        return FuzzCase(
            "fuzz-%s-%d" % (self.seed, index),
            gprog=gprog,
            args_list=args_list,
            oracle_seeds=oracle_seeds,
        )

    def cases(self, count, start=0):
        for index in range(start, start + count):
            yield self.generate(index)


#: Constants next to the 16-bit extremes: one arithmetic step away from
#: wrapping, so they separate mathematical-integer semantics from the
#: fixed-width semantics the BMC oracle checks.
NEAR_INT16_MAX = ("32767", "32766", "32765", "-32768", "-32767", "16384")


class _CaseBuilder:
    def __init__(self, rng, bit_weight=False):
        self.rng = rng
        self.bit_weight = bit_weight
        self.use_global = rng.random() < 0.6
        self.use_helper = rng.random() < 0.6
        self.use_pointer = rng.random() < 0.4
        self.helper_writes_global = self.use_global and rng.random() < 0.6
        # Pointer writes across the call boundary: helper takes an
        # out-parameter ``int *q`` and stores through it; call sites pass
        # ``&a`` / ``&b`` (or ``&g``), so the callee's ``*q`` write aliases
        # the caller's locals — the shape mod/ref summaries must treat as
        # a wildcard write.
        self.use_out_param = self.use_helper and rng.random() < 0.4
        self._counter_id = 0
        self._guards = []  # harvested (scope, cond) pairs
        self._main_params = []

    # -- expressions -----------------------------------------------------------

    def _scope_vars(self, scope):
        if scope == "helper":
            names = list(HELPER_VARS)
            if self.use_out_param:
                names.append("*q")
        else:
            names = list(MAIN_VARS) + list(self._main_params)
            if self.use_pointer:
                names.append("*" + POINTER)
        if self.use_global:
            names.append("g")
        return names

    def expr(self, scope, depth=0):
        rng = self.rng
        # The bit_weight check comes before any RNG draw so the default
        # generator stream is byte-identical with the flag off.
        if self.bit_weight and depth < 2 and rng.random() < 0.25:
            return self._bit_expr(scope, depth)
        choice = rng.randint(0, 3 if depth < 2 else 1)
        if choice == 0:
            return str(rng.randint(-3, 3))
        if choice == 1:
            return rng.choice(self._scope_vars(scope))
        op = rng.choice(["+", "-", "*"])
        return "(%s %s %s)" % (self.expr(scope, depth + 1), op, self.expr(scope, depth + 1))

    def _bit_expr(self, scope, depth):
        rng = self.rng
        choice = rng.randint(0, 3)
        if choice == 0:
            return rng.choice(NEAR_INT16_MAX)
        if choice == 1:
            # Constant shift counts only: variable amounts could go
            # negative, which the unbounded interpreter rejects.
            return "(%s << %d)" % (self.expr(scope, depth + 1), rng.randint(1, 4))
        op = "&" if choice == 2 else "|"
        return "(%s %s %s)" % (
            self.expr(scope, depth + 1), op, self.expr(scope, depth + 1)
        )

    def cond(self, scope):
        rng = self.rng
        op = rng.choice(["<", "<=", "==", "!=", ">", ">="])
        left = rng.choice(self._scope_vars(scope))
        right = self.expr(scope, depth=1)
        text = "%s %s %s" % (left, op, right)
        self._guards.append((scope, text))
        return text

    # -- statements ------------------------------------------------------------

    def _fresh_counter(self):
        name = "k%d" % self._counter_id
        self._counter_id += 1
        return name

    def stmt(self, scope, depth):
        rng = self.rng
        roll = rng.random()
        if depth < 2 and roll < 0.14:
            else_block = self.block(scope, depth + 1) if rng.random() < 0.6 else []
            return GIf(self.cond(scope), self.block(scope, depth + 1), else_block)
        if depth < 2 and roll < 0.22:
            return GLoop(
                self._fresh_counter(), rng.randint(2, 3), self.block(scope, depth + 1)
            )
        if roll < 0.30:
            # Asserts are biased toward (but not guaranteed) to hold; the
            # oracle treats a concretely failing assert as end-of-trace.
            if rng.random() < 0.7:
                cond = "%s < %d" % (rng.choice(self._scope_vars(scope)), rng.randint(20, 99))
            else:
                cond = self.cond(scope)
            return GAssert(cond)
        if scope == "main" and self.use_helper and roll < 0.45:
            targets = list(MAIN_VARS) + [None]
            if self.use_global:
                # The PR-4 shape: a call result bound to a global the
                # callee itself may write.
                targets += ["g", "g"]
            args = [self.expr(scope, 1)]
            if self.use_out_param:
                cells = ["a", "b"]
                if self.use_global:
                    cells.append("g")
                args.append("&" + rng.choice(cells))
            return GCall(rng.choice(targets), "helper", args)
        if roll < 0.52:
            return GAssign(rng.choice(self._assign_targets(scope)), "*")
        if roll < 0.58 and scope == "main":
            return GCall(rng.choice(list(MAIN_VARS)), EXTERN, [self.expr(scope, 1)])
        return GAssign(rng.choice(self._assign_targets(scope)), self.expr(scope))

    def _assign_targets(self, scope):
        if scope == "helper":
            targets = ["h", "h", "p"]
            if self.use_out_param:
                targets.extend(["*q", "*q"])
            if self.helper_writes_global:
                targets.append("g")
            return targets
        targets = list(MAIN_VARS) * 2
        if self.use_global:
            targets.append("g")
        if self.use_pointer:
            targets.extend(["*" + POINTER, "*" + POINTER])
        return targets

    def block(self, scope, depth):
        count = self.rng.randint(1, 3 if depth else 5)
        block = [self.stmt(scope, depth) for _ in range(count)]
        if scope == "main" and self.use_pointer and depth == 0:
            # Occasionally retarget the alias pointer so stores through it
            # exercise the Morris-axiom disjunctions on both cells.
            if self.rng.random() < 0.5:
                index = self.rng.randint(0, len(block))
                cells = ["a", "b"]
                if self.use_global:
                    cells.append("g")
                block.insert(index, GAssign(POINTER, "&" + self.rng.choice(cells)))
        return block

    # -- predicates ------------------------------------------------------------

    def _predicate_scope(self, scope, text):
        words = set(_WORD.findall(text))
        if scope == "helper":
            return "helper"
        if words & (set(MAIN_VARS) | set(self._main_params) | {POINTER}):
            return "main"
        if self.use_global and "g" in words:
            return "global"
        return "main"

    def predicates(self):
        rng = self.rng
        preds = []
        # Bias toward the program's own guards (what Newton would find).
        harvested = [g for g in self._guards if rng.random() < 0.6]
        for scope, text in harvested[:3]:
            preds.append((self._predicate_scope(scope, text), text))
        for _ in range(rng.randint(1, 3)):
            scope = "helper" if (self.use_helper and rng.random() < 0.3) else "main"
            vars_ = self._scope_vars(scope)
            left = rng.choice(vars_)
            op = rng.choice(["<", "<=", "==", ">", ">="])
            right = rng.choice([str(rng.randint(-3, 3)), rng.choice(vars_)])
            text = "%s %s %s" % (left, op, right)
            preds.append((self._predicate_scope(scope, text), text))
        if self.use_global and rng.random() < 0.7:
            preds.append(("global", "g %s %d" % (rng.choice(["==", ">", "<="]), rng.randint(-2, 3))))
        return preds[:6]

    # -- assembly ---------------------------------------------------------------

    def build(self):
        rng = self.rng
        prog = GProgram()
        if self.use_global:
            prog.globals = ["g"]
        self._main_params = ["n%d" % i for i in range(rng.randint(0, 2))]
        prog.main_params = list(self._main_params)
        if self.use_helper:
            body = [GAssign("h", self.expr("helper"))]
            if rng.random() < 0.6:
                body.append(
                    GIf(
                        self.cond("helper"),
                        [GAssign("h", self.expr("helper"))],
                        [GAssign("h", self.expr("helper"))] if rng.random() < 0.5 else [],
                    )
                )
            if self.helper_writes_global:
                body.append(GAssign("g", self.expr("helper")))
            if self.use_out_param:
                # Guarantee at least one store through the out-parameter
                # (random body statements may add more).
                body.append(GAssign("*q", self.expr("helper")))
            ret = rng.choice(["h", "h", "p", str(rng.randint(-2, 2))])
            params = ["p", "*q"] if self.use_out_param else ["p"]
            prog.helper = (params, body, ret)
        prog.main_body = self.block("main", 0)
        prog.predicates = self.predicates()
        return prog
