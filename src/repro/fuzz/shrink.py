"""Delta-debugging shrinker for failing fuzz cases.

Works on the structural :class:`repro.fuzz.gen.GProgram` (never on raw
text), so every candidate stays well formed.  The reduction loop greedily
applies structural simplifications and keeps a candidate whenever the
oracle still fails with the *same failure kind* (classic delta debugging
discipline — following the kind prevents "slipping" onto an unrelated
bug mid-reduction):

- delete any statement (in main, the helper, or any nested block);
- hoist an ``if``'s then/else block or a loop body in place of the
  compound statement, and shrink loop bounds to 1;
- replace an assignment's right-hand side with ``0``;
- drop the helper procedure outright (with its calls and predicates);
- drop predicates, argument tuples, and extern-oracle seeds.

The result is the fixpoint: no single remaining simplification preserves
the failure.  ``shrink_case`` returns the minimized case plus the number
of oracle evaluations spent, and is deterministic for a deterministic
check function.
"""

from repro.fuzz.gen import GAssign, GCall, GIf, GLoop


class ShrinkResult:
    __slots__ = ("case", "kind", "attempts", "rounds")

    def __init__(self, case, kind, attempts, rounds):
        self.case = case
        self.kind = kind
        self.attempts = attempts
        self.rounds = rounds


def shrink_case(case, kind, check, max_attempts=600):
    """Minimize ``case`` (whose ``check(case)`` currently returns ``kind``)
    while ``check`` keeps returning the same kind.

    ``check`` maps a case to a failure kind or None; it is typically
    ``lambda c: oracle.check(c).kind``.
    """
    if case.gprog is None:
        return ShrinkResult(case, kind, 0, 0)  # corpus text is not shrinkable
    current = case
    attempts = 0
    rounds = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        rounds += 1
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if check(candidate) == kind:
                current = candidate
                progress = True
                break
    return ShrinkResult(current, kind, attempts, rounds)


# -- candidate generation ---------------------------------------------------------


def _candidates(case):
    """Candidate reductions, biggest cuts first."""
    prog = case.gprog
    # Drop the helper (with its calls and predicates) in one stroke.
    if prog.helper is not None:
        clone = prog.clone()
        clone.helper = None
        clone.predicates = [p for p in clone.predicates if p[0] != "helper"]
        for block in _all_blocks(clone):
            block[:] = [s for s in block if not _calls_helper(s)]
        yield case.with_program(clone)
    # Remove one statement at a time (later statements first: cheaper WPs).
    for path, index, stmt in _indexed_statements(prog):
        clone = prog.clone()
        del _resolve(clone, path)[index]
        yield case.with_program(clone)
        # Unwrap compound statements / simplify leaves in place.
        for replacement in _inline_replacements(stmt):
            clone = prog.clone()
            _resolve(clone, path)[index : index + 1] = _clone_stmts(replacement)
            yield case.with_program(clone)
    # Drop one predicate at a time.
    for index in range(len(prog.predicates)):
        clone = prog.clone()
        del clone.predicates[index]
        yield case.with_program(clone)
    # Fewer / simpler run plans.
    if len(case.args_list) > 1:
        reduced = case.with_program(prog.clone())
        reduced.args_list = case.args_list[:1]
        yield reduced
    if any(any(v != 0 for v in args) for args in case.args_list):
        reduced = case.with_program(prog.clone())
        reduced.args_list = [tuple(0 for _ in args) for args in case.args_list]
        yield reduced
    if len(case.oracle_seeds) > 1:
        reduced = case.with_program(prog.clone())
        reduced.oracle_seeds = case.oracle_seeds[:1]
        yield reduced


def _clone_stmts(stmts):
    import copy

    return [copy.deepcopy(s) for s in stmts]


def _inline_replacements(stmt):
    if isinstance(stmt, GIf):
        yield stmt.then_block
        if stmt.else_block:
            yield stmt.else_block
    elif isinstance(stmt, GLoop):
        yield stmt.body
        if stmt.bound > 1:
            shrunk = GLoop(stmt.counter, 1, stmt.body)
            yield [shrunk]
    elif isinstance(stmt, GAssign) and stmt.rhs not in ("0", "*"):
        yield [GAssign(stmt.lhs, "0")]
    elif isinstance(stmt, GCall) and stmt.args and stmt.args != ["0"]:
        yield [GCall(stmt.target, stmt.callee, ["0" for _ in stmt.args])]


def _calls_helper(stmt):
    if isinstance(stmt, GCall) and stmt.callee == "helper":
        return True
    return any(any(_calls_helper(s) for s in block) for block in stmt.blocks())


# -- block addressing -------------------------------------------------------------
#
# A path addresses one statement list inside the program: ("main",) is the
# main body, ("helper",) the helper body, and appending (index, block_no)
# descends into a compound statement's block_no-th nested list.


def _all_blocks(prog):
    stack = [prog.main_body] + prog.helper_body_blocks()
    while stack:
        block = stack.pop()
        yield block
        for stmt in block:
            stack.extend(stmt.blocks())


def _resolve(prog, path):
    if path[0] == "main":
        block = prog.main_body
    else:
        block = prog.helper[1]
    for index, block_no in zip(path[1::2], path[2::2]):
        block = block[index].blocks()[block_no]
    return block


def _indexed_statements(prog):
    """Every (path, index, stmt), innermost-last so deletions of later,
    deeper statements are attempted before their containers."""

    def visit(path, block, out):
        for index, stmt in enumerate(block):
            out.append((path, index, stmt))
            for block_no, sub in enumerate(stmt.blocks()):
                visit(path + (index, block_no), sub, out)

    out = []
    visit(("main",), prog.main_body, out)
    if prog.helper is not None:
        visit(("helper",), prog.helper[1], out)
    out.reverse()
    return out
