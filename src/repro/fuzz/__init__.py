"""Generative soundness fuzzing for the abstraction toolchain.

The paper's Theorem 1 promises that ``BP(P, E)`` simulates every feasible
trace of ``P``; three performance PRs later, that promise is checked by
machines, not by curated examples.  The subsystem has three parts:

- :mod:`repro.fuzz.gen` — a seeded generator of well-typed C-subset
  programs (pointers, calls with globals and return targets, loops,
  asserts) with predicate sets biased toward the programs' own guards;
- :mod:`repro.fuzz.oracle` — the trace-inclusion oracle (concrete
  execution replayed through the abstraction) plus cross-engine
  differentials (incremental vs fresh cubes, serial vs ``--jobs``,
  Bebop fast vs legacy vs explicit-state);
- :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that minimizes
  any failing case, for check-in under ``tests/corpus/``.

:class:`FuzzSession` drives them; ``python -m repro fuzz`` is the CLI.
"""

import hashlib

from repro.fuzz.corpus import (
    case_from_entry,
    corpus_entry,
    load_corpus,
    write_entry,
)
from repro.fuzz.gen import FuzzCase, ProgramGenerator
from repro.fuzz.oracle import (
    KIND_ABSTRACTION,
    KIND_BMC,
    KIND_ENGINE,
    KIND_GENERATOR,
    KIND_INTERP,
    KIND_INVALID_BP,
    KIND_SOUNDNESS,
    CaseReport,
    SoundnessOracle,
)
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CaseReport",
    "FuzzCase",
    "FuzzResult",
    "FuzzSession",
    "ProgramGenerator",
    "SoundnessOracle",
    "case_from_entry",
    "corpus_entry",
    "load_corpus",
    "run_fuzz",
    "shrink_case",
    "write_entry",
]


class FuzzResult:
    """Aggregate outcome of one fuzzing session."""

    def __init__(self):
        self.cases = 0
        self.replays = 0
        self.assert_trips = 0
        self.explicit_checked = 0
        self.jobs_checked = 0
        self.bmc_checked = 0
        self.prover_calls = 0
        self.failures = []  # CaseReport
        self.shrunk = []  # (ShrinkResult, corpus path or None)
        self._digest = hashlib.sha1()

    @property
    def ok(self):
        return not self.failures

    def record(self, case, report):
        self.cases += 1
        self.replays += report.replays
        self.assert_trips += report.assert_trips
        self.explicit_checked += 1 if report.explicit_checked else 0
        self.jobs_checked += 1 if report.jobs_checked else 0
        self.bmc_checked += 1 if report.bmc_checked else 0
        self.prover_calls += report.prover_calls
        for piece in case.fingerprint():
            self._digest.update(repr(piece).encode())
        self._digest.update((report.kind or "ok").encode())
        if not report.ok:
            self.failures.append(report)

    def digest(self):
        """A stable fingerprint of everything generated and every verdict;
        two runs with the same seed must produce the same digest."""
        return self._digest.hexdigest()

    def summary_lines(self):
        lines = [
            "fuzz: %d case(s), %d replay(s), %d assert-ended trace(s)"
            % (self.cases, self.replays, self.assert_trips),
            "fuzz: %d explicit-engine check(s), %d --jobs differential(s), "
            "%d BMC differential(s), %d prover call(s)"
            % (
                self.explicit_checked,
                self.jobs_checked,
                self.bmc_checked,
                self.prover_calls,
            ),
            "fuzz: digest %s" % self.digest(),
        ]
        for report in self.failures:
            lines.append(
                "FAILURE %s [%s]: %s" % (report.case.name, report.kind, report.detail)
            )
        for result, path in self.shrunk:
            lines.append(
                "shrunk %s to %d source line(s) in %d attempt(s)%s"
                % (
                    result.case.name,
                    len(result.case.source.splitlines()),
                    result.attempts,
                    " -> %s" % path if path else "",
                )
            )
        if self.ok:
            lines.append("fuzz: no soundness violations, no divergences.")
        return lines


class FuzzSession:
    """Generate → check → (optionally) shrink and write to the corpus."""

    def __init__(
        self,
        seed=0,
        oracle=None,
        jobs_stride=5,
        shrink=False,
        corpus_dir=None,
        max_shrink_attempts=600,
        progress=None,
        bit_weight=False,
    ):
        self.generator = ProgramGenerator(seed, bit_weight=bit_weight)
        self.oracle = oracle or SoundnessOracle()
        self.jobs_stride = jobs_stride
        self.shrink = shrink
        self.corpus_dir = corpus_dir
        self.max_shrink_attempts = max_shrink_attempts
        self.progress = progress

    def run(self, count, start=0):
        result = FuzzResult()
        for index in range(start, start + count):
            case = self.generator.generate(index)
            check_jobs = bool(self.jobs_stride) and index % self.jobs_stride == 0
            report = self.oracle.check(case, check_jobs=check_jobs)
            result.record(case, report)
            if self.progress is not None:
                self.progress(case, report)
            if not report.ok and self.shrink:
                shrunk = shrink_case(
                    case,
                    report.kind,
                    lambda c: self.oracle.check(c, check_jobs=False).kind,
                    max_attempts=self.max_shrink_attempts,
                )
                path = None
                if self.corpus_dir:
                    entry = corpus_entry(
                        shrunk.case,
                        report.kind,
                        report.detail,
                        found_by="repro fuzz --fuzz-seed %s (case %d)"
                        % (self.generator.seed, index),
                    )
                    path = write_entry(self.corpus_dir, entry)
                result.shrunk.append((shrunk, path))
        return result


def run_fuzz(count=50, seed=0, **session_kwargs):
    """Convenience one-call API: run ``count`` cases from ``seed``."""
    return FuzzSession(seed=seed, **session_kwargs).run(count)
