"""The checked-in regression corpus.

Every failure the fuzzer ever finds is shrunk and written here as a small
JSON document (source text, predicate text, run plan, and a description
of what went wrong when it was found).  ``tests/test_corpus.py`` replays
every entry through all engine configurations on every run, so a fixed
bug stays fixed.

Entries are self-contained text — they do not keep the generator's
structural form — so hand-written reproducers (like the PR-4
call/global-return case) live alongside shrunk ones.
"""

import json
import os
import re

from repro.fuzz.gen import FuzzCase


def corpus_entry(case, kind, detail, found_by=None):
    """The JSON-serializable form of a (usually shrunk) failing case."""
    return {
        "name": case.name,
        "kind": kind,
        "description": detail,
        "found_by": found_by or "repro fuzz",
        "source": case.source,
        "predicates": case.predicate_text,
        "entry": case.entry,
        "args_list": [list(args) for args in case.args_list],
        "oracle_seeds": list(case.oracle_seeds),
    }


def write_entry(directory, entry):
    """Write one corpus entry; returns the path.  The filename is derived
    from the entry name, never overwriting an existing different entry."""
    os.makedirs(directory, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_-]+", "-", entry["name"]).strip("-") or "case"
    path = os.path.join(directory, stem + ".json")
    suffix = 1
    while os.path.exists(path):
        with open(path) as handle:
            if json.load(handle) == entry:
                return path  # identical entry already checked in
        path = os.path.join(directory, "%s-%d.json" % (stem, suffix))
        suffix += 1
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(directory):
    """All corpus entries as :class:`FuzzCase` objects (name-sorted)."""
    cases = []
    if not os.path.isdir(directory):
        return cases
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        with open(os.path.join(directory, filename)) as handle:
            entry = json.load(handle)
        cases.append(case_from_entry(entry))
    return cases


def case_from_entry(entry):
    return FuzzCase(
        entry["name"],
        source=entry["source"],
        predicate_text=entry["predicates"],
        args_list=[tuple(a) for a in entry.get("args_list", [[]])],
        oracle_seeds=entry.get("oracle_seeds", [0]),
        entry=entry.get("entry", "main"),
    )
