"""The fuzzing oracles: Theorem-1 trace inclusion plus cross-engine
differentials.

For one :class:`repro.fuzz.gen.FuzzCase` the oracle checks, in order:

1. **Well-formedness** — the abstraction (run with ``validate_output``)
   must produce a boolean program :mod:`repro.boolprog.validate` accepts;
2. **Abstraction determinism** — the printed ``BP(P, E)`` must be
   byte-identical between the incremental cube engine and the
   ``--no-incremental`` baseline, between the ``allsat`` and ``cubes``
   strengthening strategies, between the incremental theory engine and
   the ``--no-theory-incremental`` stateless checker, between the
   uncached pipeline and a cold then warm content-addressed
   ``--cache-dir`` store (which must also preserve the model-checking
   verdict through the compiled-table round trip), and (on a
   configurable stride, since a fork pool per case is costly) between
   ``--jobs 1`` and ``--jobs 2``;
3. **Engine agreement** — Bebop's compiled fast path and the
   ``--bebop-legacy`` engine must report identical invariants and
   identical assertion-failure sites, and the explicit-state engine must
   agree on the reachable-failure *verdict* (budget-capped: recursion-free
   generated programs explore quickly, but the check is skipped rather
   than failed when the state budget runs out);
4. **BMC agreement** — the bit-precise bounded model checker
   (:func:`repro.bmc.run_bmc`) is a fully independent verdict engine: an
   ``unsafe`` verdict must come with a witness that concretely trips an
   assert under wrapping semantics, a witness that also fails under
   unbounded arithmetic must be matched by an unsafe pipeline verdict
   (pipeline *safe* plus a real counterexample is a soundness bug), and
   a complete ``safe`` proof must not be contradicted by any concrete
   wrapped execution.  ``safe-up-to-k`` and ``unsupported`` runs carry
   no conclusion and are skipped;
5. **Theorem 1** — every concrete trace (over the case's argument tuples
   and extern-oracle seeds) must replay cleanly inside ``BP(P, E)`` via
   :class:`repro.core.replay.TraceReplayer`: no blocked ``assume``, no
   predicate/boolean-variable mismatch.  A concretely failing ``assert``
   ends the trace (the prefix property is covered by the model-checking
   differentials; the replayer needs a complete run).

Any deviation is reported as a :class:`CaseReport` with a stable failure
``kind`` — the shrinker preserves the kind while minimizing.
"""

import random

from repro.bebop import Bebop, ExplicitEngine
from repro.boolprog.printer import print_bool_program
from repro.boolprog.validate import ValidationError
from repro.cfront import parse_c_program
from repro.cfront.errors import CFrontError
from repro.cfront.interp import (
    AssertionFailure,
    AssumeViolated,
    InterpError,
    Interpreter,
)
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.core.predicates import PredicateParseError
from repro.core.replay import TraceReplayer
from repro.engine import EngineContext

#: Failure kinds, from most to least interesting.
KIND_SOUNDNESS = "soundness"          # Theorem-1 replay violation
KIND_ENGINE = "engine-divergence"     # fast / legacy / explicit disagree
KIND_BMC = "bmc-divergence"           # bit-precise BMC / pipeline disagree
KIND_ANALYSIS = "analysis-divergence"  # analysis on/off disagree
KIND_ABSTRACTION = "abstraction-divergence"  # incremental / jobs text differs
KIND_STRENGTHEN = "strengthen-divergence"  # allsat / cubes strategies differ
KIND_THEORY = "theory-divergence"     # incremental / stateless theory differ
KIND_CACHE = "cache-divergence"       # persistent cache changed bytes/verdict
KIND_INVALID_BP = "invalid-bp"        # validator rejected BP(P, E)
KIND_GENERATOR = "generator-invalid"  # case does not parse / typecheck
KIND_INTERP = "interp-error"          # concrete execution trapped


class CaseReport:
    """The oracle's verdict on one case."""

    __slots__ = (
        "case",
        "kind",
        "detail",
        "replays",
        "assert_trips",
        "explicit_checked",
        "jobs_checked",
        "cache_checked",
        "bmc_checked",
        "prover_calls",
    )

    def __init__(self, case):
        self.case = case
        self.kind = None
        self.detail = ""
        self.replays = 0
        self.assert_trips = 0
        self.explicit_checked = False
        self.jobs_checked = False
        self.cache_checked = False
        self.bmc_checked = False
        self.prover_calls = 0

    @property
    def ok(self):
        return self.kind is None

    def fail(self, kind, detail):
        self.kind = kind
        self.detail = detail
        return self

    def __repr__(self):
        status = "ok" if self.ok else "%s: %s" % (self.kind, self.detail)
        return "CaseReport(%s, %s)" % (self.case.name, status)


class SoundnessOracle:
    """Runs every oracle against cases; reusable across a fuzz session."""

    def __init__(
        self,
        check_jobs=False,
        explicit_budget=60_000,
        max_steps=50_000,
        make_options=None,
        bmc_depth=16,
        bmc_width=16,
    ):
        self.check_jobs = check_jobs
        self.explicit_budget = explicit_budget
        self.max_steps = max_steps
        # Bound and bit width for the BMC differential (oracle 4).  Width
        # 16 keeps the bit-blasted formulas small while still exposing
        # overflow behavior on the generator's near-INT16_MAX constants.
        self.bmc_depth = bmc_depth
        self.bmc_width = bmc_width
        # Hook for bug-injection tests: build the C2bpOptions for a config.
        self.make_options = make_options or (lambda **kw: C2bpOptions(**kw))

    # -- the individual oracles -------------------------------------------------

    def check(self, case, check_jobs=None):
        report = CaseReport(case)
        try:
            program = parse_c_program(case.source, name=case.name)
            predicates = parse_predicate_file(case.predicate_text, program)
        except (CFrontError, PredicateParseError) as error:
            return report.fail(KIND_GENERATOR, str(error))

        # 1+2. Abstraction under the default config, validated.
        try:
            tool, boolean_program = self._abstract(
                program, predicates, self.make_options(validate_output=True)
            )
        except ValidationError as error:
            return report.fail(KIND_INVALID_BP, str(error))
        report.prover_calls = tool.stats.prover_calls
        printed = print_bool_program(boolean_program)

        # The AllSAT catalog must be answer-invisible: the ``cubes``
        # strategy (every verdict a prover decide) prints the same bytes.
        # Checked before the fresh baseline so a catalog bug is reported
        # as strengthen-divergence, not generic abstraction-divergence.
        _, cubes_bp = self._abstract(
            program, predicates,
            self.make_options(validate_output=True, strengthen="cubes"),
        )
        cubes_printed = print_bool_program(cubes_bp)
        if cubes_printed != printed:
            return report.fail(
                KIND_STRENGTHEN,
                "allsat and cubes strengthening boolean programs differ:\n"
                + _first_diff(printed, cubes_printed),
            )
        # The incremental theory engine must be answer-invisible: pinning
        # every theory check to the stateless reference prints the same
        # bytes.  Checked before the fresh baseline so a delta-closure or
        # session-cache bug is reported as theory-divergence, not generic
        # abstraction-divergence.
        _, stateless_bp = self._abstract(
            program, predicates,
            self.make_options(validate_output=True, theory_incremental=False),
        )
        stateless_printed = print_bool_program(stateless_bp)
        if stateless_printed != printed:
            return report.fail(
                KIND_THEORY,
                "incremental and --no-theory-incremental boolean programs "
                "differ:\n" + _first_diff(printed, stateless_printed),
            )
        baseline_tool, baseline_bp = self._abstract(
            program, predicates,
            # strengthen="cubes" so incremental_cubes=False actually
            # bites (the allsat strategy always runs incrementally).
            self.make_options(
                validate_output=True,
                incremental_cubes=False,
                strengthen="cubes",
            ),
        )
        baseline_printed = print_bool_program(baseline_bp)
        if baseline_printed != printed:
            return report.fail(
                KIND_ABSTRACTION,
                "incremental and --no-incremental boolean programs differ:\n"
                + _first_diff(printed, baseline_printed),
            )
        jobs = self.check_jobs if check_jobs is None else check_jobs
        if jobs:
            _, jobs_bp = self._abstract(
                program, predicates,
                self.make_options(validate_output=True, jobs=2),
            )
            jobs_printed = print_bool_program(jobs_bp)
            report.jobs_checked = True
            if jobs_printed != printed:
                return report.fail(
                    KIND_ABSTRACTION,
                    "--jobs 1 and --jobs 2 boolean programs differ:\n"
                    + _first_diff(printed, jobs_printed),
                )

        # 2.4. Persistent-cache differential: a cold store population and
        # a warm reload must both print the uncached bytes and reach the
        # uncached verdict (pins the content-addressed keys as sound).
        cache_failure = self._check_cache(case, program, predicates, printed, report)
        if cache_failure is not None:
            return cache_failure

        # 2.5. Static-analysis differentials: identity mode must be a
        # byte-level no-op, and the pruning passes must preserve the
        # model-checking verdict and failure sites.
        analysis_failure = self._check_analysis(
            case, program, predicates, boolean_program, report
        )
        if analysis_failure is not None:
            return analysis_failure

        # 3. Model-checking engines.
        engine_failure, fast_run = self._check_engines(case, boolean_program, report)
        if engine_failure is not None:
            return engine_failure

        # 4. Bit-precise BMC as an independent verdict engine.
        bmc_failure = self._check_bmc(case, program, fast_run, report)
        if bmc_failure is not None:
            return bmc_failure

        # 5. Theorem-1 trace inclusion.
        return self._check_replay(case, program, predicates, tool, boolean_program, report)

    def _abstract(self, program, predicates, options):
        # The context is closed on exit so a --jobs config cannot leak its
        # worker pool across cases.
        with EngineContext(options=options) as context:
            tool = C2bp(program, predicates, context=context)
            return tool, tool.run()

    def _check_cache(self, case, program, predicates, printed, report):
        import shutil
        import tempfile

        cache_dir = tempfile.mkdtemp(prefix="repro-fuzz-cache-")
        try:
            uncached_run = None
            for label in ("cold", "warm"):
                options = self.make_options(
                    validate_output=True, cache_dir=cache_dir
                )
                _, cached_bp = self._abstract(program, predicates, options)
                cached_printed = print_bool_program(cached_bp)
                if cached_printed != printed:
                    return report.fail(
                        KIND_CACHE,
                        "%s persistent-cache boolean program differs from "
                        "uncached:\n" % label + _first_diff(printed, cached_printed),
                    )
                if uncached_run is None:
                    uncached_run = Bebop(cached_bp, main=case.entry).run()
                # Model check through the store too: verdicts and failure
                # sites must survive the compiled-table round trip.
                with EngineContext(options=options) as context:
                    cached_run = Bebop(
                        cached_bp, main=case.entry, context=context
                    ).run()
                if (
                    cached_run.error_reached != uncached_run.error_reached
                    or _failure_sites(cached_run) != _failure_sites(uncached_run)
                ):
                    return report.fail(
                        KIND_CACHE,
                        "%s persistent-cache verdict %r (sites %r) but "
                        "uncached %r (sites %r)"
                        % (
                            label,
                            cached_run.error_reached,
                            sorted(_failure_sites(cached_run)),
                            uncached_run.error_reached,
                            sorted(_failure_sites(uncached_run)),
                        ),
                    )
            report.cache_checked = True
            return None
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

    def _check_analysis(self, case, program, predicates, boolean_program, report):
        from repro.analysis import eliminate_dead_variables

        _, off_bp = self._abstract(
            program, predicates,
            self.make_options(validate_output=True, use_analysis=False),
        )
        off_printed = print_bool_program(off_bp)
        # Identity mode: the subsystem enabled but every transforming
        # pass off must be byte-identical to the pre-analysis pipeline
        # (pins the memoized cone/touch rewrite as a pure optimization).
        _, identity_bp = self._abstract(
            program, predicates,
            self.make_options(
                validate_output=True,
                live_predicates=False,
                intervals=False,
                bp_dce=False,
            ),
        )
        identity_printed = print_bool_program(identity_bp)
        if identity_printed != off_printed:
            return report.fail(
                KIND_ANALYSIS,
                "identity-mode analysis and --no-analysis boolean programs "
                "differ:\n" + _first_diff(off_printed, identity_printed),
            )
        on_run = Bebop(boolean_program, main=case.entry).run()
        off_run = Bebop(off_bp, main=case.entry).run()
        if on_run.error_reached != off_run.error_reached:
            return report.fail(
                KIND_ANALYSIS,
                "verdict with analysis on %r but off %r"
                % (on_run.error_reached, off_run.error_reached),
            )
        on_sites = _failure_sites(on_run)
        off_sites = _failure_sites(off_run)
        if on_sites != off_sites:
            return report.fail(
                KIND_ANALYSIS,
                "assertion sites with analysis on %r but off %r"
                % (sorted(on_sites), sorted(off_sites)),
            )
        # DCE purity: removing never-read variables must not change the
        # verdict or the failing sites of the same program.
        dce_bp, removed = eliminate_dead_variables(boolean_program)
        if removed:
            dce_run = Bebop(dce_bp, main=case.entry).run()
            if (
                dce_run.error_reached != on_run.error_reached
                or _failure_sites(dce_run) != on_sites
            ):
                return report.fail(
                    KIND_ANALYSIS,
                    "BP dead-variable elimination changed the verdict "
                    "(%r -> %r)" % (on_run.error_reached, dce_run.error_reached),
                )
        return None

    def _check_engines(self, case, boolean_program, report):
        """Returns ``(failure, fast_run)`` — the fast Bebop run is reused
        by the BMC differential for the pipeline verdict."""
        fast = Bebop(boolean_program, main=case.entry).run()
        legacy = Bebop(boolean_program, main=case.entry, legacy=True).run()
        if fast.all_invariants() != legacy.all_invariants():
            return report.fail(
                KIND_ENGINE, "fast and legacy Bebop invariants differ"
            ), fast
        fast_sites = {(p, n.uid) for p, n, _ in fast.assertion_failures}
        legacy_sites = {(p, n.uid) for p, n, _ in legacy.assertion_failures}
        if fast_sites != legacy_sites:
            return report.fail(
                KIND_ENGINE,
                "fast and legacy Bebop assertion sites differ: %r vs %r"
                % (sorted(fast_sites), sorted(legacy_sites)),
            ), fast
        explicit = ExplicitEngine(
            boolean_program, main=case.entry, max_configs=self.explicit_budget
        )
        try:
            explicit_failure = explicit.find_assertion_failure() is not None
        except RuntimeError:
            return None, fast  # budget exhausted: skip, do not fail
        report.explicit_checked = True
        if explicit_failure != fast.error_reached:
            return report.fail(
                KIND_ENGINE,
                "explicit engine verdict %r but symbolic verdict %r"
                % (explicit_failure, fast.error_reached),
            ), fast
        return None, fast

    def _check_bmc(self, case, program, fast_run, report):
        """The bit-precise BMC differential (oracle 4).

        The abstraction pipeline reasons over unbounded integers while
        BMC reasons over fixed-width two's-complement, so the engines
        are only required to agree where the semantics coincide:

        - BMC ``unsafe`` ships a witness; replayed under ``wrap_width``
          it must trip an assert (anything else is an encoder bug);
        - if the witness *also* fails under unbounded arithmetic, the
          failure exists in the pipeline's model too, so a *safe*
          pipeline verdict is a soundness divergence (pipeline-unsafe
          with BMC-safe-up-to-k is fine: the error may live beyond the
          bound or exploit unbounded integers);
        - BMC ``safe`` is a complete proof at the bounded width, so no
          concrete wrapped execution may trip an assert.
        """
        from repro.bmc import (
            VERDICT_SAFE,
            VERDICT_UNSAFE,
            replay_witness,
            run_bmc,
        )
        from repro.bmc.driver import REPLAY_ASSERT_FAILED, REPLAY_COMPLETED

        bmc = run_bmc(
            program, entry=case.entry, depth=self.bmc_depth, width=self.bmc_width
        )
        if bmc.verdict == VERDICT_UNSAFE:
            report.bmc_checked = True
            wrapped = replay_witness(
                program,
                case.entry,
                bmc.witness,
                width=self.bmc_width,
                max_steps=self.max_steps,
            )
            if wrapped == REPLAY_COMPLETED:
                return report.fail(
                    KIND_BMC,
                    "BMC witness %r completes without tripping an assert"
                    % (bmc.witness.to_dict(),),
                )
            if wrapped != REPLAY_ASSERT_FAILED:
                return None  # assume-violated / trapped: no conclusion
            unwrapped = replay_witness(
                program,
                case.entry,
                bmc.witness,
                width=None,
                max_steps=self.max_steps,
            )
            if unwrapped == REPLAY_ASSERT_FAILED and not fast_run.error_reached:
                return report.fail(
                    KIND_BMC,
                    "BMC witness %r fails an assert under unbounded "
                    "arithmetic but the pipeline verdict is safe"
                    % (bmc.witness.to_dict(),),
                )
            return None
        if bmc.verdict == VERDICT_SAFE:
            report.bmc_checked = True
            for args in case.args_list:
                for seed in case.oracle_seeds:
                    interp = Interpreter(
                        program,
                        extern_oracle=_extern_oracle(seed),
                        max_steps=self.max_steps,
                        wrap_width=self.bmc_width,
                    )
                    try:
                        interp.run(case.entry, list(args))
                    except AssertionFailure:
                        return report.fail(
                            KIND_BMC,
                            "BMC proved safe at width %d but args %r seed %r "
                            "trips an assert" % (self.bmc_width, args, seed),
                        )
                    except (AssumeViolated, InterpError):
                        continue  # traps carry no verdict information
            return None
        return None  # safe-up-to-k / unsupported: no conclusion

    def _check_replay(self, case, program, predicates, tool, boolean_program, report):
        for args in case.args_list:
            for seed in case.oracle_seeds:
                # Pre-run: does this concrete execution complete?  A failing
                # assert ends the trace; real traps are generator bugs.
                oracle = _extern_oracle(seed)
                probe = Interpreter(
                    program, extern_oracle=oracle, max_steps=self.max_steps
                )
                try:
                    probe.run(case.entry, list(args))
                except AssertionFailure:
                    report.assert_trips += 1
                    continue
                except InterpError as error:
                    return report.fail(
                        KIND_INTERP,
                        "args %r seed %r: %s" % (args, seed, error),
                    )
                replayer = TraceReplayer(
                    tool,
                    boolean_program,
                    entry=case.entry,
                    args=list(args),
                    extern_oracle=_extern_oracle(seed),
                )
                outcome = replayer.run()
                report.replays += 1
                if outcome.blocked is not None:
                    return report.fail(
                        KIND_SOUNDNESS,
                        "args %r seed %r: replay blocked at %r"
                        % (args, seed, outcome.blocked),
                    )
                if outcome.violations:
                    return report.fail(
                        KIND_SOUNDNESS,
                        "args %r seed %r: %s"
                        % (args, seed, "; ".join(v.detail for v in outcome.violations)),
                    )
        return report


def _failure_sites(result):
    """Assertion-failure sites keyed by source statement, stable across
    structurally different translations of the same program."""
    return {
        (proc, node.stmt.source_sid, node.stmt.comment)
        for proc, node, _ in result.assertion_failures
    }


def _extern_oracle(seed):
    rng = random.Random("extern:%s" % seed)
    return lambda name, args: rng.randint(-4, 4)


def _first_diff(left, right):
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    for index, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            return "line %d:\n  - %s\n  + %s" % (index + 1, a, b)
    return "line %d: length differs (%d vs %d lines)" % (
        min(len(left_lines), len(right_lines)) + 1,
        len(left_lines),
        len(right_lines),
    )
