"""The static-analysis subsystem.

Facts are computed once per abstraction run and consumed by several
clients (see ``docs/ANALYSIS.md``):

- :mod:`repro.analysis.framework` — the dataflow solver and call graph;
- :mod:`repro.analysis.modref` — canonical location keysets, the
  memoized :class:`TouchOracle`, and mod/ref summaries;
- :mod:`repro.analysis.livepreds` — backward live-predicate facts
  (C2bp's dead-slot pruning);
- :mod:`repro.analysis.intervals` — interval abstract interpretation
  (pre-prover query discharge and Newton-stall candidate predicates);
- :mod:`repro.analysis.bpdce` — boolean-program dead-variable
  elimination;
- :mod:`repro.analysis.reuse` — cross-iteration statement-abstraction
  cache keyed on the mod/ref closures.

:class:`ProgramAnalyses` bundles the per-run state; C2bp builds one when
``options.use_analysis`` holds.  :class:`AnalysisStats` is shared across
a whole engine context (via :func:`ensure_analysis_stats`) so the CEGAR
loop can report per-iteration deltas.
"""

from repro.cfront.cfg import build_program_cfgs
from repro.cfront.pretty import pretty_stmt

from repro.analysis.framework import BACKWARD, FORWARD, CallGraph, DataflowAnalysis
from repro.analysis.modref import (
    WILDCARD,
    ModRefSummaries,
    TouchOracle,
    location_keyset,
)
from repro.analysis.livepreds import LivePredicates, enforce_variable_names
from repro.analysis.intervals import (
    IntervalDischarger,
    interval_candidate_predicates,
)
from repro.analysis.bpdce import eliminate_dead_variables
from repro.analysis.reuse import AbstractionReuse

__all__ = [
    "AbstractionReuse",
    "AnalysisStats",
    "BACKWARD",
    "CallGraph",
    "DataflowAnalysis",
    "FORWARD",
    "IntervalDischarger",
    "LivePredicates",
    "ModRefSummaries",
    "ProgramAnalyses",
    "TouchOracle",
    "WILDCARD",
    "eliminate_dead_variables",
    "ensure_analysis_stats",
    "enforce_variable_names",
    "interval_candidate_predicates",
    "location_keyset",
]


class AnalysisStats:
    """Counters for every pass, registered as the ``analysis`` stats
    section; one instance is shared across a CEGAR run's iterations so
    the loop can take per-iteration deltas."""

    FIELDS = (
        "predicates_skipped_dead",
        "queries_discharged_interval",
        "bp_vars_eliminated",
        "modref_summary_hits",
        "modref_touch_queries",
        "c2bp_stmts_reused",
        "c2bp_stmts_retranslated",
        "interval_candidates_exported",
    )

    __slots__ = FIELDS

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def snapshot(self):
        return {name: getattr(self, name) for name in self.FIELDS}


def ensure_analysis_stats(context):
    """The engine context's :class:`AnalysisStats`, created and
    registered on first use."""
    stats = getattr(context, "analysis_stats", None)
    if stats is None:
        stats = AnalysisStats()
        context.analysis_stats = stats
        context.stats.register("analysis", stats)
    return stats


class ProgramAnalyses:
    """Per-abstraction-run static facts, shared by every consumer.

    Built once per C2bp run (facts depend on the predicate set, which
    grows across CEGAR iterations).  Everything heavier than the flag
    checks is computed lazily: a run that never asks for mod/ref
    summaries never builds them.
    """

    def __init__(self, program, predicates, signatures, options, points_to, stats):
        self.program = program
        self.predicates = predicates
        self.signatures = signatures
        self.options = options
        self.points_to = points_to
        self.stats = stats
        self.live_enabled = bool(getattr(options, "live_predicates", True))
        self.intervals_enabled = bool(getattr(options, "intervals", True))
        self.discharger = (
            IntervalDischarger(stats) if self.intervals_enabled else None
        )
        self._cfgs = None
        self._modref = None
        self._touchers = {}
        self._keysets = {}  # predicate name -> location keyset
        self._liveness = {}  # func name -> LivePredicates

    # -- shared building blocks -------------------------------------------------

    def may_alias(self, func_name):
        if not self.options.use_alias_analysis:
            return None
        return lambda a, b: self.points_to.may_alias(a, b, func_name)

    def toucher(self, func_name):
        oracle = self._touchers.get(func_name)
        if oracle is None:
            oracle = TouchOracle(self.may_alias(func_name), stats=self.stats)
            self._touchers[func_name] = oracle
        return oracle

    def predicate_keyset(self, predicate):
        keyset = self._keysets.get(predicate.name)
        if keyset is None:
            keyset = location_keyset(predicate.expr)
            self._keysets[predicate.name] = keyset
        return keyset

    @property
    def cfgs(self):
        if self._cfgs is None:
            self._cfgs = build_program_cfgs(self.program)
        return self._cfgs

    @property
    def modref(self):
        if self._modref is None:
            self._modref = ModRefSummaries(self.program, points_to=self.points_to)
        return self._modref

    # -- live predicates --------------------------------------------------------

    def compute_liveness(self, func_name, enforce_expr):
        """Solve (once) the live-predicate facts for ``func_name`` given
        its enforce invariant; None when the pass is disabled."""
        if not self.live_enabled:
            return None
        solved = self._liveness.get(func_name)
        if solved is None:
            cfg = self.cfgs.get(func_name)
            if cfg is None:
                return None
            signature = self.signatures[func_name]
            solved = LivePredicates(
                cfg,
                self.predicates.in_scope(func_name),
                signature.return_predicates,
                self.may_alias(func_name),
                self.toucher(func_name),
                self.options,
                enforce_names=enforce_variable_names(enforce_expr),
            )
            self._liveness[func_name] = solved
        return solved

    def liveness(self, func_name):
        return self._liveness.get(func_name)

    def is_dead(self, func_name, stmt, predicate):
        solved = self._liveness.get(func_name)
        if solved is None:
            return False
        return not solved.is_live(stmt, predicate.name)

    # -- reuse keys -------------------------------------------------------------

    def relevant_names(self, func_name, stmt):
        """The scope predicates inside the statement's mod/ref closure,
        or None when the statement's effects are not precisely nameable
        (calls, wildcard writes) and every predicate is relevant."""
        summary = self.modref.statement_summary(stmt, func_name)
        if summary.has_call or WILDCARD in summary.mod or WILDCARD in summary.ref:
            return None
        touched = dict(summary.mod)
        touched.update(summary.ref)
        toucher = self.toucher(func_name)
        scope = self.predicates.in_scope(func_name)
        chosen = set()
        remaining = list(scope)
        changed = True
        while changed:
            changed = False
            still = []
            for predicate in remaining:
                keyset = self.predicate_keyset(predicate)
                if toucher.touch(keyset, touched):
                    chosen.add(predicate.name)
                    touched.update(keyset)
                    changed = True
                else:
                    still.append(predicate)
            remaining = still
        return chosen

    def _signature_fingerprint(self, func_name):
        signature = self.signatures.get(func_name)
        if signature is None:
            return (func_name, None)
        return (
            func_name,
            tuple(p.name for p in signature.formal_predicates),
            tuple(p.name for p in signature.return_predicates),
        )

    def statement_key(self, func, index, stmt):
        """A cache key covering everything the statement's translation
        reads; equal keys guarantee byte-identical translated parts."""
        scope = self.predicates.in_scope(func.name)
        relevant = self.relevant_names(func.name, stmt)
        if relevant is None:
            pred_part = tuple(p.name for p in scope)
            sig_part = tuple(
                self._signature_fingerprint(name)
                for name in sorted(self.signatures)
            )
        else:
            pred_part = tuple(p.name for p in scope if p.name in relevant)
            sig_part = (self._signature_fingerprint(func.name),)
        solved = self._liveness.get(func.name)
        if solved is None:
            live_part = "live-off"
        else:
            live_part = tuple(
                (sid, fact if fact is None else tuple(sorted(fact)))
                for sid, fact in sorted(
                    (sid, solved.live_out_by_sid(sid))
                    for sid in _subtree_sids(stmt)
                )
            )
        return (
            func.name,
            index,
            stmt.sid,
            pretty_stmt(stmt),
            tuple(stmt.labels),
            pred_part,
            sig_part,
            live_part,
        )

    def enforce_key(self, func_name):
        return (
            func_name,
            tuple(p.name for p in self.predicates.in_scope(func_name)),
        )

    # -- Newton-stall fallback --------------------------------------------------

    def newton_fallback_predicates(self, func_name):
        """Loop-head interval invariants of ``func_name`` as candidate
        predicate expressions (empty when intervals are disabled)."""
        if not self.intervals_enabled:
            return []
        cfg = self.cfgs.get(func_name)
        if cfg is None:
            return []
        candidates = interval_candidate_predicates(
            cfg, may_alias=self.may_alias(func_name)
        )
        if candidates and self.stats is not None:
            self.stats.interval_candidates_exported += len(candidates)
        return candidates


def _subtree_sids(stmt):
    sids = []
    stack = [stmt]
    while stack:
        current = stack.pop()
        if current.sid is not None:
            sids.append(current.sid)
        for sub in current.substatements():
            stack.extend(sub)
    return sids
