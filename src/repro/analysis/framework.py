"""The generic interprocedural dataflow skeleton.

Every production pass in :mod:`repro.analysis` is an instance of the same
recipe: a finite-height lattice of facts, a transfer function per CFG
node, and a worklist iteration to the least fixpoint.  The skeleton keeps
that machinery in one place so adding a pass means writing only the
lattice and the transfers (see ``docs/ANALYSIS.md``).

Two solver directions are provided:

- **forward**: facts flow along CFG edges (entry seeds the iteration);
  used by the interval interpreter;
- **backward**: facts flow against CFG edges (exit seeds the iteration);
  used by the live-predicate analysis and the boolean-program DCE.

Interprocedural passes additionally use :class:`CallGraph` for a
bottom-up procedure order: callee summaries are computed before their
callers, with the members of a call-graph cycle (recursion) iterated
together until their summaries stabilize.
"""

from repro.cfront import cast as C

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis:
    """One intraprocedural fixpoint problem over a function CFG.

    Subclasses define the lattice and the transfers:

    - ``direction`` — :data:`FORWARD` or :data:`BACKWARD`;
    - :meth:`bottom` — the least fact (the solver initializes every node
      with it);
    - :meth:`boundary` — the fact at the flow source (the entry node's
      in-fact for a forward pass, the exit node's out-fact backward);
    - :meth:`join` — least upper bound of two facts;
    - :meth:`equals` — fact equality (fixpoint detection);
    - :meth:`transfer` — ``transfer(node, fact)``: the fact after the
      node, given the fact flowing into it;
    - :meth:`edge_transfer` — optional refinement along a labelled edge
      (``assume=True/False`` on branch edges); identity by default;
    - :meth:`widen` — optional widening applied at loop heads after
      ``widen_after`` visits; defaults to :meth:`join` (no widening).
    """

    direction = FORWARD
    widen_after = None  # visits of one node before widening kicks in

    def __init__(self, cfg):
        self.cfg = cfg

    # -- the lattice (subclass responsibility) ---------------------------------

    def bottom(self):
        raise NotImplementedError

    def boundary(self):
        raise NotImplementedError

    def join(self, left, right):
        raise NotImplementedError

    def equals(self, left, right):
        raise NotImplementedError

    def transfer(self, node, fact):
        raise NotImplementedError

    def edge_transfer(self, source, edge, fact):
        return fact

    def widen(self, previous, joined):
        return joined

    # -- the solver -------------------------------------------------------------

    def solve(self):
        """Iterate to the least fixpoint; returns ``self`` with
        ``fact_in`` / ``fact_out`` maps keyed by node uid.

        ``fact_in[uid]`` is the fact flowing *into* the node along the
        analysis direction (for a backward pass that is the fact after
        the node in execution order), ``fact_out[uid]`` the fact after
        applying the node's transfer.
        """
        cfg = self.cfg
        forward = self.direction == FORWARD
        self.fact_in = {node.uid: self.bottom() for node in cfg.nodes}
        self.fact_out = {node.uid: self.bottom() for node in cfg.nodes}
        source = cfg.entry if forward else cfg.exit
        self.fact_in[source.uid] = self.boundary()
        visits = {}
        if forward:
            # Unreachable code stays at bottom (it never executes).
            worklist = [source]
        else:
            # Seed every node: statements that cannot reach the exit (a
            # nonterminating loop body) still execute, so their uses count.
            worklist = [node for node in cfg.nodes if node is not source]
            worklist.append(source)
        queued = {node.uid for node in worklist}
        while worklist:
            node = worklist.pop()
            queued.discard(node.uid)
            visits[node.uid] = visits.get(node.uid, 0) + 1
            out = self.transfer(node, self.fact_in[node.uid])
            if self.equals(out, self.fact_out[node.uid]) and visits[node.uid] > 1:
                continue
            self.fact_out[node.uid] = out
            for successor, edge in self._flow_targets(node):
                flowed = self.edge_transfer(node, edge, out)
                joined = self.join(self.fact_in[successor.uid], flowed)
                if (
                    self.widen_after is not None
                    and visits.get(successor.uid, 0) >= self.widen_after
                    and self._is_loop_head(successor)
                ):
                    joined = self.widen(self.fact_in[successor.uid], joined)
                if not self.equals(joined, self.fact_in[successor.uid]):
                    self.fact_in[successor.uid] = joined
                    if successor.uid not in queued:
                        worklist.append(successor)
                        queued.add(successor.uid)
        return self

    def _flow_targets(self, node):
        if self.direction == FORWARD:
            return [(edge.target, edge) for edge in node.edges]
        # Backward: predecessors, with the edge that leads back to us (for
        # edge_transfer refinement, matched by target identity).
        targets = []
        for pred in node.preds:
            edge = None
            for candidate in pred.edges:
                if candidate.target is node:
                    edge = candidate
                    break
            targets.append((pred, edge))
        return targets

    def _is_loop_head(self, node):
        """A node with an incoming back edge (a predecessor reachable from
        the node itself — cheaply over-approximated: any branch node whose
        statement is a While, plus join points targeted by gotos)."""
        if node.kind == "branch" and isinstance(node.stmt, C.While):
            return True
        return len(node.preds) > 1


class CallGraph:
    """Callee edges between the program's defined procedures."""

    def __init__(self, program):
        self.program = program
        self.callees = {}  # name -> set of defined callee names
        self.callers = {}
        defined = {func.name for func in program.defined_functions()}
        for func in program.defined_functions():
            found = set()
            self._scan(func.body, found)
            self.callees[func.name] = found & defined
        for name in self.callees:
            self.callers[name] = set()
        for name, callees in self.callees.items():
            for callee in callees:
                self.callers[callee].add(name)

    def _scan(self, stmts, found):
        for stmt in stmts:
            if isinstance(stmt, C.CallStmt):
                found.add(stmt.name)
            for sub in stmt.substatements():
                self._scan(sub, found)

    def bottom_up_order(self):
        """Procedure names, callees before callers; members of a cycle
        (recursion) appear in deterministic name order and must be
        iterated to a joint fixpoint by the client."""
        order = []
        state = {}  # name -> "open" | "done"

        def visit(name):
            if state.get(name) == "done":
                return
            if state.get(name) == "open":
                return  # back edge: a cycle, broken here
            state[name] = "open"
            for callee in sorted(self.callees.get(name, ())):
                visit(callee)
            state[name] = "done"
            order.append(name)

        for name in sorted(self.callees):
            visit(name)
        return order

    def recursive_names(self):
        """Names on a call-graph cycle (including self-recursion)."""
        result = set()
        for name in self.callees:
            seen = set()
            stack = list(self.callees.get(name, ()))
            while stack:
                current = stack.pop()
                if current == name:
                    result.add(name)
                    break
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self.callees.get(current, ()))
        return result
