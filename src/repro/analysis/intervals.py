"""Interval abstract interpretation over the C program.

Two consumers share the machinery:

- :class:`IntervalDischarger` decides cube validity queries *before* any
  prover call: a query ``⋀cube ⟹ φ`` whose antecedents already bound the
  goal under interval propagation never reaches DPLL(T).  The decision is
  purely logical — it looks only at the query's expressions, never at
  program points — so with the discharger on or off the cube search
  explores the same cubes and emits byte-identical boolean programs
  (the discharger answers ``True`` only for queries the prover itself
  proves valid).
- :class:`FunctionIntervals` runs a widening/narrowing forward pass over
  a function CFG; its loop-head facts become candidate predicates when
  Newton stalls (ROADMAP item 5): a diverging counter like ``x = x + 1``
  often needs exactly the invariant ``x >= 0`` the intervals hand out
  for free.

The interval domain is classic: values are pairs ``(lo, hi)`` with
``None`` for ±∞; widening jumps unstable bounds to ∞ after a few loop
visits, then two descending (narrowing) rounds claw back precision the
widening overshot.
"""

from repro.cfront import cast as C
from repro.cfront.exprutils import fold_constants, is_trivially_false, is_trivially_true
from repro.cfront.pretty import pretty_expr

from repro.analysis.framework import FORWARD, DataflowAnalysis

TOP = (None, None)

#: Comparison operators and their (swapped-operand) mirrors.
_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


# -- interval arithmetic --------------------------------------------------------


def iv_const(value):
    return (value, value)


def iv_is_empty(iv):
    lo, hi = iv
    return lo is not None and hi is not None and lo > hi


def iv_join(a, b):
    alo, ahi = a
    blo, bhi = b
    lo = None if alo is None or blo is None else min(alo, blo)
    hi = None if ahi is None or bhi is None else max(ahi, bhi)
    return (lo, hi)


def iv_meet(a, b):
    alo, ahi = a
    blo, bhi = b
    lo = blo if alo is None else (alo if blo is None else max(alo, blo))
    hi = bhi if ahi is None else (ahi if bhi is None else min(ahi, bhi))
    return (lo, hi)


def iv_widen(old, new):
    olo, ohi = old
    nlo, nhi = new
    lo = olo if olo is not None and nlo is not None and nlo >= olo else None
    hi = ohi if ohi is not None and nhi is not None and nhi <= ohi else None
    return (lo, hi)


def iv_add(a, b):
    alo, ahi = a
    blo, bhi = b
    lo = None if alo is None or blo is None else alo + blo
    hi = None if ahi is None or bhi is None else ahi + bhi
    return (lo, hi)


def iv_neg(a):
    lo, hi = a
    return (None if hi is None else -hi, None if lo is None else -lo)


def iv_sub(a, b):
    return iv_add(a, iv_neg(b))


def iv_mul_const(a, k):
    if k == 0:
        return iv_const(0)
    lo, hi = a
    if k < 0:
        lo, hi = hi, lo
    return (None if lo is None else lo * k, None if hi is None else hi * k)


# -- the per-function forward pass ---------------------------------------------


class IntervalAnalysis(DataflowAnalysis):
    """Forward interval environments over one function CFG.

    Facts are ``None`` (unreachable) or a dict mapping variable names to
    intervals; an absent name means ⊤ (unknown).  Pointer stores havoc
    every variable the store may alias; calls havoc everything (the
    callee may write globals and through escaped pointers).
    """

    direction = FORWARD
    widen_after = 3
    narrow_rounds = 2

    def __init__(self, cfg, may_alias=None):
        super().__init__(cfg)
        self._may_alias = may_alias

    def bottom(self):
        return None

    def boundary(self):
        return {}

    def join(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        joined = {}
        for name in left:
            if name in right:
                joined[name] = iv_join(left[name], right[name])
        return joined

    def widen(self, previous, joined):
        if previous is None or joined is None:
            return joined
        widened = {}
        for name, iv in joined.items():
            widened[name] = iv_widen(previous[name], iv) if name in previous else iv
        return widened

    def equals(self, left, right):
        return left == right

    def transfer(self, node, env):
        if env is None:
            return None
        stmt = node.stmt
        if node.kind == "branch" or stmt is None:
            return env
        if isinstance(stmt, C.Assign):
            return self._transfer_assign(stmt, env)
        if isinstance(stmt, C.CallStmt):
            return {}  # callee may write globals / through escaped pointers
        if isinstance(stmt, (C.Assume, C.Assert)):
            # Executions continuing past either satisfy the condition.
            return refine_env(env, stmt.cond, True)
        return env

    def edge_transfer(self, source, edge, env):
        if env is None or edge is None or edge.assume is None:
            return env
        cond = source.cond if source.cond is not None else source.stmt.cond
        return refine_env(env, cond, edge.assume)

    def _transfer_assign(self, stmt, env):
        if isinstance(stmt.lhs, C.Id):
            updated = dict(env)
            updated[stmt.lhs.name] = eval_interval(stmt.rhs, env)
            return updated
        # A store through a pointer / field / index: havoc every tracked
        # name the store may alias (all of them without alias facts).
        if self._may_alias is None:
            return {}
        updated = {}
        for name, iv in env.items():
            if not self._may_alias(stmt.lhs, C.Id(name)):
                updated[name] = iv
        return updated

    # -- narrowing --------------------------------------------------------------

    def solve(self):
        super().solve()
        # Descending rounds from the (widened) post-fixpoint: recompute
        # each in-fact exactly and meet it with the current one, clawing
        # back bounds the widening jumped to ∞.
        for _ in range(self.narrow_rounds):
            for node in self.cfg.nodes:
                if node is self.cfg.entry:
                    continue
                recomputed = None
                for pred in node.preds:
                    edge = None
                    for candidate in pred.edges:
                        if candidate.target is node:
                            edge = candidate
                            break
                    flowed = self.edge_transfer(pred, edge, self.fact_out[pred.uid])
                    recomputed = flowed if recomputed is None else self.join(recomputed, flowed)
                current = self.fact_in[node.uid]
                if recomputed is None or current is None:
                    narrowed = recomputed
                else:
                    narrowed = {
                        name: iv_meet(iv, recomputed[name])
                        for name, iv in current.items()
                        if name in recomputed
                    }
                self.fact_in[node.uid] = narrowed
                self.fact_out[node.uid] = self.transfer(node, narrowed)
        return self


def eval_interval(expr, env):
    """The interval of ``expr`` under ``env`` (absent names are ⊤)."""
    expr = fold_constants(expr)
    if isinstance(expr, C.IntLit):
        return iv_const(expr.value)
    if isinstance(expr, C.Id):
        return env.get(expr.name, TOP)
    if isinstance(expr, C.UnOp):
        if expr.op == "-":
            return iv_neg(eval_interval(expr.operand, env))
        if expr.op == "!":
            return (0, 1)
        return TOP
    if isinstance(expr, C.BinOp):
        op = expr.op
        if op in ("&&", "||") or op in _MIRROR:
            return (0, 1)
        left = eval_interval(expr.left, env)
        right = eval_interval(expr.right, env)
        if op == "+":
            return iv_add(left, right)
        if op == "-":
            return iv_sub(left, right)
        if op == "*":
            if left[0] is not None and left[0] == left[1]:
                return iv_mul_const(right, left[0])
            if right[0] is not None and right[0] == right[1]:
                return iv_mul_const(left, right[0])
        return TOP
    return TOP


def refine_env(env, cond, positive):
    """``env`` restricted to states satisfying ``cond`` (or its negation
    when ``positive`` is false); ``None`` when the restriction is empty
    (the edge is infeasible)."""
    if env is None:
        return None
    cond = fold_constants(cond)
    if is_trivially_true(cond):
        return env if positive else None
    if is_trivially_false(cond):
        return None if positive else env
    if isinstance(cond, C.UnOp) and cond.op == "!":
        return refine_env(env, cond.operand, not positive)
    if isinstance(cond, C.BinOp):
        op = cond.op
        if (op == "&&" and positive) or (op == "||" and not positive):
            left = refine_env(env, cond.left, positive)
            if left is None:
                return None
            return refine_env(left, cond.right, positive)
        if (op == "||" and positive) or (op == "&&" and not positive):
            left = refine_env(env, cond.left, positive)
            right = refine_env(env, cond.right, positive)
            if left is None:
                return right
            if right is None:
                return left
            joined = {}
            for name in left:
                if name in right:
                    joined[name] = iv_join(left[name], right[name])
            return joined
        if op in _MIRROR:
            if not positive:
                return _refine_compare(env, _NEGATE[op], cond.left, cond.right)
            return _refine_compare(env, op, cond.left, cond.right)
    return env


def _refine_compare(env, op, left, right):
    env = _refine_one_side(env, op, left, right)
    if env is None:
        return None
    return _refine_one_side(env, _MIRROR[op], right, left)


def _refine_one_side(env, op, subject, other):
    """Tighten ``subject``'s interval from ``subject op other``."""
    if not isinstance(subject, C.Id):
        return env
    bound = eval_interval(other, env)
    current = env.get(subject.name, TOP)
    if op == "<":
        limit = (None, None if bound[1] is None else bound[1] - 1)
    elif op == "<=":
        limit = (None, bound[1])
    elif op == ">":
        limit = (None if bound[0] is None else bound[0] + 1, None)
    elif op == ">=":
        limit = (bound[0], None)
    elif op == "==":
        limit = bound
    elif op == "!=":
        limit = TOP
        if bound[0] is not None and bound[0] == bound[1]:
            lo, hi = current
            if lo == hi == bound[0]:
                return None
            if lo == bound[0]:
                current = (lo + 1, hi)
            if hi == bound[0]:
                current = (current[0], hi - 1)
    else:
        return env
    refined = iv_meet(current, limit)
    if iv_is_empty(refined):
        return None
    updated = dict(env)
    updated[subject.name] = refined
    return updated


# -- loop-head candidate predicates --------------------------------------------


class FunctionIntervals:
    """Solved intervals for one function, with loop-head queries."""

    def __init__(self, cfg, may_alias=None):
        self.cfg = cfg
        self.analysis = IntervalAnalysis(cfg, may_alias=may_alias)
        self.analysis.solve()

    def env_at(self, node):
        return self.analysis.fact_in.get(node.uid)

    def loop_head_facts(self):
        """``(node, env)`` pairs for every While head with a reachable,
        nontrivial environment."""
        facts = []
        for node in self.cfg.nodes:
            if node.kind == "branch" and isinstance(node.stmt, C.While):
                env = self.env_at(node)
                if env:
                    facts.append((node, env))
        return facts


def interval_candidate_predicates(cfg, may_alias=None, limit=8):
    """Loop-head interval facts as candidate predicate expressions.

    Used when Newton stalls: a diverging loop often needs exactly the
    bound the intervals discovered (``x >= 0`` for a counter).  Only
    finite bounds become candidates; each is a plain comparison the
    predicate machinery already understands.
    """
    candidates = []
    seen = set()
    intervals = FunctionIntervals(cfg, may_alias=may_alias)
    for _node, env in intervals.loop_head_facts():
        for name in sorted(env):
            lo, hi = env[name]
            exprs = []
            if lo is not None:
                exprs.append(C.BinOp(">=", C.Id(name), C.IntLit(lo)))
            if hi is not None:
                exprs.append(C.BinOp("<=", C.Id(name), C.IntLit(hi)))
            for expr in exprs:
                text = pretty_expr(expr)
                if text not in seen:
                    seen.add(text)
                    candidates.append(expr)
    return candidates[:limit]


# -- the pre-prover query discharger -------------------------------------------


def linear_form(expr):
    """``expr`` as ``(coefficients, constant)`` over atom texts, or
    ``None`` when the expression is not affine.  Atoms are variables and
    opaque lvalues (derefs, fields, indexes), keyed by pretty text — two
    occurrences of the same spelling denote the same value within one
    prover query."""
    expr = fold_constants(expr)
    if isinstance(expr, C.IntLit):
        return ({}, expr.value)
    if isinstance(expr, (C.Id, C.Deref, C.FieldAccess, C.Index)):
        return ({pretty_expr(expr): 1}, 0)
    if isinstance(expr, C.UnOp) and expr.op == "-":
        inner = linear_form(expr.operand)
        if inner is None:
            return None
        coefs, const = inner
        return ({atom: -c for atom, c in coefs.items()}, -const)
    if isinstance(expr, C.BinOp) and expr.op in ("+", "-"):
        left = linear_form(expr.left)
        right = linear_form(expr.right)
        if left is None or right is None:
            return None
        sign = 1 if expr.op == "+" else -1
        coefs = dict(left[0])
        for atom, c in right[0].items():
            coefs[atom] = coefs.get(atom, 0) + sign * c
            if coefs[atom] == 0:
                del coefs[atom]
        return (coefs, left[1] + sign * right[1])
    if isinstance(expr, C.BinOp) and expr.op == "*":
        left = linear_form(expr.left)
        right = linear_form(expr.right)
        if left is None or right is None:
            return None
        if not left[0]:
            k, form = left[1], right
        elif not right[0]:
            k, form = right[1], left
        else:
            return None
        if k == 0:
            return ({}, 0)
        return ({atom: c * k for atom, c in form[0].items()}, form[1] * k)
    return None


class _Constraint:
    """``Σ coefs·atoms + const >= 0`` (``eq`` adds the mirror ``<= 0``)."""

    __slots__ = ("coefs", "const", "eq")

    def __init__(self, coefs, const, eq=False):
        self.coefs = coefs
        self.const = const
        self.eq = eq


def _comparison_constraints(op, left, right):
    """``left op right`` as zero-or-more linear constraints (integer
    semantics: ``a < b`` is ``b - a - 1 >= 0``).  ``None`` when the
    comparison is not affine — the caller must skip it, not guess."""
    lf = linear_form(left)
    rf = linear_form(right)
    if lf is None or rf is None:
        return None
    coefs = dict(rf[0])
    for atom, c in lf[0].items():
        coefs[atom] = coefs.get(atom, 0) - c
        if coefs[atom] == 0:
            del coefs[atom]
    const = rf[1] - lf[1]  # right - left
    if op == "<":
        return [_Constraint(coefs, const - 1)]
    if op == "<=":
        return [_Constraint(coefs, const)]
    if op == ">":
        return [_Constraint({a: -c for a, c in coefs.items()}, -const - 1)]
    if op == ">=":
        return [_Constraint({a: -c for a, c in coefs.items()}, -const)]
    if op == "==":
        return [_Constraint(coefs, const, eq=True)]
    if op == "!=":
        if not coefs:
            # Constant disequality: either trivially true or contradictory.
            return [] if const != 0 else [_Constraint({}, -1)]
        return []  # non-convex; contributes nothing
    return None


class IntervalDischarger:
    """Decides ``⋀antecedents ⟹ goal`` by interval constraint
    propagation; sound but incomplete (``False`` means "don't know").

    Only affine facts participate.  The query is valid when the
    antecedents are contradictory (the cube is unsatisfiable) or when
    they force the goal's linear form to its satisfying range.
    """

    passes = 4

    def __init__(self, stats=None):
        self.stats = stats

    def decide(self, antecedents, goal):
        constraints = []
        for expr in antecedents:
            if not self._gather(expr, True, constraints):
                # An antecedent we cannot model is dropped — weakening
                # the left side of an implication is the sound direction.
                continue
        env = {}
        contradictory = not self._propagate(constraints, env)
        if contradictory:
            return self._hit()
        goal = fold_constants(goal)
        if is_trivially_true(goal):
            return self._hit()
        if is_trivially_false(goal):
            return False  # only a contradictory cube would discharge this
        if self._entails(goal, env):
            return self._hit()
        return False

    def _hit(self):
        if self.stats is not None:
            self.stats.queries_discharged_interval += 1
        return True

    # -- antecedent gathering ---------------------------------------------------

    def _gather(self, expr, positive, out):
        """Append the constraints of ``expr`` (or its negation) to
        ``out``; False when the fact cannot be modelled."""
        expr = fold_constants(expr)
        if positive and is_trivially_false(expr):
            out.append(_Constraint({}, -1))
            return True
        if not positive and is_trivially_true(expr):
            out.append(_Constraint({}, -1))
            return True
        if is_trivially_true(expr) or is_trivially_false(expr):
            return True  # no information
        if isinstance(expr, C.UnOp) and expr.op == "!":
            return self._gather(expr.operand, not positive, out)
        if isinstance(expr, C.BinOp):
            op = expr.op
            if op == "&&" and positive:
                left = self._gather(expr.left, True, out)
                right = self._gather(expr.right, True, out)
                return left and right
            if op == "||" and not positive:
                left = self._gather(expr.left, False, out)
                right = self._gather(expr.right, False, out)
                return left and right
            if op in ("&&", "||"):
                return False  # disjunctive: no convex approximation
            if op in _MIRROR:
                effective = op if positive else _NEGATE[op]
                constraints = _comparison_constraints(effective, expr.left, expr.right)
                if constraints is None:
                    return False
                out.extend(constraints)
                return True
        if not positive:
            # ``!e`` for arithmetic ``e`` means ``e == 0``.
            form = linear_form(expr)
            if form is not None:
                out.append(_Constraint(form[0], form[1], eq=True))
                return True
        return False

    # -- propagation ------------------------------------------------------------

    def _propagate(self, constraints, env):
        """Tighten ``env`` (atom -> interval); False on contradiction."""
        expanded = []
        for con in constraints:
            expanded.append((con.coefs, con.const))
            if con.eq:
                expanded.append(
                    ({a: -c for a, c in con.coefs.items()}, -con.const)
                )
        for _ in range(self.passes):
            changed = False
            for coefs, const in expanded:
                if not coefs:
                    if const < 0:
                        return False
                    continue
                for atom, coef in coefs.items():
                    if coef == 0:
                        continue  # vacuous term; also guards the divisions
                    # Any solution satisfies coef·atom >= -const - S where
                    # S = Σ c·other; the weakest consequence on ``atom``
                    # alone substitutes S's maximum over the current env.
                    rest_known = True
                    rest = -const
                    for other, c in coefs.items():
                        if other == atom:
                            continue
                        lo, hi = env.get(other, TOP)
                        bound = hi if c > 0 else lo  # maximizes c·other
                        if bound is None:
                            rest_known = False
                            break
                        rest -= c * bound
                    if not rest_known:
                        continue
                    current = env.get(atom, TOP)
                    if coef > 0:
                        # atom >= ceil(rest / coef)
                        limit = -((-rest) // coef)
                        tightened = iv_meet(current, (limit, None))
                    else:
                        # atom <= floor(rest / coef); Python // floors.
                        tightened = iv_meet(current, (None, rest // coef))
                    if iv_is_empty(tightened):
                        return False
                    if tightened != current:
                        env[atom] = tightened
                        changed = True
            if not changed:
                break
        return True

    # -- goal entailment --------------------------------------------------------

    def _entails(self, goal, env):
        if isinstance(goal, C.UnOp) and goal.op == "!":
            inner = fold_constants(goal.operand)
            if isinstance(inner, C.BinOp) and inner.op in _MIRROR:
                return self._entails(
                    C.BinOp(_NEGATE[inner.op], inner.left, inner.right), env
                )
            return False
        if isinstance(goal, C.BinOp) and goal.op == "&&":
            return self._entails(fold_constants(goal.left), env) and self._entails(
                fold_constants(goal.right), env
            )
        if isinstance(goal, C.BinOp) and goal.op == "||":
            return self._entails(fold_constants(goal.left), env) or self._entails(
                fold_constants(goal.right), env
            )
        if not (isinstance(goal, C.BinOp) and goal.op in _MIRROR):
            return False
        if goal.op == "!=":
            # Non-convex: holds only when the box is entirely on one side.
            # (``_comparison_constraints`` models ``!=`` as no-information,
            # which is right for antecedents but vacuous as a goal.)
            return self._entails(
                C.BinOp("<", goal.left, goal.right), env
            ) or self._entails(C.BinOp(">", goal.left, goal.right), env)
        constraints = _comparison_constraints(goal.op, goal.left, goal.right)
        if constraints is None:
            return False
        for con in constraints:
            if not self._constraint_holds(con.coefs, con.const, env):
                return False
            if con.eq and not self._constraint_holds(
                {a: -c for a, c in con.coefs.items()}, -con.const, env
            ):
                return False
        return True

    def _constraint_holds(self, coefs, const, env):
        """Whether ``Σ coefs·atoms + const >= 0`` for every valuation in
        ``env`` (minimum of the left side is >= 0)."""
        minimum = const
        for atom, coef in coefs.items():
            lo, hi = env.get(atom, TOP)
            bound = lo if coef > 0 else hi
            if bound is None:
                return False
            minimum += coef * bound
        return minimum >= 0
