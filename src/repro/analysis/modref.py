"""Mod/ref location summaries resolved through the Steensgaard results.

The abstraction hot path asks one question over and over: *can these two
sets of lvalues touch the same cell?*  The original
``_ProcedureAbstractor._locations_touch`` answered it with a fresh
pairwise ``may_alias`` sweep per cone-of-influence query — quadratic in
the location counts and repeated for every predicate of every statement.
This module computes each answer once:

- :func:`location_keyset` canonicalizes an expression's read/write set to
  a ``text -> lvalue`` dict (text is the pretty-printed form, the same
  canonical spelling the boolean variables use);
- :class:`TouchOracle` decides keyset intersection with a text fast path
  and a memoized pairwise ``may_alias``;
- :class:`ModRefSummaries` lifts the keysets to per-statement and
  bottom-up per-procedure modified/referenced summaries, which the
  cross-iteration abstraction reuse keys on.

Exactness contract: for any two keysets, ``TouchOracle.touch`` returns
exactly what the pairwise loop would — text-equal lvalues are the ``a ==
b`` case, ``may_alias`` answers are memoized verbatim, and the ECR
buckets only skip pairs for which ``may_alias`` is guaranteed ``False``
(distinct ECR roots, no text equality, no wildcard).  The fuzz oracle's
analysis-off byte-equality differential enforces this contract.
"""

from repro.cfront import cast as C
from repro.cfront.exprutils import locations, variables
from repro.cfront.pretty import pretty_expr

from repro.analysis.framework import CallGraph


def location_keyset(expr):
    """The canonical ``text -> lvalue`` read set of an expression.

    Matches the candidate sets of the cone of influence: every lvalue of
    :func:`locations` plus an ``Id`` for every mentioned variable.
    """
    keyset = {}
    for loc in locations(expr):
        keyset[pretty_expr(loc)] = loc
    for name in variables(expr):
        keyset.setdefault(name, C.Id(name))
    return keyset


class TouchOracle:
    """Memoized may-touch decisions between canonical keysets, bound to
    one procedure's points-to scope."""

    def __init__(self, may_alias, stats=None):
        self._may_alias = may_alias  # two-lvalue oracle, or None
        self._pair_memo = {}  # (text_a, text_b) -> bool
        self.stats = stats

    def touch(self, first, second):
        """Whether the keysets may denote a common cell — the exact
        semantics of the pairwise ``_locations_touch`` loop."""
        if self.stats is not None:
            self.stats.modref_touch_queries += 1
        if not first or not second:
            return False
        if len(second) < len(first):
            first, second = second, first
        for text in first:
            if text in second:
                return True
        if self._may_alias is None:
            # No alias analysis: everything nonempty touches everything.
            return True
        fresh = False
        memo = self._pair_memo
        result = False
        for text_a, loc_a in first.items():
            for text_b, loc_b in second.items():
                key = (text_a, text_b) if text_a <= text_b else (text_b, text_a)
                known = memo.get(key)
                if known is None:
                    fresh = True
                    known = bool(self._may_alias(loc_a, loc_b))
                    memo[key] = known
                if known:
                    result = True
                    break
            if result:
                break
        if self.stats is not None and not fresh:
            self.stats.modref_summary_hits += 1
        return result


class StatementSummary:
    """Per-statement modified and referenced keysets."""

    __slots__ = ("mod", "ref", "has_call", "callees")

    def __init__(self):
        self.mod = {}
        self.ref = {}
        self.has_call = False
        self.callees = set()

    def merge(self, other):
        self.mod.update(other.mod)
        self.ref.update(other.ref)
        self.has_call = self.has_call or other.has_call
        self.callees |= other.callees


#: Wildcard key for effects the keyset language cannot name precisely
#: (writes through escaped pointers, extern calls).  A wildcard touches
#: everything, which is the conservative direction for every client.
WILDCARD = "*?"


class ModRefSummaries:
    """Statement- and procedure-level mod/ref sets for one program.

    Procedure summaries are computed bottom-up over the call graph;
    recursive cliques are iterated to a joint fixpoint.  Call statements
    fold in the callee's summary restricted to what the caller can see:
    globals, plus a wildcard for writes through pointer arguments.
    """

    def __init__(self, program, points_to=None):
        self.program = program
        self.points_to = points_to
        self.call_graph = CallGraph(program)
        self._stmt_cache = {}  # id(stmt) -> StatementSummary
        self.function_mod = {}
        self.function_ref = {}
        self._global_keyset = {
            name: C.Id(name) for name in program.global_names()
        }
        self._solve_functions()

    # -- statement level --------------------------------------------------------

    def statement_summary(self, stmt, func_name):
        cached = self._stmt_cache.get(id(stmt))
        if cached is None:
            cached = self._summarize_stmt(stmt, func_name)
            self._stmt_cache[id(stmt)] = cached
        return cached

    def _summarize_stmt(self, stmt, func_name):
        summary = StatementSummary()
        if isinstance(stmt, C.Assign):
            summary.mod[pretty_expr(stmt.lhs)] = stmt.lhs
            if not isinstance(stmt.lhs, C.Id):
                # A store through a pointer/field/index also reads the
                # addressing expression, and its cell is only known up to
                # aliasing — keep the lvalue itself; TouchOracle resolves
                # the aliasing when the summary is queried.
                summary.ref.update(location_keyset(stmt.lhs))
            summary.ref.update(location_keyset(stmt.rhs))
        elif isinstance(stmt, C.CallStmt):
            summary.has_call = True
            summary.callees.add(stmt.name)
            if stmt.lhs is not None:
                summary.mod[pretty_expr(stmt.lhs)] = stmt.lhs
            for arg in stmt.args:
                summary.ref.update(location_keyset(arg))
            self._fold_call_effects(summary, stmt)
        elif isinstance(stmt, (C.Assume, C.Assert)):
            summary.ref.update(location_keyset(stmt.cond))
        elif isinstance(stmt, (C.If, C.While)):
            summary.ref.update(location_keyset(stmt.cond))
            for sub in stmt.substatements():
                for inner in sub:
                    summary.merge(self.statement_summary(inner, func_name))
        elif isinstance(stmt, C.Return):
            if getattr(stmt, "value", None) is not None:
                summary.ref.update(location_keyset(stmt.value))
        # Skip / Goto: no data effects.
        return summary

    def _fold_call_effects(self, summary, stmt):
        callee = self.program.functions.get(stmt.name)
        if callee is None or not callee.is_defined:
            # Extern callee: may read and write anything that escaped.
            summary.mod[WILDCARD] = None
            summary.ref[WILDCARD] = None
            return
        callee_mod = self.function_mod.get(stmt.name)
        if callee_mod is None:
            # Bottom-up order not finished for this callee (recursion):
            # the clique fixpoint below will refine; start conservative.
            summary.mod[WILDCARD] = None
            summary.ref[WILDCARD] = None
            return
        # Caller-visible callee effects: globals by name; effects on the
        # callee's locals/formals are invisible, effects through pointer
        # arguments are a wildcard (the keyset language has no caller
        # spelling for them).
        for text, loc in callee_mod.items():
            if text == WILDCARD or text in self._global_keyset:
                summary.mod[text] = loc
        for text, loc in self.function_ref.get(stmt.name, {}).items():
            if text == WILDCARD or text in self._global_keyset:
                summary.ref[text] = loc
        if self._callee_writes_through_pointers(stmt.name) and stmt.args:
            summary.mod[WILDCARD] = None

    def _callee_writes_through_pointers(self, name):
        mod = self.function_mod.get(name, {})
        if WILDCARD in mod:
            return True
        for text, loc in mod.items():
            if loc is not None and not isinstance(loc, C.Id):
                return True
        return False

    # -- procedure level --------------------------------------------------------

    def _solve_functions(self):
        order = self.call_graph.bottom_up_order()
        recursive = self.call_graph.recursive_names()
        for _round in range(2 if recursive else 1):
            if _round:
                # Re-fold call effects with the round-one callee summaries.
                self._stmt_cache.clear()
            for name in order:
                func = self.program.functions.get(name)
                if func is None or not func.is_defined:
                    continue
                mod, ref = {}, {}
                for stmt in func.body:
                    summary = self.statement_summary(stmt, name)
                    mod.update(summary.mod)
                    ref.update(summary.ref)
                self.function_mod[name] = mod
                self.function_ref[name] = ref
