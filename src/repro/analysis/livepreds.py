"""Live-predicate analysis: which predicates can still influence the
instrumented specification at each program point.

A (statement, predicate) pair is translated by C2bp into a parallel
assignment slot ``{φ} = choose(F(WP(s, φ)), F(WP(s, ¬φ)))`` — the most
expensive operation in the tool, a cube search with one prover query per
cube.  But the slot's *value* only matters if φ can later be observed:
by an ``assert``/``assume``/branch guard whose ``G`` reads it, by
another slot whose ``F`` reads it, by a return predicate, or by an
invariant query at a label.  This pass runs the standard backward
may-live recipe over the function CFG with those observations as uses,
and C2bp emits ``unknown()`` for slots of dead predicates instead of
running the cube search (the Section 2.1 invalidation case — sound
because ``unknown()`` over-approximates any ``choose``).

Soundness of the per-slot kill is exactly the ``wp_unchanged`` test:
a predicate without a slot keeps its value through the statement, so it
is *not* defined there and stays live.  Conservative anchors keep the
observable surface intact:

- predicates named by the procedure's ``enforce`` invariant Ω are always
  live (Ω filters states at every assignment, so coarsening a variable Ω
  reads could change reachability);
- global predicates are always live (they are observable in callees and
  callers this intraprocedural pass cannot see);
- at labels every predicate is live on both sides (labels are invariant
  observation points);
- at call statements every predicate is live (the call translator's
  re-strengthening reads arbitrary scope predicates).
"""

from repro.cfront import cast as C
from repro.boolprog import ast as B

from repro.analysis.framework import BACKWARD, DataflowAnalysis
from repro.analysis.modref import location_keyset


class LivePredicates(DataflowAnalysis):
    """The solved liveness facts for one procedure.

    Query with :meth:`live_out` / :meth:`is_live`; facts are frozensets
    of predicate *names* (the boolean variable identifiers), or ``None``
    meaning "every predicate" at conservative anchors.
    """

    direction = BACKWARD

    def __init__(
        self,
        cfg,
        scope_predicates,
        return_predicates,
        may_alias,
        toucher,
        options,
        enforce_names=(),
    ):
        super().__init__(cfg)
        self.scope_predicates = list(scope_predicates)
        self.all_names = frozenset(p.name for p in self.scope_predicates)
        self.always = frozenset(
            p.name for p in self.scope_predicates if p.is_global
        ) | (frozenset(enforce_names) & self.all_names)
        self.exit_names = frozenset(p.name for p in return_predicates)
        self._may_alias = may_alias
        self._toucher = toucher
        self._options = options
        self._keysets = {
            p.name: location_keyset(p.expr) for p in self.scope_predicates
        }
        self._slot_cache = {}  # (sid, name) -> (has_slot, uses frozenset)
        self._cone_cache = {}
        self.solve()
        # live-out per statement id: for a backward pass fact_in is the
        # fact flowing into the node against execution order, i.e. the
        # execution-order live-out.
        self._live_out = {}
        for node in cfg.nodes:
            if node.stmt is not None and getattr(node.stmt, "sid", None) is not None:
                fact = self.fact_in[node.uid]
                if node.stmt.labels or isinstance(node.stmt, C.CallStmt):
                    fact = None  # conservative anchor: everything live
                self._live_out[node.stmt.sid] = fact

    # -- queries ----------------------------------------------------------------

    def live_out(self, stmt):
        """The predicate names live after ``stmt`` (None = all)."""
        sid = getattr(stmt, "sid", None)
        if sid is None or sid not in self._live_out:
            return None
        return self._live_out[sid]

    def live_out_by_sid(self, sid):
        """Like :meth:`live_out` but keyed by statement id (for cache
        keys); None for unknown sids, the conservative reading."""
        return self._live_out.get(sid)

    def is_live(self, stmt, name):
        fact = self.live_out(stmt)
        if fact is None:
            return True
        return name in fact or name in self.always

    # -- the lattice ------------------------------------------------------------

    def bottom(self):
        return frozenset()

    def boundary(self):
        return self.exit_names | self.always

    def join(self, left, right):
        return left | right

    def equals(self, left, right):
        return left == right

    def transfer(self, node, live_out):
        stmt = node.stmt
        if node.kind == "branch":
            live = live_out | self._cone_names(stmt.cond)
            if stmt.labels:
                live = self.all_names
            return live
        if stmt is None:  # entry / exit
            return live_out
        if stmt.labels:
            return self.all_names
        if isinstance(stmt, C.CallStmt):
            return self.all_names
        if isinstance(stmt, (C.Assume, C.Assert)):
            return live_out | self._cone_names(stmt.cond)
        if isinstance(stmt, C.Assign):
            defs = set()
            uses = set()
            observed = live_out | self.always
            for predicate in self.scope_predicates:
                has_slot, slot_uses = self._slot(stmt, predicate)
                if not has_slot:
                    continue
                defs.add(predicate.name)
                if predicate.name in observed:
                    uses |= slot_uses
            return (live_out - defs) | uses | self.always
        # Skip, Goto, Return: no predicate reads or writes of their own
        # (return predicates are seeded at the exit boundary).
        return live_out

    # -- per-slot facts ---------------------------------------------------------

    def _slot(self, stmt, predicate):
        """Whether ``stmt`` defines a slot for ``predicate`` and, if so,
        the predicate names the slot's value expressions may read."""
        key = (stmt.sid, predicate.name)
        cached = self._slot_cache.get(key)
        if cached is not None:
            return cached
        from repro.core.abstractor import _has_constant_deref
        from repro.core.wp import weakest_precondition, wp_unchanged

        options = self._options
        if getattr(options, "skip_unchanged", True) and wp_unchanged(
            stmt.lhs, stmt.rhs, predicate.expr, self._may_alias
        ):
            result = (False, frozenset())
            self._slot_cache[key] = result
            return result
        wp_pos = weakest_precondition(
            stmt.lhs, stmt.rhs, predicate.expr, self._may_alias
        )
        wp_neg = weakest_precondition(
            stmt.lhs, stmt.rhs, C.negate(predicate.expr), self._may_alias
        )
        if getattr(options, "invalidate_constant_derefs", True) and (
            _has_constant_deref(wp_pos) or _has_constant_deref(wp_neg)
        ):
            # The slot becomes unknown() regardless of liveness: no reads.
            result = (True, frozenset())
        else:
            result = (True, self._cone_names(wp_pos) | self._cone_names(wp_neg))
        self._slot_cache[key] = result
        return result

    def _cone_names(self, phi):
        """The names of the cone-of-influence closure of φ over the scope
        predicates — exactly the candidates ``F``/``G`` may read."""
        from repro.cfront.exprutils import (
            fold_constants,
            is_trivially_false,
            is_trivially_true,
        )

        phi = fold_constants(phi)
        if is_trivially_true(phi) or is_trivially_false(phi):
            return frozenset()
        if not getattr(self._options, "cone_of_influence", True):
            return self.all_names
        key = str(phi)
        cached = self._cone_cache.get(key)
        if cached is not None:
            return cached
        relevant = dict(location_keyset(phi))
        chosen = set()
        remaining = [p for p in self.scope_predicates]
        changed = True
        while changed:
            changed = False
            still = []
            for predicate in remaining:
                keyset = self._keysets[predicate.name]
                if self._toucher.touch(keyset, relevant):
                    chosen.add(predicate.name)
                    relevant.update(keyset)
                    changed = True
                else:
                    still.append(predicate)
            remaining = still
        result = frozenset(chosen)
        self._cone_cache[key] = result
        return result


def enforce_variable_names(enforce_expr):
    """The boolean variables (predicate names) an enforce invariant reads."""
    if enforce_expr is None:
        return frozenset()
    return frozenset(B.expr_variables(enforce_expr))
