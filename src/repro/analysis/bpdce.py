"""Dead-variable elimination for boolean programs.

Every boolean variable costs Bebop a BDD level and every assignment a
transfer, but an ``unknown()`` slot for a pruned predicate — or a
predicate only relevant in one procedure — is often never read anywhere:
no assume/assert/branch condition mentions it, no live assignment reads
it, no call passes it, no return yields it.  This pass removes such
variables and their assignments before model checking.

The analysis is a flow-insensitive never-read fixpoint, deliberately
weaker than full per-point liveness: a variable is kept as soon as *any*
read position mentions it.  That makes the transformation a pure
projection — reachability of every remaining statement, every assert
verdict, and every label invariant over the surviving variables is
untouched, which is exactly the contract the CEGAR loop and the fuzz
oracle check.

Interface stability: formal parameter lists and return arities are never
changed (callers and the trace-replay machinery depend on them); call
targets are dropped only when the whole target list is dead.  The input
program is not mutated — statements are rebuilt, expressions shared.
"""

from repro.boolprog import ast as B


def _collect_reads(procedures):
    """Root reads (always observed) and the assignment edges of the
    never-read fixpoint: ``(target, value_vars)`` per assignment pair."""
    roots = set()
    assign_edges = []
    call_target_groups = []

    def scan(stmts):
        for stmt in stmts:
            if isinstance(stmt, B.BAssign):
                for target, value in zip(stmt.targets, stmt.values):
                    assign_edges.append((target, B.expr_variables(value)))
            elif isinstance(stmt, (B.BAssume, B.BAssert)):
                roots.update(B.expr_variables(stmt.cond))
            elif isinstance(stmt, (B.BIf, B.BWhile)):
                roots.update(B.expr_variables(stmt.cond))
                for sub in stmt.substatements():
                    scan(sub)
            elif isinstance(stmt, B.BCall):
                for arg in stmt.args:
                    roots.update(B.expr_variables(arg))
                if stmt.targets:
                    call_target_groups.append(stmt.targets)
            elif isinstance(stmt, B.BReturn):
                for value in stmt.values:
                    roots.update(B.expr_variables(value))

    for proc in procedures:
        if proc.enforce is not None:
            roots.update(B.expr_variables(proc.enforce))
        scan(proc.body)
    return roots, assign_edges, call_target_groups


def _live_fixpoint(roots, assign_edges):
    live = set(roots)
    changed = True
    while changed:
        changed = False
        for target, value_vars in assign_edges:
            if target in live and not value_vars <= live:
                live |= value_vars
                changed = True
    return live


def _copy_meta(new, old):
    new.labels = list(old.labels)
    new.source_sid = old.source_sid
    new.comment = old.comment
    return new


def eliminate_dead_variables(program, stats=None):
    """A new :class:`~repro.boolprog.ast.BProgram` without never-read
    variables, or ``program`` itself when nothing is eliminable.

    Returns ``(program, eliminated_count)``; ``stats.bp_vars_eliminated``
    is incremented by the count when a stats object is supplied.
    """
    procedures = list(program.procedures.values())
    roots, assign_edges, call_target_groups = _collect_reads(procedures)
    live = _live_fixpoint(roots, assign_edges)
    # Call targets are all-or-nothing (the target list's arity must match
    # the callee's returns): if any target survives, every target in the
    # group keeps its declaration.
    retained = set()
    for targets in call_target_groups:
        if any(t in live for t in targets):
            retained.update(targets)
    keep = live | retained
    # Formals are part of the call interface and always keep their slots.
    for proc in procedures:
        keep.update(proc.formals)

    eliminated = [name for name in program.globals if name not in keep]
    for proc in procedures:
        eliminated.extend(name for name in proc.locals if name not in keep)
    if not eliminated:
        return program, 0

    result = B.BProgram()
    result.globals = [name for name in program.globals if name in keep]
    for proc in procedures:
        result.add_procedure(
            B.BProcedure(
                proc.name,
                proc.formals,
                [name for name in proc.locals if name in keep],
                proc.returns,
                _rewrite_body(proc.body, live, keep),
                enforce=proc.enforce,
            )
        )
    if stats is not None:
        stats.bp_vars_eliminated += len(eliminated)
    return result, len(eliminated)


def _rewrite_body(stmts, live, keep):
    rewritten = []
    for stmt in stmts:
        if isinstance(stmt, B.BAssign):
            pairs = [
                (target, value)
                for target, value in zip(stmt.targets, stmt.values)
                if target in live
            ]
            if pairs:
                new = B.BAssign([t for t, _ in pairs], [v for _, v in pairs])
            else:
                new = B.BSkip()  # keep the node: labels / sid anchor traces
            rewritten.append(_copy_meta(new, stmt))
        elif isinstance(stmt, B.BIf):
            new = B.BIf(
                stmt.cond,
                _rewrite_body(stmt.then_body, live, keep),
                _rewrite_body(stmt.else_body, live, keep),
            )
            rewritten.append(_copy_meta(new, stmt))
        elif isinstance(stmt, B.BWhile):
            new = B.BWhile(stmt.cond, _rewrite_body(stmt.body, live, keep))
            rewritten.append(_copy_meta(new, stmt))
        elif isinstance(stmt, B.BCall):
            targets = stmt.targets if any(t in keep for t in stmt.targets) else []
            new = B.BCall(targets, stmt.name, stmt.args)
            rewritten.append(_copy_meta(new, stmt))
        elif isinstance(stmt, B.BAssume):
            rewritten.append(_copy_meta(B.BAssume(stmt.cond), stmt))
        elif isinstance(stmt, B.BAssert):
            rewritten.append(_copy_meta(B.BAssert(stmt.cond), stmt))
        elif isinstance(stmt, B.BReturn):
            rewritten.append(_copy_meta(B.BReturn(stmt.values), stmt))
        elif isinstance(stmt, B.BGoto):
            rewritten.append(_copy_meta(B.BGoto(stmt.label), stmt))
        else:
            rewritten.append(_copy_meta(B.BSkip(), stmt))
    return rewritten
