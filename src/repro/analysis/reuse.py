"""Cross-iteration reuse of statement abstractions.

Each CEGAR iteration re-runs C2bp with a slightly larger predicate set,
yet most statements' translations cannot have changed: a new predicate
only affects a statement when it reaches the statement's mod/ref closure
(it gains a slot there, or enters some slot's cone of influence).
:class:`AbstractionReuse` caches each top-level statement's translated
parts keyed by everything the translation reads — the statement text,
the scope predicates inside its mod/ref closure, its liveness fact, and
the involved signatures — so the next iteration re-translates only the
statements the new predicates actually touch.

Byte identity with a fresh run comes from reusing the parallel-merge
discipline: translations are produced (and cached) with per-statement
temporary prefixes, then assembled with the same first-use renumbering
``_run_parallel`` applies, which the test suite already pins as
identical to a serial translation.  Cached parts are cloned on both
store and fetch because assembly renames statement nodes in place.
"""

from repro.boolprog import ast as B


def clone_stmts(stmts):
    """Deep-copy boolean statements (expressions are immutable and
    shared), preserving labels, source sids, and comments."""
    copies = []
    for stmt in stmts:
        if isinstance(stmt, B.BAssign):
            new = B.BAssign(list(stmt.targets), list(stmt.values))
        elif isinstance(stmt, B.BAssume):
            new = B.BAssume(stmt.cond)
        elif isinstance(stmt, B.BAssert):
            new = B.BAssert(stmt.cond)
        elif isinstance(stmt, B.BIf):
            new = B.BIf(
                stmt.cond, clone_stmts(stmt.then_body), clone_stmts(stmt.else_body)
            )
        elif isinstance(stmt, B.BWhile):
            new = B.BWhile(stmt.cond, clone_stmts(stmt.body))
        elif isinstance(stmt, B.BCall):
            new = B.BCall(list(stmt.targets), stmt.name, list(stmt.args))
        elif isinstance(stmt, B.BReturn):
            new = B.BReturn(list(stmt.values))
        elif isinstance(stmt, B.BGoto):
            new = B.BGoto(stmt.label)
        else:
            new = B.BSkip()
        new.labels = list(stmt.labels)
        new.source_sid = stmt.source_sid
        new.comment = stmt.comment
        copies.append(new)
    return copies


class AbstractionReuse:
    """The cache.  One instance lives across the CEGAR loop; C2bp
    consults it per top-level statement (and per procedure enforce)."""

    def __init__(self, stats=None):
        self._statements = {}  # key -> payload
        self._enforce = {}  # (func, scope names) -> enforce expr
        self.stats = stats

    # -- statements -------------------------------------------------------------

    def fetch(self, key):
        payload = self._statements.get(key)
        if payload is None:
            if self.stats is not None:
                self.stats.c2bp_stmts_retranslated += 1
            return None
        if self.stats is not None:
            self.stats.c2bp_stmts_reused += 1
        return {
            "stmts": clone_stmts(payload["stmts"]),
            "temps": list(payload["temps"]),
            "temp_meanings": list(payload["temp_meanings"]),
            "c2bp": dict(payload["c2bp"]),
        }

    def store(self, key, stmts, temps, temp_meanings, c2bp_counters):
        self._statements[key] = {
            "stmts": clone_stmts(stmts),
            "temps": list(temps),
            "temp_meanings": list(temp_meanings),
            "c2bp": dict(c2bp_counters),
        }

    # -- enforce invariants -----------------------------------------------------

    def fetch_enforce(self, key):
        """``(hit, enforce)`` — a hit's enforce can legitimately be None
        (no inconsistent cubes), so presence must be reported separately."""
        if key in self._enforce:
            return True, self._enforce[key]
        return False, None

    def store_enforce(self, key, enforce):
        self._enforce[key] = enforce
