"""Feasibility checking and predicate discovery.

Given the path constraints from :class:`PathSimulator`:

1. ask the prover whether the conjunction is satisfiable — if so, the
   reported error path is *genuine* (SLAM reports it to the user; the
   toolkit "never reports spurious error paths");
2. otherwise greedily minimize the inconsistent constraint set and extract
   refinement predicates from the core's provenance: the original branch
   conditions (scoped to their procedures) plus ``x == rhs`` equalities for
   the assignments feeding the core's variables.
"""

import contextlib

from repro.cfront import cast as C
from repro.cfront.exprutils import is_pure_predicate, substitute, variables
from repro.core.predicates import Predicate
from repro.prover import Prover, Satisfiability
from repro.newton.pathsym import PathSimulator


class NewtonResult:
    """Outcome of analyzing one counterexample path."""

    def __init__(self, feasible, new_predicates=(), core=()):
        self.feasible = feasible
        self.new_predicates = list(new_predicates)
        self.core = list(core)
        # Filled by the optional bmc-confirm step (``--bmc-confirm``):
        # ``witness`` is a replay-validated concrete input trace,
        # ``bmc_refuted`` flags a bit-level disagreement with the logical
        # feasibility verdict (the verdict itself stands either way).
        self.witness = None
        self.bmc_checked = False
        self.bmc_refuted = False

    def __repr__(self):
        if self.feasible:
            return "NewtonResult(feasible)"
        return "NewtonResult(infeasible, %d new predicates)" % len(
            self.new_predicates
        )


def analyze_path(program, steps, prover=None, existing_predicates=None, context=None):
    """Analyze one C-level path (list of :class:`CPathStep`)."""
    if context is not None:
        prover = prover if prover is not None else context.prover
        phase = context.phase("newton")
    else:
        prover = prover or Prover()
        phase = contextlib.nullcontext()
    with phase:
        simulator = PathSimulator(program)
        constraints = simulator.simulate(steps)
        formulas = [c.formula for c in constraints]
        verdict = prover.is_satisfiable(formulas)
        if verdict is not Satisfiability.UNSAT:
            # SAT or UNKNOWN: treat as feasible (never refute a real error).
            result = NewtonResult(True)
            if context is not None and getattr(
                context.options, "bmc_confirm", False
            ):
                _bmc_confirm(program, steps, result, context)
            return result
        core = _minimize_core(prover, constraints)
        predicates = _predicates_from_core(
            program, simulator, core, existing_predicates
        )
        return NewtonResult(False, predicates, core)


def _bmc_confirm(program, steps, result, context):
    """Replay a feasible path through the bit-precise encoder: attach a
    concrete witness when one validates, flag the disagreement when the
    path is UNSAT at the bounded width.  Never changes ``feasible``."""
    from repro.bmc import BmcUnsupported, confirm_path, ensure_bmc_stats

    stats = ensure_bmc_stats(context)
    try:
        with context.phase("bmc-confirm"):
            outcome = confirm_path(
                program, steps, width=getattr(context.options, "bmc_width", 16)
            )
    except BmcUnsupported:
        return
    if not outcome.checked:
        return
    result.bmc_checked = True
    stats.confirms += 1
    if outcome.refuted:
        result.bmc_refuted = True
        stats.refuted += 1
        context.events.emit(
            "newton.bmc_refuted",
            steps=len(steps),
            width=getattr(context.options, "bmc_width", 16),
        )
    elif outcome.confirmed:
        result.witness = outcome.witness
        stats.confirmed += 1


def _minimize_core(prover, constraints):
    """Greedy minimal inconsistent subset (one prover call per removal)."""
    core = list(constraints)
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1 :]
        formulas = [c.formula for c in candidate]
        if candidate and prover.is_satisfiable(formulas) is Satisfiability.UNSAT:
            core = candidate
        else:
            index += 1
    return core


def _predicates_from_core(program, simulator, core, existing):
    existing_exprs = set()
    if existing is not None:
        existing_exprs = {
            (p.scope, p.expr) for p in existing.all_predicates()
        }
        existing_exprs |= {
            (p.scope, C.negate(p.expr)) for p in existing.all_predicates()
        }
    found = []
    seen = set()

    global_names = set(program.global_names())

    def consider(expr, scope):
        expr = _normalize(expr)
        if expr is None:
            return
        if variables(expr) <= global_names:
            # A fact purely over globals must be visible program-wide so
            # assignments in *other* procedures update it.
            scope = None
        key = (scope, expr)
        neg_key = (scope, C.negate(expr))
        if key in seen or neg_key in seen:
            return
        if key in existing_exprs or neg_key in existing_exprs:
            return
        if not is_pure_predicate(expr):
            return
        if not _in_scope(program, expr, scope):
            return
        seen.add(key)
        found.append(Predicate(expr, scope))

    core_variables = set()
    for constraint in core:
        consider(constraint.source_expr, constraint.func_name)
        core_variables |= {
            (constraint.func_name, name)
            for name in variables(constraint.source_expr)
        }
    # Data-flow predicates: equalities for assignments that defined the
    # variables the core conditions read.
    for (func_name, var_name), rhs in simulator.last_assignment.items():
        if (func_name, var_name) not in core_variables:
            continue
        if isinstance(rhs, (C.IntLit, C.Id)) or _is_simple_arith(rhs):
            consider(C.BinOp("==", C.Id(var_name), rhs), func_name)
    # Interprocedural predicates: a core fact about a variable bound from a
    # call result must be trackable through the callee's return predicates
    # (Section 4.5.2's E_r) — propose the fact over the callee's return
    # variable, scoped to the callee.
    for constraint in core:
        source = constraint.source_expr
        if not isinstance(source, C.BinOp) or source.op not in C.REL_OPS:
            continue
        for side, other in ((source.left, source.right), (source.right, source.left)):
            if not isinstance(side, C.Id):
                continue
            callee_name = simulator.call_assignment.get(
                (constraint.func_name, side.name)
            )
            if callee_name is None:
                continue
            callee = program.functions.get(callee_name)
            if callee is None or callee.return_var is None:
                continue
            translated = substitute(source, {side: C.Id(callee.return_var)})
            consider(translated, callee_name)
    return found


def _normalize(expr):
    """Keep predicates boolean-shaped: wrap non-relational expressions."""
    if isinstance(expr, C.BinOp) and (expr.op in C.REL_OPS or expr.op in C.LOGIC_OPS):
        return expr
    if isinstance(expr, C.UnOp) and expr.op == "!":
        return expr
    if isinstance(expr, C.IntLit):
        return None  # constant conditions carry no refinement information
    return C.BinOp("!=", expr, C.IntLit(0))


def _is_simple_arith(expr):
    if not isinstance(expr, C.BinOp) or expr.op not in ("+", "-", "*"):
        return False
    return all(
        isinstance(node, (C.Id, C.IntLit, C.BinOp)) for node in _walk_shallow(expr)
    )


def _walk_shallow(expr):
    yield expr
    for child in expr.children():
        yield from _walk_shallow(child)


def _in_scope(program, expr, scope):
    """Every variable of the predicate must resolve in its scope."""
    for name in variables(expr):
        if program.lookup_var(scope, name) is None:
            return False
    return True
