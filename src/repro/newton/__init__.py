"""Newton — predicate discovery from infeasible counterexample paths.

The PLDI 2001 paper uses Newton as a black box ("the subject of a future
paper"): given an error path reported by Bebop over ``BP(P, E)``, Newton
decides whether the path is feasible in the C program ``P``; if it is not,
it produces new predicates that refine the abstraction so the spurious path
disappears.  This package implements that interface:

- :mod:`repro.newton.pathsym` — forward symbolic simulation of a C path,
  producing path constraints with provenance;
- :mod:`repro.newton.discover` — feasibility checking (via the prover),
  greedy minimization of the inconsistent constraint set, and predicate
  extraction from the minimized core.
"""

from repro.newton.discover import NewtonResult, analyze_path
from repro.newton.pathsym import CPathStep, PathSimulator, path_from_boolean_steps

__all__ = [
    "CPathStep",
    "NewtonResult",
    "PathSimulator",
    "analyze_path",
    "path_from_boolean_steps",
]
