"""Forward symbolic simulation of one interprocedural C path.

The simulator walks a sequence of C-level steps (statements and decided
branches) maintaining a symbolic store that maps locations to expressions
over fresh *symbols* (the unknown initial values and environment inputs).
Each branch outcome, ``assume``, and ``assert`` contributes a path
constraint (passed asserts positively, the final failing assert of a
counterexample negatively); each
constraint remembers its *provenance* — the original program expression and
the assignments that built its value — which the discovery phase mines for
refinement predicates.

Heap handling is deliberately coarse (the real Newton is a paper of its
own): dereference chains are keyed by the symbolic value of their base
pointer, and a store through a pointer havocs every same-shaped key it may
alias.  Coarseness only *weakens* constraints, so a path declared
infeasible (UNSAT) is genuinely infeasible — the direction CEGAR needs.
"""

from repro.cfront import cast as C
from repro.cfront.cfg import build_program_cfgs
from repro.cfront.exprutils import fold_constants, substitute, variables, walk


class CPathStep:
    """One step of a concrete/abstract path at the C level."""

    __slots__ = ("func_name", "stmt", "kind", "outcome")

    def __init__(self, func_name, stmt, kind, outcome=None):
        self.func_name = func_name
        self.stmt = stmt
        self.kind = kind  # "stmt" | "branch" | "call" | "return"
        self.outcome = outcome

    def __repr__(self):
        extra = "" if self.outcome is None else " %r" % self.outcome
        return "<CPathStep %s %s%s>" % (self.func_name, self.kind, extra)


def path_from_boolean_steps(program, steps):
    """Map a boolean-program path (``repro.bebop.explicit.PathStep``) back
    to C statements through the ``source_sid`` correspondence."""
    sid_map = {}
    build_program_cfgs(program)  # idempotent: sids already stamped
    for func in program.defined_functions():

        def visit(stmts):
            for stmt in stmts:
                if stmt.sid is not None:
                    sid_map[stmt.sid] = (func.name, stmt)
                for sub in stmt.substatements():
                    visit(sub)

        visit(func.body)
    c_steps = []
    for step in steps:
        sid = getattr(step.stmt, "source_sid", None)
        if sid is None or sid not in sid_map:
            continue
        func_name, stmt = sid_map[sid]
        if step.kind == "branch":
            c_steps.append(CPathStep(func_name, stmt, "branch", step.outcome))
        elif step.kind == "call":
            c_steps.append(CPathStep(func_name, stmt, "call"))
        elif step.kind == "return":
            c_steps.append(CPathStep(func_name, stmt, "return"))
        else:
            c_steps.append(CPathStep(func_name, stmt, "stmt"))
    return _dedup_adjacent(c_steps)


def _dedup_adjacent(steps):
    """Several boolean statements can share one C source statement (e.g. a
    BCall plus its update assignment); collapse immediate repetitions that
    are not branch revisits."""
    out = []
    for step in steps:
        if (
            out
            and step.kind == "stmt"
            and out[-1].kind in ("stmt", "call")
            and out[-1].stmt is step.stmt
        ):
            continue
        out.append(step)
    return out


class Constraint:
    """One path constraint with provenance for predicate discovery."""

    __slots__ = ("formula", "source_expr", "func_name", "polarity")

    def __init__(self, formula, source_expr, func_name, polarity):
        self.formula = formula  # expression over symbols
        self.source_expr = source_expr  # expression over program variables
        self.func_name = func_name
        self.polarity = polarity

    def __repr__(self):
        return "Constraint(%r)" % (self.formula,)


class PathSimulator:
    def __init__(self, program):
        self.program = program
        self.constraints = []
        # Per-activation scalar stores; activation ids make recursion safe.
        self._frames = []  # list of (func_name, activation id, {name: expr})
        self._globals = {}
        self._heap = {}  # (kind, key...) -> expr
        self._fresh = 0
        self._activations = 0
        # Assignment provenance: (func, var) -> rhs source expression.
        self.last_assignment = {}
        # (func, var) -> callee name, for variables bound from call results
        # (drives interprocedural predicate discovery).
        self.call_assignment = {}
        self._pending_call = None

    # -- symbols -----------------------------------------------------------

    def fresh_symbol(self, hint="sym"):
        self._fresh += 1
        name = "__%s%d" % (hint, self._fresh)
        return C.Id(name)

    # -- store --------------------------------------------------------------

    def _frame(self):
        return self._frames[-1]

    def push_frame(self, func_name, bindings):
        self._activations += 1
        self._frames.append((func_name, self._activations, dict(bindings)))

    def pop_frame(self):
        return self._frames.pop()

    def _lookup_var(self, func_name, name):
        if self._frames:
            frame_func, _, store = self._frame()
            func = self.program.functions.get(frame_func)
            if func is not None and func.lookup_var(name) is not None:
                if name not in store:
                    store[name] = self.fresh_symbol(name)
                return store[name]
        if name not in self._globals:
            decl = self.program.lookup_global(name)
            if decl is not None and isinstance(decl.init, C.IntLit):
                # C globals start at their (constant) initializers.
                self._globals[name] = decl.init
            else:
                self._globals[name] = self.fresh_symbol(name)
        return self._globals[name]

    def _set_var(self, func_name, name, value):
        if self._frames:
            frame_func, _, store = self._frame()
            func = self.program.functions.get(frame_func)
            if func is not None and func.lookup_var(name) is not None:
                store[name] = value
                return
        self._globals[name] = value

    def _heap_key(self, lvalue, func_name):
        """A canonical key for a dereference-based location."""
        if isinstance(lvalue, C.Deref):
            base = self.eval_expr(lvalue.pointer, func_name)
            return ("deref", base._key())
        if isinstance(lvalue, C.FieldAccess):
            if isinstance(lvalue.base, C.Deref):
                base = self.eval_expr(lvalue.base.pointer, func_name)
                return ("field", lvalue.field, base._key())
            base_key = self._heap_key(lvalue.base, func_name) if not isinstance(
                lvalue.base, C.Id
            ) else ("var", lvalue.base.name)
            return ("field", lvalue.field) + tuple([base_key])
        if isinstance(lvalue, C.Index):
            base = self.eval_expr(lvalue.base, func_name)
            index = self.eval_expr(lvalue.index, func_name)
            return ("elem", base._key(), index._key())
        raise ValueError("not a heap location: %r" % (lvalue,))

    def _heap_read(self, lvalue, func_name):
        key = self._heap_key(lvalue, func_name)
        if key not in self._heap:
            self._heap[key] = self.fresh_symbol("mem")
        return self._heap[key]

    def _heap_write(self, lvalue, value, func_name):
        key = self._heap_key(lvalue, func_name)
        # Havoc possibly-aliased keys of the same shape (sound for
        # feasibility: weaker constraints).
        shape = key[:2] if key[0] == "field" else key[:1]
        for other in list(self._heap):
            if other == key:
                continue
            other_shape = other[:2] if other[0] == "field" else other[:1]
            if other_shape == shape:
                self._heap[other] = self.fresh_symbol("mem")
        self._heap[key] = value

    # -- expression evaluation ------------------------------------------------

    def eval_expr(self, expr, func_name):
        """The symbolic value of ``expr`` in the current store."""
        if isinstance(expr, C.IntLit):
            return expr
        if isinstance(expr, C.Id):
            return self._lookup_var(func_name, expr.name)
        if isinstance(expr, C.Unknown):
            return self.fresh_symbol("input")
        if isinstance(expr, (C.Deref, C.FieldAccess, C.Index)):
            return self._heap_read(expr, func_name)
        if isinstance(expr, C.AddrOf):
            # Addresses are opaque but stable: key them by the printed form.
            from repro.cfront.pretty import pretty_expr

            return C.AddrOf(C.Id("__loc_" + pretty_expr(expr.operand).replace(" ", "")))
        if isinstance(expr, C.Cast):
            return self.eval_expr(expr.operand, func_name)
        children = expr.children()
        if children:
            rebuilt = expr.rebuild(
                tuple(self.eval_expr(child, func_name) for child in children)
            )
            return fold_constants(rebuilt)
        return expr

    # -- steps -------------------------------------------------------------------

    def simulate(self, steps):
        """Run the path; returns the accumulated constraints."""
        if not steps:
            return self.constraints
        self.push_frame(steps[0].func_name, {})
        last = len(steps) - 1
        for index, step in enumerate(steps):
            self._step(step, is_last=index == last)
        return self.constraints

    def _step(self, step, is_last=False):
        stmt = step.stmt
        func_name = step.func_name
        if step.kind == "branch":
            cond = stmt.cond
            symbolic = self.eval_expr(cond, func_name)
            source = cond if step.outcome else C.negate(cond)
            formula = symbolic if step.outcome else C.negate(symbolic)
            self.constraints.append(
                Constraint(formula, source, func_name, step.outcome)
            )
            return
        if step.kind == "return":
            # Leaving a callee: bind the caller's target from the callee's
            # return variable, then drop the frame.
            frame_func, _, store = self.pop_frame()
            callee = self.program.functions.get(frame_func)
            call_stmt = stmt  # the caller's CallStmt
            if (
                isinstance(call_stmt, C.CallStmt)
                and call_stmt.lhs is not None
                and callee is not None
                and callee.return_var is not None
            ):
                value = store.get(callee.return_var, self.fresh_symbol("ret"))
                self._assign(call_stmt.lhs, value, step.func_name, source_rhs=None)
                if isinstance(call_stmt.lhs, C.Id):
                    self.call_assignment[(step.func_name, call_stmt.lhs.name)] = (
                        frame_func
                    )
            return
        if isinstance(stmt, (C.Skip, C.Goto)):
            return
        if isinstance(stmt, (C.If, C.While)):
            # An assume synthesized from this conditional (it shares the
            # conditional's sid); the branch step already recorded the
            # stronger concrete condition.
            return
        if isinstance(stmt, C.Assume) or isinstance(stmt, C.Assert):
            symbolic = self.eval_expr(stmt.cond, func_name)
            if isinstance(stmt, C.Assert) and is_last:
                # A counterexample path ends at the assert it claims to
                # violate: the concrete semantics of reaching the error
                # require ¬cond here.  Without this constraint any error
                # behind feasible control flow looks genuine even when
                # the asserted fact holds along the path.
                self.constraints.append(
                    Constraint(
                        C.negate(symbolic), C.negate(stmt.cond), func_name, False
                    )
                )
            else:
                # An assume, or an assert the path *passed*: in concrete
                # semantics continuing past either requires cond.
                self.constraints.append(
                    Constraint(symbolic, stmt.cond, func_name, True)
                )
            return
        if isinstance(stmt, C.Assign):
            value = self.eval_expr(stmt.rhs, func_name)
            self._assign(stmt.lhs, value, func_name, source_rhs=stmt.rhs)
            return
        if isinstance(stmt, C.CallStmt):
            callee = self.program.functions.get(stmt.name)
            if callee is not None and callee.is_defined:
                if step.kind == "call":
                    bindings = {}
                    for param, arg in zip(callee.params, stmt.args):
                        bindings[param.name] = self.eval_expr(arg, func_name)
                    self.push_frame(stmt.name, bindings)
                # A plain "stmt" revisit of a defined call (e.g. the
                # post-call update assignment in the boolean program) was
                # already handled by the call/return steps.
                return
            # Extern (or summarized) call: havoc the result and, coarsely,
            # the heap reachable through pointer arguments.
            if stmt.lhs is not None:
                self._assign(
                    stmt.lhs, self.fresh_symbol("ext"), func_name, source_rhs=None
                )
            for arg in stmt.args:
                arg_type = getattr(arg, "type", None)
                if arg_type is not None and arg_type.is_pointer():
                    for key in list(self._heap):
                        self._heap[key] = self.fresh_symbol("mem")
                    break
            return
        if isinstance(stmt, C.Return):
            return
        raise ValueError("cannot simulate statement %r" % type(stmt).__name__)

    def _assign(self, lhs, value, func_name, source_rhs):
        if isinstance(lhs, C.Id):
            self._set_var(func_name, lhs.name, value)
            if source_rhs is not None:
                self.last_assignment[(func_name, lhs.name)] = source_rhs
            return
        self._heap_write(lhs, value, func_name)


def symbol_variables(expr):
    return variables(expr)
