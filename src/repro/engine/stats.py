"""The unified statistics registry.

The paper's headline metric is *theorem prover calls*, and the toolkit
historically scattered that accounting across per-layer objects
(:class:`repro.core.stats.C2bpStats`, :class:`repro.prover.interface.ProverStats`,
the CEGAR loop's per-iteration records, Bebop's engine counters).  The
:class:`StatsRegistry` puts them behind one surface: each layer registers
a named section, ``snapshot()`` renders everything as one JSON-ready
dict, and ``to_json()`` / ``from_json()`` round-trip it for offline
analysis (the ``--stats-json`` CLI flag).

A section may be any of:

- an object with a ``snapshot()`` method (the layer stats classes);
- a zero-argument callable returning a dict (lazy stats, e.g. Bebop's
  BDD counters, priced only when a snapshot is taken);
- a plain dict (final summaries).
"""

import json
import time

#: Version of the ``--stats-json`` layout, carried at the top level of
#: every snapshot.  Bump on breaking changes to section names or field
#: meanings; documented in docs/PERFORMANCE.md.  Version 2 added the
#: field itself plus the ``persistent_cache`` section.
SCHEMA_VERSION = 2


class PhaseAccumulator:
    """Wall-clock totals per named phase (c2bp, bebop, newton, ...)."""

    def __init__(self):
        self._phases = {}

    def add(self, name, seconds):
        entry = self._phases.setdefault(name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += seconds

    def seconds(self, name):
        entry = self._phases.get(name)
        return entry["seconds"] if entry else 0.0

    def snapshot(self):
        return {
            name: {"count": entry["count"], "seconds": round(entry["seconds"], 6)}
            for name, entry in self._phases.items()
        }


class IterationLog:
    """An append-only list of per-iteration stat dicts (the CEGAR loop)."""

    def __init__(self):
        self.iterations = []

    def append(self, record):
        self.iterations.append(dict(record))

    def __len__(self):
        return len(self.iterations)

    def __getitem__(self, index):
        return self.iterations[index]

    def snapshot(self):
        return [dict(record) for record in self.iterations]


class Timer:
    """Context manager adding elapsed wall-clock time to an attribute."""

    def __init__(self, stats, attribute="seconds"):
        self.stats = stats
        self.attribute = attribute

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = time.perf_counter() - self._start
        setattr(
            self.stats, self.attribute, getattr(self.stats, self.attribute) + elapsed
        )
        return False


class StatsRegistry:
    """Named stats sections with one ``snapshot()``/``to_json()`` surface."""

    def __init__(self):
        self._sections = {}
        self.phases = PhaseAccumulator()
        self.register("phases", self.phases)

    def register(self, name, source):
        """Register (or replace) a section.  ``source`` is an object with
        ``snapshot()``, a zero-arg callable returning a dict, or a dict."""
        self._sections[name] = source

    def unregister(self, name):
        self._sections.pop(name, None)

    def section(self, name):
        return self._sections.get(name)

    def sections(self):
        return list(self._sections)

    def snapshot(self):
        """Everything, as one plain JSON-ready dict."""
        out = {"schema_version": SCHEMA_VERSION}
        for name, source in self._sections.items():
            take = getattr(source, "snapshot", None)
            if callable(take):
                out[name] = take()
            elif callable(source):
                out[name] = source()
            else:
                out[name] = dict(source)
        return out

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent, default=_jsonable)

    @staticmethod
    def from_json(text):
        """The inverse of :meth:`to_json`: the snapshot as a plain dict."""
        return json.loads(text)


def _jsonable(value):
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)
