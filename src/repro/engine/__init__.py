"""The unified engine spine: context, events, stats, prover backends.

This package is infrastructure, not paper reproduction: it gives the
C2bp → Bebop → Newton → SLAM pipeline one instrumented
prover/stats/config object (:class:`EngineContext`) instead of loose
``prover=``/``options=`` keywords at every layer boundary.

- :mod:`repro.engine.context` — :class:`EngineContext`, the bundle the
  pipeline threads through every layer;
- :mod:`repro.engine.events` — the structured :class:`EventBus`
  (phase/prover-query/cube-test/cegar-iteration events with timings);
- :mod:`repro.engine.stats` — the :class:`StatsRegistry` subsuming the
  per-layer stats objects behind one ``snapshot()``/``to_json()``;
- :mod:`repro.engine.backends` — the :class:`ProverBackend` protocol and
  registry (the built-in DPLL(T) stack registers as ``"dpllt"``).
"""

from repro.engine.backends import (
    ProverBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.engine.context import EngineContext
from repro.engine.events import EventBus
from repro.engine.stats import IterationLog, PhaseAccumulator, StatsRegistry

__all__ = [
    "EngineContext",
    "EventBus",
    "IterationLog",
    "PhaseAccumulator",
    "ProverBackend",
    "StatsRegistry",
    "available_backends",
    "create_backend",
    "register_backend",
]
