"""The structured engine event bus.

Every layer of the pipeline reports what it is doing as flat, JSON-ready
events on one bus: C2bp phases, individual prover queries, cube tests,
CEGAR iterations.  Subscribers see events as they happen (for live
progress displays or custom accounting); by default the bus also records
them so a run can be dumped with ``--trace-json`` and inspected offline.

Event kinds emitted by the toolkit:

========================  =====================================================
kind                      payload fields (beyond ``kind`` and ``t``)
========================  =====================================================
``phase-start``           ``phase``
``phase-end``             ``phase``, ``seconds``
``prover-query``          ``query`` ("implies"|"sat"), ``cached``, ``result``,
                          ``seconds``
``cube-test``             ``purpose`` ("implicant"|"refute"|"inconsistent"),
                          ``cube_size``, ``result``
``c2bp-procedure``        ``procedure``, ``prover_calls``
``cegar-iteration``       the :class:`repro.slam.cegar.IterationStats` snapshot
========================  =====================================================

``t`` is seconds since the bus was created (wall clock, monotonic).
"""

import json
import time


PHASE_START = "phase-start"
PHASE_END = "phase-end"
PROVER_QUERY = "prover-query"
CUBE_TEST = "cube-test"
C2BP_PROCEDURE = "c2bp-procedure"
CEGAR_ITERATION = "cegar-iteration"


class EventBus:
    """Ordered, bounded recording of engine events plus live fan-out."""

    def __init__(self, record=True, max_events=100_000):
        self._subscribers = []
        self.record = record
        self.max_events = max_events
        self.events = []
        self.dropped = 0
        self._start = time.perf_counter()

    def subscribe(self, handler):
        """Register ``handler(event_dict)``; returns the handler (so the
        call can be used inline)."""
        self._subscribers.append(handler)
        return handler

    def unsubscribe(self, handler):
        self._subscribers.remove(handler)

    def emit(self, kind, **data):
        """Emit one event; returns the event dict."""
        event = {"kind": kind, "t": round(time.perf_counter() - self._start, 6)}
        event.update(data)
        if self.record:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped += 1
        for handler in self._subscribers:
            handler(event)
        return event

    def __len__(self):
        return len(self.events)

    def of_kind(self, kind):
        """The recorded events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def snapshot(self):
        return {"events": len(self.events), "dropped": self.dropped}

    def to_json(self, indent=None):
        """The recorded trace as a JSON document."""
        return json.dumps(
            {"events": self.events, "dropped": self.dropped},
            indent=indent,
            default=_jsonable,
        )


def _jsonable(value):
    """Fallback serializer: enums by name, everything else by str()."""
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)
