"""The engine context: one instrumented spine for the whole pipeline.

An :class:`EngineContext` bundles what used to be re-wired by hand at
every layer boundary:

- the :class:`repro.core.options.C2bpOptions` configuration;
- one :class:`repro.prover.Prover` front door, backed by a pluggable
  backend and a *shared*, canonical-form :class:`QueryCache` — so C2bp,
  Newton, and every CEGAR iteration reuse each other's answers;
- a structured :class:`repro.engine.events.EventBus`;
- a :class:`repro.engine.stats.StatsRegistry` subsuming the per-layer
  stats objects behind one ``snapshot()``/``to_json()`` surface.

Construct one context per verification task and pass it down::

    from repro.engine import EngineContext

    ctx = EngineContext()
    result = cegar_loop(program, initial_predicates=preds, context=ctx)
    print(ctx.stats.to_json())

Every pipeline entry point still accepts the old ``options=``/``prover=``
keywords; they are shims that build a private context
(:meth:`EngineContext.ensure`), so existing callers keep working.
"""

import contextlib
import time

from repro.engine.backends import create_backend
from repro.engine.events import EventBus
from repro.engine.stats import StatsRegistry
from repro.prover import Prover, QueryCache


class EngineContext:
    """Options + prover backend + event sink + unified stats registry."""

    def __init__(
        self,
        options=None,
        prover=None,
        backend=None,
        events=None,
        stats=None,
        cache=None,
        record_events=True,
        store=None,
        store_readonly=False,
    ):
        if options is None:
            # Imported lazily: repro.core.abstractor imports this package,
            # so a module-level import would cycle when repro.engine is
            # the first repro module loaded.
            from repro.core.options import C2bpOptions

            options = C2bpOptions()
        if getattr(options, "jobs", 1) == 0:
            # ``jobs=0`` means "pick for this machine": resolve once at
            # context startup so every consumer (abstractor, CEGAR loop,
            # worker pool) sees the same concrete count.  Single-core
            # hosts resolve to 1 — serial in-process, identical numbers
            # to an explicit ``--jobs=1``.
            from repro.core.pool import auto_jobs

            options = options.copy(jobs=auto_jobs())
        self.options = options
        self.events = events if events is not None else EventBus(record=record_events)
        self.stats = stats if stats is not None else StatsRegistry()
        # The content-addressed persistent store (repro.serve): adopted
        # from the caller, inherited from a store-backed cache, or opened
        # from options.cache_dir.  An owned store is this context's to
        # report on; the store itself holds no buffered state to flush.
        self._owned_store = False
        if store is not None:
            self.store = store
        elif cache is not None and getattr(cache, "disk", None) is not None:
            self.store = cache.disk
        elif prover is not None and getattr(prover.cache, "disk", None) is not None:
            self.store = prover.cache.disk
        elif getattr(self.options, "cache_dir", None) and getattr(
            self.options, "persistent_cache", True
        ):
            # Imported lazily: repro.serve imports the prover layer.
            from repro.serve import PersistentStore

            self.store = PersistentStore(
                self.options.cache_dir,
                max_bytes=getattr(self.options, "cache_max_bytes", None),
                readonly=store_readonly,
            )
            self._owned_store = True
        else:
            self.store = None
        if prover is not None:
            # Adopt a caller-supplied prover (the legacy ``prover=`` shim):
            # share its cache and attach our event sink if it has none.
            self.prover = prover
            self.cache = prover.cache
            if prover.events is None:
                prover.events = self.events
        else:
            if cache is not None:
                self.cache = cache
            elif self.store is not None:
                from repro.serve import PersistentQueryCache

                self.cache = PersistentQueryCache(self.store)
            else:
                self.cache = QueryCache()
            self.prover = Prover(
                enable_cache=self.options.cache_prover,
                cache=self.cache,
                backend=create_backend(backend),
                events=self.events,
            )
        self.stats.register("prover", self.prover.stats)
        self.stats.register("prover_cache", self.cache)
        self.stats.register("events", self.events)
        if self.store is not None:
            self.stats.register("persistent_cache", self.store.snapshot)
        self._worker_pool = None

    @classmethod
    def ensure(cls, context=None, options=None, prover=None):
        """The deprecation shim: pass an existing context through, or wrap
        legacy ``options=``/``prover=`` keywords in a fresh one.

        When ``context`` is given it wins; the legacy keywords are ignored
        (callers migrating incrementally may still be passing both).
        """
        if context is not None:
            return context
        return cls(options=options, prover=prover)

    def worker_pool(self, jobs):
        """The persistent statement-abstraction pool for ``--jobs`` runs
        (:class:`repro.core.pool.StatementPool`), forked lazily on first
        use and kept alive across abstraction runs and CEGAR iterations
        until :meth:`close`.  Returns ``None`` on platforms without the
        ``fork`` start method (callers fall back to serial translation).
        A request with a different job count replaces the pool."""
        pool = self._worker_pool
        if pool is not None and pool.jobs != jobs:
            pool.close()
            pool = None
        if pool is None:
            # Imported lazily for the same cycle reason as C2bpOptions.
            from repro.core.pool import create_pool

            pool = create_pool(jobs)
            self._worker_pool = pool
        return pool

    def close(self):
        """Release long-lived resources (the worker pool); idempotent.
        Contexts also work as context managers: ``with EngineContext()``
        closes on exit."""
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        if self._owned_store and self.store is not None:
            self.store.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()

    @contextlib.contextmanager
    def phase(self, name):
        """Time a pipeline phase: emits phase-start/phase-end events and
        accumulates wall-clock seconds in ``stats.phases``."""
        self.events.emit("phase-start", phase=name)
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self.stats.phases.add(name, elapsed)
            self.events.emit("phase-end", phase=name, seconds=round(elapsed, 6))

    def snapshot(self):
        """Shorthand for ``stats.snapshot()``."""
        return self.stats.snapshot()

    def __repr__(self):
        return "EngineContext(backend=%r, cache=%r)" % (
            getattr(self.prover.backend, "name", "?"),
            self.cache.snapshot(),
        )
