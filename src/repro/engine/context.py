"""The engine context: one instrumented spine for the whole pipeline.

An :class:`EngineContext` bundles what used to be re-wired by hand at
every layer boundary:

- the :class:`repro.core.options.C2bpOptions` configuration;
- one :class:`repro.prover.Prover` front door, backed by a pluggable
  backend and a *shared*, canonical-form :class:`QueryCache` — so C2bp,
  Newton, and every CEGAR iteration reuse each other's answers;
- a structured :class:`repro.engine.events.EventBus`;
- a :class:`repro.engine.stats.StatsRegistry` subsuming the per-layer
  stats objects behind one ``snapshot()``/``to_json()`` surface.

Construct one context per verification task and pass it down::

    from repro.engine import EngineContext

    ctx = EngineContext()
    result = cegar_loop(program, initial_predicates=preds, context=ctx)
    print(ctx.stats.to_json())

Every pipeline entry point still accepts the old ``options=``/``prover=``
keywords; they are shims that build a private context
(:meth:`EngineContext.ensure`), so existing callers keep working.
"""

import contextlib
import time

from repro.engine.backends import create_backend
from repro.engine.events import EventBus
from repro.engine.stats import StatsRegistry
from repro.prover import Prover, QueryCache


class EngineContext:
    """Options + prover backend + event sink + unified stats registry."""

    def __init__(
        self,
        options=None,
        prover=None,
        backend=None,
        events=None,
        stats=None,
        cache=None,
        record_events=True,
    ):
        if options is None:
            # Imported lazily: repro.core.abstractor imports this package,
            # so a module-level import would cycle when repro.engine is
            # the first repro module loaded.
            from repro.core.options import C2bpOptions

            options = C2bpOptions()
        self.options = options
        self.events = events if events is not None else EventBus(record=record_events)
        self.stats = stats if stats is not None else StatsRegistry()
        if prover is not None:
            # Adopt a caller-supplied prover (the legacy ``prover=`` shim):
            # share its cache and attach our event sink if it has none.
            self.prover = prover
            self.cache = prover.cache
            if prover.events is None:
                prover.events = self.events
        else:
            self.cache = cache if cache is not None else QueryCache()
            self.prover = Prover(
                enable_cache=self.options.cache_prover,
                cache=self.cache,
                backend=create_backend(backend),
                events=self.events,
            )
        self.stats.register("prover", self.prover.stats)
        self.stats.register("prover_cache", self.cache)
        self.stats.register("events", self.events)

    @classmethod
    def ensure(cls, context=None, options=None, prover=None):
        """The deprecation shim: pass an existing context through, or wrap
        legacy ``options=``/``prover=`` keywords in a fresh one.

        When ``context`` is given it wins; the legacy keywords are ignored
        (callers migrating incrementally may still be passing both).
        """
        if context is not None:
            return context
        return cls(options=options, prover=prover)

    @contextlib.contextmanager
    def phase(self, name):
        """Time a pipeline phase: emits phase-start/phase-end events and
        accumulates wall-clock seconds in ``stats.phases``."""
        self.events.emit("phase-start", phase=name)
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self.stats.phases.add(name, elapsed)
            self.events.emit("phase-end", phase=name, seconds=round(elapsed, 6))

    def snapshot(self):
        """Shorthand for ``stats.snapshot()``."""
        return self.stats.snapshot()

    def __repr__(self):
        return "EngineContext(backend=%r, cache=%r)" % (
            getattr(self.prover.backend, "name", "?"),
            self.cache.snapshot(),
        )
