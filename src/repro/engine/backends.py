"""The prover backend protocol and registry.

The paper drives two interchangeable Nelson-Oppen provers (Simplify and
Vampyre) through one narrow interface; this module is our equivalent
seam.  A *backend* is any object implementing:

- ``check_implication(antecedents, consequent) -> Satisfiability`` —
  satisfiability of ``/\\ antecedents && !consequent`` (UNSAT means the
  implication is valid);
- ``check_satisfiable(exprs) -> Satisfiability`` — joint satisfiability
  of a conjunction of C boolean expressions;
- a ``name`` attribute (for stats and trace labelling).

Backends may additionally implement the *incremental cube* capability:

- ``open_cube_session(candidates, goal, want_cores=True) -> session`` —
  a session object deciding cubes over the fixed candidate set against
  the fixed goal via ``decide(cube) -> (Satisfiability, core)`` with
  persistent solver state (see
  :class:`repro.prover.incremental.IncrementalCubeSession`).  A backend
  without the method (or returning ``None``) makes the engine fall back
  to fresh per-cube ``check_implication`` calls.  ``want_cores=False``
  asks the session to skip assumption-core mapping (the engine passes it
  for throwaway sessions whose cores nobody reads; backends predating
  the keyword are still called positionally).  Sessions that also
  provide ``enumerate_models(max_models)`` support the AllSAT
  strengthening strategy's model catalog; the engine degrades to plain
  cube enumeration without it.

Backends register under a string name so configuration (CLI flags,
:class:`repro.engine.EngineContext`) can select them without importing
their modules.  The built-in DPLL(T) stack registers as ``"dpllt"`` and
is the default.
"""

from repro.prover.interface import DpllTBackend

_REGISTRY = {}


def register_backend(name, factory):
    """Register ``factory(**kwargs) -> backend`` under ``name``."""
    _REGISTRY[name] = factory
    return factory


def available_backends():
    """The registered backend names, sorted."""
    return sorted(_REGISTRY)


def create_backend(spec=None, **kwargs):
    """Resolve a backend: ``None`` means the default DPLL(T) backend, a
    string is looked up in the registry, and an object implementing the
    protocol passes through unchanged."""
    if spec is None:
        spec = "dpllt"
    if isinstance(spec, str):
        try:
            factory = _REGISTRY[spec]
        except KeyError:
            raise KeyError(
                "unknown prover backend %r (available: %s)"
                % (spec, ", ".join(available_backends()))
            ) from None
        return factory(**kwargs)
    return spec


register_backend("dpllt", DpllTBackend)


class ProverBackend:
    """Documentation base class for the backend protocol.

    Subclassing is optional — any object with the three members works —
    but inheriting gives early errors for missing methods.
    """

    name = "abstract"

    def check_implication(self, antecedents, consequent):
        raise NotImplementedError

    def check_satisfiable(self, exprs):
        raise NotImplementedError

    def open_cube_session(self, candidates, goal, want_cores=True):
        """Optional capability: an incremental cube-decision session, or
        ``None`` when the backend only supports one-shot queries."""
        return None
