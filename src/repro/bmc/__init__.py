"""Bit-precise bounded model checking (a CBMC-style second verdict engine).

This package is the first verdict path that shares no abstraction code
with the C2bp → Bebop → Newton pipeline it cross-checks: it unrolls the
:mod:`repro.cfront` CFGs to a bounded depth, bit-blasts fixed-width
two's-complement arithmetic onto :class:`repro.prover.sat.SatSolver`, and
reports ``unsafe`` (with a concrete, interpreter-validated input trace),
``safe`` (complete within the bound), ``safe-up-to-k``, or
``unsupported``.  It also confirms/refutes Newton's feasible
counterexample paths (:mod:`repro.bmc.confirm`) and backstops CEGAR
divergence with a bounded verdict.
"""

from repro.bmc.bits import BitEncoder
from repro.bmc.confirm import ConfirmOutcome, confirm_path
from repro.bmc.driver import (
    BmcResult,
    BmcStats,
    VERDICT_SAFE,
    VERDICT_SAFE_UP_TO_K,
    VERDICT_UNSAFE,
    VERDICT_UNSUPPORTED,
    Witness,
    ensure_bmc_stats,
    replay_witness,
    run_bmc,
)
from repro.bmc.unroll import BmcUnsupported, Unroller

__all__ = [
    "BitEncoder",
    "BmcResult",
    "BmcStats",
    "BmcUnsupported",
    "ConfirmOutcome",
    "Unroller",
    "VERDICT_SAFE",
    "VERDICT_SAFE_UP_TO_K",
    "VERDICT_UNSAFE",
    "VERDICT_UNSUPPORTED",
    "Witness",
    "confirm_path",
    "ensure_bmc_stats",
    "replay_witness",
    "run_bmc",
]
