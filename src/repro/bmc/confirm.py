"""Bit-precise confirmation of Newton's feasible counterexample paths.

Newton declares a path *feasible* when its logical (mathematical-integer)
path constraints are satisfiable.  This module re-encodes the same
straight-line path bit-precisely and asks the SAT core directly:

- **SAT** — decode a concrete input assignment (entry arguments plus the
  extern/``*`` value queue) and validate it by replaying the concrete
  interpreter in wrapping mode; the replay must end at a failing assert
  for the witness to count as *confirmed*.
- **UNSAT** — the path is infeasible for ``width``-bit inputs even under
  this encoding's over-approximations, which contradicts Newton's
  verdict at the bit level; the disagreement is flagged
  (``bmc_refuted``) but Newton's feasibility verdict stands, since the
  pipeline's logical semantics ranges over unbounded integers.

The encoding mirrors :class:`repro.newton.pathsym.PathSimulator`'s frame
discipline (entry frame, ``call`` pushes, ``return`` pops-and-binds) but
is *exact* where the concrete semantics is known — locals start at zero,
globals at their initializers — and *weaker* everywhere memory is
involved: reads through pointers/arrays/fields produce unconstrained
fresh values, and any write through them havocs every scalar.  Weaker
constraints only make SAT easier, so a refutation here is genuine for
the bounded width; and a SAT model is never trusted without the concrete
replay succeeding.
"""

from repro.cfront import cast as C
from repro.bmc.bits import BitEncoder
from repro.bmc.driver import (
    REPLAY_ASSERT_FAILED,
    Witness,
    replay_witness,
)
from repro.bmc.unroll import BmcUnsupported


class ConfirmOutcome:
    """Result of the bmc-confirm step for one Newton path."""

    __slots__ = ("checked", "refuted", "witness", "replay")

    def __init__(self):
        self.checked = False
        self.refuted = False
        self.witness = None  # a validated concrete Witness, or None
        self.replay = None  # replay status string when a model was found

    @property
    def confirmed(self):
        return self.witness is not None


class _PathEncoder:
    def __init__(self, program, encoder):
        self.program = program
        self.enc = encoder
        self.externs = []  # extern/'*' input records, consumption order
        self.params = {}  # entry param name -> bits
        self.param_shape = []
        self.globals = {}
        self.frames = []  # [(func_name, {name: bits})]
        for decl in program.globals:
            if decl.type.is_struct() or decl.type.is_array():
                continue  # reads go through the fresh-value heap path
            self.globals[decl.name] = encoder.const(0)
        for decl in program.globals:
            if decl.init is not None and decl.name in self.globals:
                self.globals[decl.name] = self._eval(decl.init, program=True)

    # -- state -------------------------------------------------------------

    def push_entry_frame(self, func_name):
        func = self.program.functions.get(func_name)
        store = {}
        if func is not None:
            for param in func.params:
                if param.type.is_struct():
                    raise BmcUnsupported("struct entry parameter")
                if param.type.is_pointer() or param.type.is_array():
                    raise BmcUnsupported("pointer-valued entry parameter")
                bits = self.enc.fresh()
                store[param.name] = bits
                self.params[param.name] = bits
                self.param_shape.append((param.name, "int"))
            for decl in func.locals:
                if not (decl.type.is_struct() or decl.type.is_array()):
                    store[decl.name] = self.enc.const(0)
        self.frames.append((func_name, store))

    def push_call_frame(self, func_name, bindings):
        func = self.program.functions.get(func_name)
        store = dict(bindings)
        if func is not None:
            for decl in func.locals:
                if decl.name in store:
                    continue
                if not (decl.type.is_struct() or decl.type.is_array()):
                    store[decl.name] = self.enc.const(0)
        self.frames.append((func_name, store))

    def _scalar_slot(self, func_name, name):
        """Which store holds ``name`` in the current frame discipline;
        mirrors PathSimulator._lookup_var's scoping."""
        if self.frames:
            frame_func, store = self.frames[-1]
            func = self.program.functions.get(frame_func)
            if func is not None and func.lookup_var(name) is not None:
                return store
        return self.globals

    def read_var(self, func_name, name):
        store = self._scalar_slot(func_name, name)
        value = store.get(name)
        if value is None:
            # Out-of-model location (array/struct variable, stale name):
            # unconstrained, which only weakens the path.
            value = self.enc.fresh()
            store[name] = value
        return value

    def write_var(self, func_name, name, value):
        self._scalar_slot(func_name, name)[name] = value

    def havoc_scalars(self):
        """Forget every scalar (a write through memory may alias any of
        them); fresh values keep refutations sound."""
        for store in [self.globals] + [store for _, store in self.frames]:
            for name in store:
                store[name] = self.enc.fresh()

    def record_extern(self, bits):
        self.externs.append(bits)

    # -- expressions -------------------------------------------------------

    def truthy(self, bits):
        return self.enc.nonzero(bits)

    def _eval(self, expr, func_name=None, program=False):
        enc = self.enc
        if isinstance(expr, C.IntLit):
            return enc.const(expr.value)
        if isinstance(expr, C.Unknown):
            bits = enc.fresh()
            self.record_extern(bits)
            return bits
        if isinstance(expr, C.Id):
            if program:
                return enc.const(0) if expr.name not in self.globals else (
                    self.globals[expr.name]
                )
            return self.read_var(func_name, expr.name)
        if isinstance(expr, (C.Deref, C.Index, C.FieldAccess, C.AddrOf)):
            return enc.fresh()  # memory: unconstrained (weaker only)
        if isinstance(expr, C.Cast):
            return self._eval(expr.operand, func_name, program)
        if isinstance(expr, C.Cond):
            cond = self.truthy(self._eval(expr.cond, func_name, program))
            then_value = self._eval(expr.then_expr, func_name, program)
            else_value = self._eval(expr.else_expr, func_name, program)
            return enc.ite(cond, then_value, else_value)
        if isinstance(expr, C.UnOp):
            operand = self._eval(expr.operand, func_name, program)
            if expr.op == "!":
                return enc.from_bool(enc.is_zero(operand))
            if expr.op == "-":
                return enc.neg(operand)
            if expr.op == "+":
                return operand
            if expr.op == "~":
                return enc.not_(operand)
            raise AssertionError(expr.op)
        if isinstance(expr, C.BinOp):
            return self._eval_binop(expr, func_name, program)
        raise BmcUnsupported(
            "unsupported path expression %s" % type(expr).__name__
        )

    def _eval_binop(self, expr, func_name, program):
        enc = self.enc
        op = expr.op
        if op in ("&&", "||"):
            left = self.truthy(self._eval(expr.left, func_name, program))
            right = self.truthy(self._eval(expr.right, func_name, program))
            # No reach refinement here: a straight-line path encoder has no
            # branching store, and an extra recorded extern value at worst
            # pads the replay queue.
            if op == "&&":
                return enc.from_bool(enc.lit_and(left, right))
            return enc.from_bool(enc.lit_or(left, right))
        left = self._eval(expr.left, func_name, program)
        right = self._eval(expr.right, func_name, program)
        if op == "==":
            return enc.from_bool(enc.eq(left, right))
        if op == "!=":
            return enc.from_bool(enc.ne(left, right))
        if op == "<":
            return enc.from_bool(enc.slt(left, right))
        if op == "<=":
            return enc.from_bool(enc.sle(left, right))
        if op == ">":
            return enc.from_bool(enc.slt(right, left))
        if op == ">=":
            return enc.from_bool(enc.sle(right, left))
        if op == "+":
            return enc.add(left, right)
        if op == "-":
            return enc.sub(left, right)
        if op == "*":
            return enc.mul(left, right)
        if op == "/":
            return enc.divmod_c(left, right)[0]
        if op == "%":
            return enc.divmod_c(left, right)[1]
        if op == "&":
            return enc.and_(left, right)
        if op == "|":
            return enc.or_(left, right)
        if op == "^":
            return enc.xor(left, right)
        if op == "<<":
            return enc.shl(left, right)
        if op == ">>":
            return enc.ashr(left, right)
        raise BmcUnsupported("unsupported path operator %r" % op)


def confirm_path(program, steps, width=16, max_steps=200_000):
    """Re-check one Newton-feasible path bit-precisely; returns a
    :class:`ConfirmOutcome`.  Raises :class:`BmcUnsupported` when the path
    leaves the encodable fragment."""
    outcome = ConfirmOutcome()
    if not steps:
        return outcome
    encoder = BitEncoder(width=width)
    state = _PathEncoder(program, encoder)
    entry = steps[0].func_name
    state.push_entry_frame(entry)
    last = len(steps) - 1
    for index, step in enumerate(steps):
        _encode_step(state, step, is_last=index == last)
    result = encoder.solver.solve()
    outcome.checked = True
    if not result.sat:
        outcome.refuted = True
        return outcome
    witness = Witness(
        {
            name: encoder.decode(bits, result.model)
            for name, bits in state.params.items()
        },
        [encoder.decode(bits, result.model) for bits in state.externs],
        {},
        list(state.param_shape),
    )
    outcome.replay = replay_witness(
        program, entry, witness, width, max_steps=max_steps
    )
    if outcome.replay == REPLAY_ASSERT_FAILED:
        outcome.witness = witness
    return outcome


def _encode_step(state, step, is_last):
    enc = state.enc
    stmt = step.stmt
    func_name = step.func_name
    if step.kind == "branch":
        cond = state.truthy(state._eval(stmt.cond, func_name))
        enc.assert_lit(cond if step.outcome else enc.lit_not(cond))
        return
    if step.kind == "return":
        callee_name, store = state.frames.pop()
        callee = state.program.functions.get(callee_name)
        if (
            isinstance(stmt, C.CallStmt)
            and stmt.lhs is not None
            and callee is not None
            and callee.return_var is not None
        ):
            value = store.get(callee.return_var, enc.const(0))
            _assign(state, stmt.lhs, value, func_name)
        return
    if isinstance(stmt, (C.Skip, C.Goto, C.If, C.While, C.Return)):
        return
    if isinstance(stmt, (C.Assume, C.Assert)):
        cond = state.truthy(state._eval(stmt.cond, func_name))
        if isinstance(stmt, C.Assert) and is_last:
            # The counterexample claims this assert fails.
            enc.assert_lit(enc.lit_not(cond))
        else:
            enc.assert_lit(cond)
        return
    if isinstance(stmt, C.Assign):
        value = state._eval(stmt.rhs, func_name)
        _assign(state, stmt.lhs, value, func_name)
        return
    if isinstance(stmt, C.CallStmt):
        callee = state.program.functions.get(stmt.name)
        if callee is not None and callee.is_defined:
            if step.kind == "call":
                bindings = {}
                for param, arg in zip(callee.params, stmt.args):
                    bindings[param.name] = state._eval(arg, func_name)
                state.push_call_frame(stmt.name, bindings)
            return
        # Extern call: the result is a free environment input; pointer
        # arguments may let the callee write anything.
        bits = enc.fresh()
        state.record_extern(bits)
        if stmt.lhs is not None:
            _assign(state, stmt.lhs, bits, func_name)
        for arg in stmt.args:
            arg_type = getattr(arg, "type", None)
            if arg_type is not None and arg_type.is_pointer():
                state.havoc_scalars()
                break
        return
    raise BmcUnsupported(
        "cannot encode path statement %s" % type(stmt).__name__
    )


def _assign(state, lhs, value, func_name):
    if isinstance(lhs, C.Id):
        state.write_var(func_name, lhs.name, value)
        return
    if isinstance(lhs, C.Cast):
        _assign(state, lhs.operand, value, func_name)
        return
    # A store through memory may alias any scalar.
    state.havoc_scalars()
