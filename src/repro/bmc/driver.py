"""Bounded model checking verdicts over the unrolled bit-level formula.

:func:`run_bmc` unrolls a program to depth ``k`` (see
:mod:`repro.bmc.unroll`), asks the SAT core two incremental questions —
*can any assert fail?* and *was the unwinding bound exhausted?* — and
returns one of four verdicts:

- ``unsafe``: some assert fails within the bound; a concrete input
  witness (entry arguments, extern/``*`` values in consumption order,
  entry array contents) is decoded from the SAT model.
- ``safe``: no assert fails and no execution was cut — the bound covers
  every execution, so this is a *complete* proof.
- ``safe-up-to-k``: no assert fails within the bound, but some execution
  was cut by an unwinding assertion; deeper executions are unchecked.
- ``unsupported``: the program leaves the bit-precise fragment (structs,
  heap, pointer-valued entry parameters).

The two queries share one solver via assumption literals, so the second
solve reuses everything the first learned.  Witnesses are validated by
:func:`replay_witness`, which runs the concrete interpreter in
``wrap_width`` mode on the decoded inputs.
"""

import time
from collections import deque

from repro.bmc.bits import BitEncoder
from repro.bmc.unroll import BmcUnsupported, Unroller

VERDICT_UNSAFE = "unsafe"
VERDICT_SAFE = "safe"
VERDICT_SAFE_UP_TO_K = "safe-up-to-k"
VERDICT_UNSUPPORTED = "unsupported"


class Witness:
    """A concrete input trace decoded from a SAT model."""

    __slots__ = ("args_by_name", "externs", "arrays", "param_shape", "site")

    def __init__(self, args_by_name, externs, arrays, param_shape, site=None):
        self.args_by_name = args_by_name  # {param name: int}
        self.externs = externs  # extern/'*' results, consumption order
        self.arrays = arrays  # {param name: {index: value}}
        self.param_shape = param_shape  # [(name, "int" | "array")]
        self.site = site  # ErrorSite of the failing assert (if known)

    def entry_args(self):
        """Entry arguments in declaration order; array parameters are
        returned as ``{index: value}`` dicts (the caller materializes
        interpreter array objects)."""
        args = []
        for name, kind in self.param_shape:
            if kind == "array":
                args.append(dict(self.arrays.get(name, {})))
            else:
                args.append(self.args_by_name.get(name, 0))
        return args

    def to_dict(self):
        return {
            "args": [
                {str(k): v for k, v in arg.items()}
                if isinstance(arg, dict)
                else arg
                for arg in self.entry_args()
            ],
            "externs": list(self.externs),
        }


class BmcResult:
    """Verdict plus formula/solver statistics for one BMC run."""

    __slots__ = (
        "verdict",
        "depth",
        "width",
        "witness",
        "reason",
        "encode_seconds",
        "solve_seconds",
        "vars",
        "gates",
        "clauses",
        "errors",
        "cuts",
    )

    def __init__(self, verdict, depth, width):
        self.verdict = verdict
        self.depth = depth
        self.width = width
        self.witness = None
        self.reason = None  # for "unsupported": what fell outside
        self.encode_seconds = 0.0
        self.solve_seconds = 0.0
        self.vars = 0
        self.gates = 0
        self.clauses = 0
        self.errors = 0  # encoded assert sites
        self.cuts = 0  # unwinding cut points

    @property
    def complete(self):
        return self.verdict in (VERDICT_SAFE, VERDICT_UNSAFE)

    def to_dict(self):
        payload = {
            "verdict": self.verdict,
            "depth": self.depth,
            "width": self.width,
            "encode_seconds": self.encode_seconds,
            "solve_seconds": self.solve_seconds,
            "vars": self.vars,
            "gates": self.gates,
            "clauses": self.clauses,
            "errors": self.errors,
            "cuts": self.cuts,
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.witness is not None:
            payload["witness"] = self.witness.to_dict()
        return payload


def run_bmc(program, entry="main", depth=16, width=32, context=None):
    """Bit-precise bounded model checking of every assert reachable from
    ``entry``; returns a :class:`BmcResult`."""
    stats = ensure_bmc_stats(context) if context is not None else None
    started = time.perf_counter()
    encoder = BitEncoder(width=width)
    try:
        unrolled = Unroller(program, encoder, depth).run(entry)
    except BmcUnsupported as exc:
        result = BmcResult(VERDICT_UNSUPPORTED, depth, width)
        result.reason = str(exc)
        result.encode_seconds = time.perf_counter() - started
        if stats is not None:
            stats.record(result)
        return result
    # Assumption literals let both questions share one learned-clause
    # state: solve({error_lit}) then solve({incomplete_lit}).
    error_lit = encoder.new_var()
    any_error = encoder.or_many(site.lit for site in unrolled.errors)
    if any_error is False:
        encoder.emit([-error_lit])
    elif any_error is not True:
        encoder.emit([-error_lit, any_error])
        encoder.emit([error_lit, -any_error])
    incomplete_lit = encoder.new_var()
    any_cut = encoder.or_many(unrolled.incomplete)
    if any_cut is False:
        encoder.emit([-incomplete_lit])
    elif any_cut is not True:
        encoder.emit([-incomplete_lit, any_cut])
        encoder.emit([incomplete_lit, -any_cut])
    encode_seconds = time.perf_counter() - started

    solve_started = time.perf_counter()
    error_sat = (
        encoder.solver.solve(assumptions=(error_lit,))
        if any_error is not False
        else None
    )
    if error_sat is not None and error_sat.sat:
        result = BmcResult(VERDICT_UNSAFE, depth, width)
        result.witness = _extract_witness(encoder, unrolled, error_sat.model)
    else:
        cut_sat = (
            encoder.solver.solve(assumptions=(incomplete_lit,))
            if any_cut is not False
            else None
        )
        if cut_sat is not None and cut_sat.sat:
            result = BmcResult(VERDICT_SAFE_UP_TO_K, depth, width)
        else:
            result = BmcResult(VERDICT_SAFE, depth, width)
    result.solve_seconds = time.perf_counter() - solve_started
    result.encode_seconds = encode_seconds
    result.vars = encoder.vars
    result.gates = encoder.gates
    result.clauses = encoder.clauses
    result.errors = len(unrolled.errors)
    result.cuts = len(unrolled.incomplete)
    if stats is not None:
        stats.record(result)
    return result


def _extract_witness(encoder, unrolled, model):
    """Decode the free inputs the model exercises, in encode (= execution)
    order, keeping only records whose reach literal is true — records on
    untaken paths are never consumed by the concrete interpreter."""
    args_by_name = {}
    externs = []
    arrays = {}
    for record in unrolled.inputs:
        if not encoder.lit_value(record.reach, model):
            continue
        value = encoder.decode(record.bits, model)
        if record.kind == "param":
            args_by_name[record.label] = value
        elif record.kind == "array":
            index = encoder.decode(record.index_bits, model)
            arrays.setdefault(record.label, {}).setdefault(index, value)
        else:  # "extern" / "unknown": one consumption-order queue
            externs.append(value)
    site = None
    for candidate in unrolled.errors:
        if encoder.lit_value(candidate.lit, model):
            site = candidate
            break
    return Witness(args_by_name, externs, arrays, unrolled.entry_params, site)


REPLAY_ASSERT_FAILED = "assert-failed"
REPLAY_COMPLETED = "completed"
REPLAY_ASSUME_VIOLATED = "assume-violated"
REPLAY_ERROR = "interp-error"


def replay_witness(program, entry, witness, width, max_steps=200_000):
    """Run the concrete interpreter (in ``width``-bit wrapping mode) on a
    decoded witness; returns a replay status string.  ``assert-failed``
    confirms the witness concretely."""
    from repro.cfront.interp import (
        ArrayVal,
        AssertionFailure,
        AssumeViolated,
        InterpError,
        Interpreter,
    )

    queue = deque(witness.externs)

    def oracle(name, call_args):
        return queue.popleft() if queue else 0

    interp = Interpreter(
        program,
        extern_oracle=oracle,
        max_steps=max_steps,
        wrap_width=width,
    )
    args = []
    for value in witness.entry_args():
        if isinstance(value, dict):
            array = ArrayVal()
            for index, cell_value in value.items():
                array.element_cell(index).value = cell_value
            args.append(array)
        else:
            args.append(value)
    try:
        interp.run(entry, args)
    except AssertionFailure:
        return REPLAY_ASSERT_FAILED
    except AssumeViolated:
        return REPLAY_ASSUME_VIOLATED
    except InterpError:
        return REPLAY_ERROR
    return REPLAY_COMPLETED


class BmcStats:
    """Aggregate counters for the ``bmc`` stats section."""

    def __init__(self):
        self.runs = 0
        self.unsafe = 0
        self.safe = 0
        self.bounded = 0
        self.unsupported = 0
        self.confirms = 0
        self.confirmed = 0
        self.refuted = 0
        self.encode_seconds = 0.0
        self.solve_seconds = 0.0
        self.gates = 0
        self.clauses = 0

    def record(self, result):
        self.runs += 1
        if result.verdict == VERDICT_UNSAFE:
            self.unsafe += 1
        elif result.verdict == VERDICT_SAFE:
            self.safe += 1
        elif result.verdict == VERDICT_SAFE_UP_TO_K:
            self.bounded += 1
        else:
            self.unsupported += 1
        self.encode_seconds += result.encode_seconds
        self.solve_seconds += result.solve_seconds
        self.gates += result.gates
        self.clauses += result.clauses

    def snapshot(self):
        return {
            "runs": self.runs,
            "unsafe": self.unsafe,
            "safe": self.safe,
            "bounded": self.bounded,
            "unsupported": self.unsupported,
            "confirms": self.confirms,
            "confirmed": self.confirmed,
            "refuted": self.refuted,
            "encode_seconds": self.encode_seconds,
            "solve_seconds": self.solve_seconds,
            "gates": self.gates,
            "clauses": self.clauses,
        }


def ensure_bmc_stats(context):
    """Get-or-create the ``bmc`` stats section on an engine context."""
    stats = getattr(context, "_bmc_stats", None)
    if stats is None:
        stats = BmcStats()
        context._bmc_stats = stats
        context.stats.register("bmc", stats)
    return stats
