"""Bit-vector circuits over the CDCL SAT core.

The bounded model checker represents every program value as a fixed-width
two's-complement bit vector: a tuple of ``width`` literals, least
significant bit first.  A literal is either a Python ``bool`` (a constant
the encoder folded away) or a nonzero DIMACS-style integer for
:class:`repro.prover.sat.SatSolver` (``-v`` negates ``v``).

Gates are emitted on the fly (Tseitin form) with aggressive constant
folding and structural memoization, so circuits over concrete data —
initialized locals, constant loop counters, unreachable unrolled layers —
collapse to constants and never reach the solver.  The arithmetic follows
C on a ``width``-bit ``int``: wrapping ``+ - *``, truncation-toward-zero
``/ %``, logical ``& | ^ ~``, shift-in-zero ``<<`` and arithmetic ``>>``
(shift amounts are treated as unsigned; amounts at or beyond the width
give 0 / sign fill, matching arbitrary-precision Python semantics after
truncation).  Division by zero is defined as quotient 0 and remainder
equal to the dividend — an arbitrary-but-fixed total semantics; callers
that need C's trap behaviour must guard the divisor themselves.
"""

from repro.prover.sat import SatSolver


class BitEncoder:
    """Emits gate clauses into one :class:`SatSolver`; owns the variable
    space and the per-literal structural memo tables."""

    def __init__(self, width=32, solver=None):
        if width < 2:
            raise ValueError("bit width must be at least 2 (sign + magnitude)")
        self.width = width
        self.solver = solver or SatSolver()
        self.vars = 0
        self.gates = 0
        self.clauses = 0
        self._memo = {}

    # -- literal layer ------------------------------------------------------

    def new_var(self):
        self.vars += 1
        return self.vars

    def emit(self, clause):
        """Add a clause of non-constant literals."""
        self.clauses += 1
        self.solver.add_clause(clause)

    def assert_lit(self, lit):
        """Constrain ``lit`` to be true (an empty clause when it is the
        constant False)."""
        if lit is True:
            return
        if lit is False:
            self.clauses += 1
            self.solver.add_clause([])
            return
        self.emit([lit])

    @staticmethod
    def lit_not(lit):
        if isinstance(lit, bool):
            return not lit
        return -lit

    def lit_and(self, a, b):
        if a is False or b is False:
            return False
        if a is True:
            return b
        if b is True:
            return a
        if a == b:
            return a
        if a == -b:
            return False
        key = ("and", a, b) if a < b else ("and", b, a)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        y = self.new_var()
        self.gates += 1
        self.emit([-y, a])
        self.emit([-y, b])
        self.emit([y, -a, -b])
        self._memo[key] = y
        return y

    def lit_or(self, a, b):
        return self.lit_not(self.lit_and(self.lit_not(a), self.lit_not(b)))

    def lit_xor(self, a, b):
        if isinstance(a, bool):
            return self.lit_not(b) if a else b
        if isinstance(b, bool):
            return self.lit_not(a) if b else a
        if a == b:
            return False
        if a == -b:
            return True
        key = ("xor", a, b) if a < b else ("xor", b, a)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        y = self.new_var()
        self.gates += 1
        self.emit([-y, a, b])
        self.emit([-y, -a, -b])
        self.emit([y, a, -b])
        self.emit([y, -a, b])
        self._memo[key] = y
        return y

    def lit_ite(self, c, a, b):
        """``c ? a : b`` at the literal level."""
        if c is True:
            return a
        if c is False:
            return b
        if a == b:
            return a
        if a is True:
            return self.lit_or(c, b)
        if a is False:
            return self.lit_and(self.lit_not(c), b)
        if b is True:
            return self.lit_or(self.lit_not(c), a)
        if b is False:
            return self.lit_and(c, a)
        if a == -b:
            # ite(c, a, not a) selects a exactly when c holds: c XNOR a.
            return self.lit_xor(c, b)
        key = ("ite", c, a, b)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        y = self.new_var()
        self.gates += 1
        self.emit([-c, -y, a])
        self.emit([-c, y, -a])
        self.emit([c, -y, b])
        self.emit([c, y, -b])
        self._memo[key] = y
        return y

    def or_many(self, lits):
        result = False
        for lit in lits:
            result = self.lit_or(result, lit)
            if result is True:
                return True
        return result

    def and_many(self, lits):
        result = True
        for lit in lits:
            result = self.lit_and(result, lit)
            if result is False:
                return False
        return result

    # -- vector layer -------------------------------------------------------

    def const(self, value):
        """``value`` truncated to ``width`` bits, two's complement."""
        value &= (1 << self.width) - 1
        return tuple(bool((value >> i) & 1) for i in range(self.width))

    def fresh(self):
        """A vector of unconstrained input bits."""
        return tuple(self.new_var() for _ in range(self.width))

    def is_const(self, vec):
        return all(isinstance(bit, bool) for bit in vec)

    def const_value(self, vec):
        """Decode an all-constant vector to a signed Python int."""
        raw = sum(1 << i for i, bit in enumerate(vec) if bit)
        half = 1 << (self.width - 1)
        return raw - (1 << self.width) if raw >= half else raw

    def decode(self, vec, model):
        """Decode a vector under a SAT model (unassigned vars read False)."""
        raw = 0
        for i, bit in enumerate(vec):
            if isinstance(bit, bool):
                value = bit
            elif bit > 0:
                value = model.get(bit, False)
            else:
                value = not model.get(-bit, False)
            if value:
                raw |= 1 << i
        half = 1 << (self.width - 1)
        return raw - (1 << self.width) if raw >= half else raw

    def lit_value(self, lit, model):
        if isinstance(lit, bool):
            return lit
        if lit > 0:
            return model.get(lit, False)
        return not model.get(-lit, False)

    def ite(self, cond, then_vec, else_vec):
        if cond is True:
            return then_vec
        if cond is False:
            return else_vec
        if then_vec == else_vec:
            return then_vec
        return tuple(
            self.lit_ite(cond, a, b) for a, b in zip(then_vec, else_vec)
        )

    # -- arithmetic ---------------------------------------------------------

    def add(self, a, b, carry_in=False):
        bits = []
        carry = carry_in
        for x, y in zip(a, b):
            s = self.lit_xor(self.lit_xor(x, y), carry)
            carry = self.lit_or(
                self.lit_and(x, y), self.lit_and(carry, self.lit_xor(x, y))
            )
            bits.append(s)
        return tuple(bits)

    def neg(self, a):
        return self.add(self.not_(a), self.const(0), carry_in=True)

    def sub(self, a, b):
        return self.add(a, self.not_(b), carry_in=True)

    def mul(self, a, b):
        # Shift-and-add; partial products gated on b's bits.  When either
        # side is constant the inner AND rows fold to the vector or zero.
        if self.is_const(a) and not self.is_const(b):
            a, b = b, a
        acc = self.const(0)
        for i, bit in enumerate(b):
            if bit is False:
                continue
            row = tuple(
                False if j < i else self.lit_and(a[j - i], bit)
                for j in range(self.width)
            )
            acc = self.add(acc, row)
        return acc

    def _udiv(self, a, b):
        """Unsigned restoring division; returns (quotient, remainder)."""
        rem = self.const(0)
        quot = [False] * self.width
        for i in range(self.width - 1, -1, -1):
            rem = (a[i],) + rem[:-1]
            fits = self.uge(rem, b)
            rem = self.ite(fits, self.sub(rem, b), rem)
            quot[i] = fits
        return tuple(quot), rem

    def divmod_c(self, a, b):
        """C semantics: truncation toward zero; /0 -> (0, dividend)."""
        sign_a = a[-1]
        sign_b = b[-1]
        mag_a = self.ite(sign_a, self.neg(a), a)
        mag_b = self.ite(sign_b, self.neg(b), b)
        quot, rem = self._udiv(mag_a, mag_b)
        q_neg = self.lit_xor(sign_a, sign_b)
        quot = self.ite(q_neg, self.neg(quot), quot)
        rem = self.ite(sign_a, self.neg(rem), rem)
        zero = self.is_zero(b)
        return self.ite(zero, self.const(0), quot), self.ite(zero, a, rem)

    # -- bitwise ------------------------------------------------------------

    def not_(self, a):
        return tuple(self.lit_not(bit) for bit in a)

    def and_(self, a, b):
        return tuple(self.lit_and(x, y) for x, y in zip(a, b))

    def or_(self, a, b):
        return tuple(self.lit_or(x, y) for x, y in zip(a, b))

    def xor(self, a, b):
        return tuple(self.lit_xor(x, y) for x, y in zip(a, b))

    def _shift_stages(self):
        stages = []
        amount = 1
        while amount < self.width:
            stages.append(amount)
            amount <<= 1
        return stages

    def shl(self, a, amount):
        """``a << amount``; the amount vector is read as unsigned, and any
        amount >= width yields zero."""
        result = a
        for stage_index, step in enumerate(self._shift_stages()):
            bit = amount[stage_index]
            if bit is False:
                continue
            shifted = tuple(
                False if i < step else result[i - step] for i in range(self.width)
            )
            result = self.ite(bit, shifted, result)
        overflow = self.or_many(amount[len(self._shift_stages()):])
        return self.ite(overflow, self.const(0), result)

    def ashr(self, a, amount):
        """Arithmetic ``a >> amount``; amounts >= width give the sign fill."""
        sign = a[-1]
        result = a
        for stage_index, step in enumerate(self._shift_stages()):
            bit = amount[stage_index]
            if bit is False:
                continue
            shifted = tuple(
                result[i + step] if i + step < self.width else sign
                for i in range(self.width)
            )
            result = self.ite(bit, shifted, result)
        overflow = self.or_many(amount[len(self._shift_stages()):])
        fill = tuple(sign for _ in range(self.width))
        return self.ite(overflow, fill, result)

    # -- comparisons --------------------------------------------------------

    def eq(self, a, b):
        return self.and_many(
            self.lit_not(self.lit_xor(x, y)) for x, y in zip(a, b)
        )

    def ne(self, a, b):
        return self.lit_not(self.eq(a, b))

    def ult(self, a, b):
        lt = False
        for x, y in zip(a, b):  # LSB first; the MSB decides last.
            lt = self.lit_ite(
                self.lit_xor(x, y), self.lit_and(self.lit_not(x), y), lt
            )
        return lt

    def uge(self, a, b):
        return self.lit_not(self.ult(a, b))

    def slt(self, a, b):
        # Signed compare = unsigned compare with the sign bits flipped.
        a_flipped = a[:-1] + (self.lit_not(a[-1]),)
        b_flipped = b[:-1] + (self.lit_not(b[-1]),)
        return self.ult(a_flipped, b_flipped)

    def sle(self, a, b):
        return self.lit_not(self.slt(b, a))

    # -- booleans -----------------------------------------------------------

    def is_zero(self, a):
        return self.lit_not(self.or_many(a))

    def nonzero(self, a):
        return self.or_many(a)

    def from_bool(self, lit):
        """A 0/1 vector from a condition literal (C truth values)."""
        return (lit,) + tuple(False for _ in range(self.width - 1))
