"""CFG unrolling into an SSA-form bit-level transition formula.

The unroller symbolically executes the :mod:`repro.cfront` control-flow
graphs to a bounded depth, producing one acyclic circuit over
:class:`repro.bmc.bits.BitEncoder`:

- **Layered unrolling.**  Each function instance's CFG nodes are ordered
  by reverse postorder; edges that go forward in that order stay in the
  current layer, edges that go backward (loop back edges, backward gotos)
  cross into the next layer.  ``depth`` layers bound the total number of
  back-edge traversals per function instance; a back edge out of the last
  layer is *cut* and its guard recorded as an unwinding condition — if any
  cut guard is satisfiable, the bound was exhausted and a ``safe`` answer
  weakens to ``safe-up-to-k``.  This handles arbitrary gotos (including
  irreducible flow) without structural loop recovery.
- **Phi merging.**  Every unrolled node carries a reachability literal
  (the OR of its incoming edge guards) and a scalar store snapshot; at
  join points the per-predecessor values are merged by
  :func:`_merge_values` (guarded ite chains — the guards are mutually
  exclusive because the unrolled graph is a DAG of simple paths).
- **Calls.**  Defined callees are inlined at the call site with a fresh
  activation; recursion is bounded by ``depth`` occurrences of the callee
  on the inline stack (deeper re-entries are cut like back edges).
  Undefined (extern) calls and ``*`` expressions become free inputs.
- **Memory.**  The logical model of the paper, made bit-precise: scalars
  live in a per-path store; pointers are bit vectors holding small
  address ids (0 is NULL) over the address-taken scalars, with stores
  through pointers lowered to per-location ites; arrays are guarded
  write histories over an unbounded index domain (matching the concrete
  interpreter's lazily-created element cells), with entry array
  parameters as free input arrays under read-consistency constraints.
  Structs and heap allocation are outside the supported fragment and
  raise :class:`BmcUnsupported`.

Free inputs (entry parameters, ``*`` reads, extern-call results, input
array cells) are recorded in encode order, which — because the layered
DAG is processed topologically and callees are encoded at their call
sites — coincides with execution order along every path.  A SAT model
therefore yields a concrete input trace by decoding the records whose
reachability literal the model sets.
"""

from repro.cfront import cast as C
from repro.cfront.cfg import BRANCH, ENTRY, EXIT, build_program_cfgs


class BmcUnsupported(Exception):
    """The program uses a construct outside the bit-precise fragment
    (structs, heap allocation, pointer-valued entry parameters, ...)."""


class InputRecord:
    """One free input of the unrolled formula, in encode (= execution)
    order.  ``kind`` is ``param`` / ``unknown`` / ``extern`` / ``array``;
    array records also carry the index vector of the base read."""

    __slots__ = ("kind", "label", "bits", "reach", "index_bits")

    def __init__(self, kind, label, bits, reach, index_bits=None):
        self.kind = kind
        self.label = label
        self.bits = bits
        self.reach = reach
        self.index_bits = index_bits


class ErrorSite:
    """A possibly-failing assert: the literal is true exactly on the
    executions that reach the assert with a false condition."""

    __slots__ = ("lit", "func_name", "stmt")

    def __init__(self, lit, func_name, stmt):
        self.lit = lit
        self.func_name = func_name
        self.stmt = stmt


class ArrayState:
    """One array object: a guarded write history over a base content
    function (all-zero for declared arrays, free inputs with
    read-consistency for entry array parameters)."""

    __slots__ = ("name", "kind", "writes", "base_reads")

    def __init__(self, name, kind):
        self.name = name
        self.kind = kind  # "zero" | "input"
        self.writes = []  # (guard_lit, index_bits, value_bits), oldest first
        self.base_reads = []  # (index_bits, value_bits) for "input" arrays


def _merge_values(encoder, entries):
    """Phi-merge per-predecessor values under mutually exclusive guards.

    ``entries`` is a non-empty list of ``(guard_lit, bit_vector)`` pairs;
    exactly one guard is true in any execution that reaches the join, so
    a guarded ite chain reconstructs the incoming value.  (This function
    is the injection point of the encoder-fault meta-test.)
    """
    _, value = entries[0]
    for guard, other in entries[1:]:
        value = encoder.ite(guard, other, value)
    return value


def _merge_stores(encoder, entries):
    """Merge scalar store snapshots at a join node.  Keys missing from
    some snapshots belong to finished callee activations (dead); they are
    merged over the snapshots that have them."""
    keys = set()
    for _, store in entries:
        keys.update(store)
    merged = {}
    for key in keys:
        present = [(g, s[key]) for g, s in entries if key in s]
        first = present[0][1]
        if all(value == first for _, value in present[1:]):
            merged[key] = first
        else:
            merged[key] = _merge_values(encoder, present)
    return merged


class UnrollResult:
    """The unrolled formula's observable surface."""

    __slots__ = ("errors", "incomplete", "inputs", "entry_params")

    def __init__(self, errors, incomplete, inputs, entry_params):
        self.errors = errors  # [ErrorSite]
        self.incomplete = incomplete  # [lit]: true -> bound exhausted
        self.inputs = inputs  # [InputRecord]
        self.entry_params = entry_params  # [(name, "int" | "array")]


class Unroller:
    """Symbolically executes one program into ``encoder``'s circuit."""

    def __init__(self, program, encoder, depth):
        self.program = program
        self.enc = encoder
        self.depth = max(int(depth), 1)
        self.cfgs = build_program_cfgs(program)
        self.errors = []
        self.incomplete = []
        self.inputs = []
        self.entry_params = []
        self._store = {}  # loc key -> bit vector (scalars and pointers)
        self.arrays = {}  # loc key -> ArrayState
        self._addr_ids = {}  # loc key -> small nonzero address id
        self._addressed = []  # [(loc, id)] in creation order
        self._next_act = 0
        self._rpo_cache = {}

    # -- setup --------------------------------------------------------------

    def run(self, entry):
        func = self.program.functions.get(entry)
        if func is None or not func.is_defined:
            raise BmcUnsupported("entry function %r is not defined" % entry)
        self._init_globals()
        exit_reach, _ = self._call(func, None, True, ())
        if exit_reach is False and not self.errors and not self.incomplete:
            # Every execution was cut silently — cannot happen with the
            # cut bookkeeping above, but guard the invariant.
            raise AssertionError("unrolling lost all executions")
        return UnrollResult(
            self.errors, self.incomplete, self.inputs, self.entry_params
        )

    def _init_globals(self):
        enc = self.enc
        for decl in self.program.globals:
            loc = ("g", decl.name)
            if decl.type.is_struct():
                raise BmcUnsupported("struct global %r" % decl.name)
            if decl.type.is_array():
                if decl.init is not None:
                    raise BmcUnsupported(
                        "initialized array global %r" % decl.name
                    )
                self.arrays[loc] = ArrayState(decl.name, "zero")
            else:
                self._store[loc] = enc.const(0)
        env = {}
        for decl in self.program.globals:
            if decl.init is not None:
                self._store[("g", decl.name)] = self._eval(
                    decl.init, env, None, True
                )

    # -- activations --------------------------------------------------------

    def _call(self, func, args, reach_in, call_stack):
        """Inline one activation of ``func``; returns (exit_reach, retval)."""
        enc = self.enc
        act = self._next_act
        self._next_act += 1
        env = {}
        is_entry = not call_stack
        if args is None:
            args = []
            for param in func.params:
                if param.type.is_struct():
                    raise BmcUnsupported("struct entry parameter %r" % param.name)
                if param.type.is_array() or param.type.is_pointer():
                    # Array parameters decay to pointers; model any
                    # pointer-typed entry parameter as a free input array
                    # (scalar dereferences of it then fall outside the
                    # fragment and raise BmcUnsupported).
                    args.append(ArrayState(param.name, "input"))
                    if is_entry:
                        self.entry_params.append((param.name, "array"))
                else:
                    bits = enc.fresh()
                    self.inputs.append(
                        InputRecord("param", param.name, bits, reach_in)
                    )
                    args.append(bits)
                    if is_entry:
                        self.entry_params.append((param.name, "int"))
        for param, value in zip(func.params, args):
            loc = ("l", act, param.name)
            env[param.name] = loc
            if isinstance(value, ArrayState):
                self.arrays[loc] = value
            else:
                self._store[loc] = value
        for decl in func.locals:
            loc = ("l", act, decl.name)
            env[decl.name] = loc
            if decl.type.is_struct():
                raise BmcUnsupported(
                    "struct local %r in %s" % (decl.name, func.name)
                )
            if decl.type.is_array():
                self.arrays[loc] = ArrayState(decl.name, "zero")
            else:
                self._store[loc] = enc.const(0)
        ret_loc = ("ret", act)
        self._store[ret_loc] = enc.const(0)
        self._register_addresses(func, env)
        return self._run_cfg(func, env, act, reach_in, call_stack)

    def _register_addresses(self, func, env):
        """Assign address ids for every ``&x`` the function can evaluate,
        before any store through a pointer is encoded (a store only needs
        the ids that can already have flowed into its pointer)."""
        for expr in self._function_exprs(func):
            for node in _walk(expr):
                if isinstance(node, C.AddrOf) and isinstance(node.operand, C.Id):
                    name = node.operand.name
                    loc = env.get(name, ("g", name))
                    if loc in self.arrays:
                        raise BmcUnsupported("address of array %r" % name)
                    if loc not in self._store:
                        continue  # unresolved name; surfaces on evaluation
                    self._addr_id(loc)
                elif isinstance(node, C.AddrOf):
                    raise BmcUnsupported(
                        "address of non-variable in %s" % func.name
                    )

    def _function_exprs(self, func):
        cfg = self.cfgs[func.name]
        for node in cfg.nodes:
            if node.cond is not None:
                yield node.cond
            stmt = node.stmt
            if isinstance(stmt, C.Assign):
                yield stmt.lhs
                yield stmt.rhs
            elif isinstance(stmt, C.CallStmt):
                if stmt.lhs is not None:
                    yield stmt.lhs
                for arg in stmt.args:
                    yield arg
            elif isinstance(stmt, (C.Assert, C.Assume)):
                yield stmt.cond
            elif isinstance(stmt, C.Return) and stmt.value is not None:
                yield stmt.value

    def _addr_id(self, loc):
        addr = self._addr_ids.get(loc)
        if addr is None:
            addr = len(self._addr_ids) + 1  # 0 stays NULL
            self._addr_ids[loc] = addr
            self._addressed.append((loc, addr))
        return addr

    # -- the layered walk ---------------------------------------------------

    def _rpo(self, name):
        order = self._rpo_cache.get(name)
        if order is None:
            cfg = self.cfgs[name]
            post = []
            seen = set()
            stack = [(cfg.entry, iter(cfg.entry.edges))]
            seen.add(cfg.entry.uid)
            while stack:
                node, edges = stack[-1]
                advanced = False
                for edge in edges:
                    target = edge.target
                    if target.uid not in seen:
                        seen.add(target.uid)
                        stack.append((target, iter(target.edges)))
                        advanced = True
                        break
                if not advanced:
                    post.append(node)
                    stack.pop()
            order = list(reversed(post))
            self._rpo_cache[name] = order
        return order

    def _run_cfg(self, func, env, act, reach_in, call_stack):
        enc = self.enc
        order = self._rpo(func.name)
        pos = {node.uid: index for index, node in enumerate(order)}
        layers = self.depth + 1
        incoming = {}
        entry_uid = self.cfgs[func.name].entry.uid
        incoming[(0, entry_uid)] = [(reach_in, dict(self._store))]
        exit_states = []
        saved_store = self._store
        for layer in range(layers):
            for node in order:
                entries = incoming.pop((layer, node.uid), None)
                if not entries:
                    continue
                if len(entries) == 1:
                    reach, store = entries[0]
                else:
                    reach = enc.or_many(guard for guard, _ in entries)
                    store = _merge_stores(enc, entries)
                if reach is False:
                    continue
                self._store = store
                if node.kind == EXIT:
                    exit_states.append((reach, store))
                    continue
                out_guards = self._exec_node(
                    node, env, act, reach, call_stack, func.name
                )
                for edge, guard in out_guards:
                    if guard is False:
                        continue
                    target = edge.target
                    if pos[target.uid] > pos[node.uid]:
                        target_layer = layer
                    else:
                        target_layer = layer + 1
                    if target_layer >= layers:
                        self.incomplete.append(guard)
                        continue
                    incoming.setdefault((target_layer, target.uid), []).append(
                        (guard, dict(self._store))
                    )
        if not exit_states:
            self._store = saved_store
            return False, enc.const(0)
        if len(exit_states) == 1:
            exit_reach, store = exit_states[0]
        else:
            exit_reach = enc.or_many(guard for guard, _ in exit_states)
            store = _merge_stores(enc, exit_states)
        self._store = store
        return exit_reach, store.get(("ret", act), enc.const(0))

    def _exec_node(self, node, env, act, reach, call_stack, func_name):
        """Execute one unrolled node; returns [(edge, guard)] pairs."""
        enc = self.enc
        if node.kind == ENTRY:
            return [(edge, reach) for edge in node.edges]
        if node.kind == BRANCH:
            cond = self._truthy(self._eval(node.cond, env, act, reach))
            guards = []
            for edge in node.edges:
                if edge.assume is True:
                    guards.append((edge, enc.lit_and(reach, cond)))
                elif edge.assume is False:
                    guards.append((edge, enc.lit_and(reach, enc.lit_not(cond))))
                else:
                    guards.append((edge, reach))
            return guards
        stmt = node.stmt
        out_reach = reach
        if isinstance(stmt, (C.Skip, C.Goto)):
            pass
        elif isinstance(stmt, C.Assign):
            value = self._eval(stmt.rhs, env, act, reach)
            self._assign(stmt.lhs, value, env, act, reach)
        elif isinstance(stmt, C.Return):
            if stmt.value is not None:
                self._store[("ret", act)] = self._eval(
                    stmt.value, env, act, reach
                )
        elif isinstance(stmt, C.Assert):
            cond = self._truthy(self._eval(stmt.cond, env, act, reach))
            failing = enc.lit_and(reach, enc.lit_not(cond))
            if failing is not False:
                self.errors.append(ErrorSite(failing, func_name, stmt))
            # Execution stops at a failing assert: downstream reach (and
            # therefore downstream input records) require the condition.
            out_reach = enc.lit_and(reach, cond)
        elif isinstance(stmt, C.Assume):
            cond = self._truthy(self._eval(stmt.cond, env, act, reach))
            out_reach = enc.lit_and(reach, cond)
        elif isinstance(stmt, C.CallStmt):
            out_reach = self._exec_call(stmt, env, act, reach, call_stack)
        else:
            raise BmcUnsupported(
                "unsupported statement %s" % type(stmt).__name__
            )
        return [(edge, out_reach) for edge in node.edges]

    def _exec_call(self, stmt, env, act, reach, call_stack):
        enc = self.enc
        callee = self.program.functions.get(stmt.name)
        if callee is None or not callee.is_defined:
            result = enc.fresh()
            self.inputs.append(InputRecord("extern", stmt.name, result, reach))
            if stmt.lhs is not None:
                self._assign(stmt.lhs, result, env, act, reach)
            return reach
        if call_stack.count(stmt.name) >= self.depth:
            # Recursion deeper than the bound: cut, like a back edge.
            self.incomplete.append(reach)
            return False
        args = []
        for arg in stmt.args:
            args.append(self._eval(arg, env, act, reach, allow_array=True))
        exit_reach, retval = self._call(
            callee, args, reach, call_stack + (stmt.name,)
        )
        if stmt.lhs is not None:
            self._assign(stmt.lhs, retval, env, act, exit_reach)
        return exit_reach

    # -- lvalues ------------------------------------------------------------

    def _assign(self, lhs, value, env, act, reach):
        enc = self.enc
        if isinstance(value, ArrayState):
            raise BmcUnsupported("array-valued assignment")
        if isinstance(lhs, C.Id):
            loc = env.get(lhs.name, ("g", lhs.name))
            if loc in self.arrays:
                raise BmcUnsupported("assignment to array %r" % lhs.name)
            if loc not in self._store:
                raise BmcUnsupported("unbound variable %r" % lhs.name)
            self._store[loc] = value
            return
        if isinstance(lhs, C.Deref):
            pointer = self._eval(lhs.pointer, env, act, reach)
            for loc, addr in self._addressed:
                current = self._store.get(loc)
                if current is None:
                    continue
                selected = enc.eq(pointer, enc.const(addr))
                self._store[loc] = enc.ite(selected, value, current)
            return
        if isinstance(lhs, C.Index):
            array = self._array_of(lhs.base, env)
            index = self._eval(lhs.index, env, act, reach)
            if reach is not False:
                array.writes.append((reach, index, value))
            return
        if isinstance(lhs, C.Cast):
            self._assign(lhs.operand, value, env, act, reach)
            return
        raise BmcUnsupported("unsupported lvalue %s" % type(lhs).__name__)

    def _array_of(self, base, env):
        if isinstance(base, C.Cast):
            return self._array_of(base.operand, env)
        if isinstance(base, C.Id):
            loc = env.get(base.name, ("g", base.name))
            array = self.arrays.get(loc)
            if array is not None:
                return array
        raise BmcUnsupported("indexing a non-array expression")

    def _array_read(self, array, index, reach):
        enc = self.enc
        if array.kind == "zero":
            value = enc.const(0)
        else:
            value = enc.fresh()
            for prior_index, prior_value in array.base_reads:
                # Read consistency: equal indices see equal base content.
                same = enc.eq(index, prior_index)
                enc.assert_lit(
                    enc.lit_or(enc.lit_not(same), enc.eq(value, prior_value))
                )
            array.base_reads.append((index, value))
            self.inputs.append(
                InputRecord("array", array.name, value, reach, index_bits=index)
            )
        for guard, written_index, written_value in array.writes:
            hit = enc.lit_and(guard, enc.eq(index, written_index))
            value = enc.ite(hit, written_value, value)
        return value

    # -- expressions --------------------------------------------------------

    def _truthy(self, value):
        if isinstance(value, ArrayState):
            return True  # arrays decay to non-null pointers
        return self.enc.nonzero(value)

    def _eval(self, expr, env, act, reach, allow_array=False):
        enc = self.enc
        if isinstance(expr, C.IntLit):
            return enc.const(expr.value)
        if isinstance(expr, C.Unknown):
            bits = enc.fresh()
            self.inputs.append(InputRecord("unknown", "*", bits, reach))
            return bits
        if isinstance(expr, C.Id):
            loc = env.get(expr.name, ("g", expr.name))
            array = self.arrays.get(loc)
            if array is not None:
                if allow_array:
                    return array
                raise BmcUnsupported(
                    "array %r used as a scalar" % expr.name
                )
            value = self._store.get(loc)
            if value is None:
                raise BmcUnsupported("unbound variable %r" % expr.name)
            return value
        if isinstance(expr, C.AddrOf):
            if isinstance(expr.operand, C.Id):
                loc = env.get(expr.operand.name, ("g", expr.operand.name))
                if loc in self._store:
                    return enc.const(self._addr_id(loc))
            raise BmcUnsupported("unsupported address-of")
        if isinstance(expr, C.Deref):
            pointer = self._eval(expr.pointer, env, act, reach)
            value = enc.const(0)
            for loc, addr in self._addressed:
                current = self._store.get(loc)
                if current is None:
                    continue
                value = enc.ite(enc.eq(pointer, enc.const(addr)), current, value)
            return value
        if isinstance(expr, C.Index):
            array = self._array_of(expr.base, env)
            index = self._eval(expr.index, env, act, reach)
            return self._array_read(array, index, reach)
        if isinstance(expr, C.Cast):
            return self._eval(expr.operand, env, act, reach, allow_array)
        if isinstance(expr, C.FieldAccess):
            raise BmcUnsupported("struct field access")
        if isinstance(expr, C.Call):
            raise BmcUnsupported("call in expression position")
        if isinstance(expr, C.Cond):
            cond = self._truthy(self._eval(expr.cond, env, act, reach))
            then_value = self._eval(
                expr.then_expr, env, act, enc.lit_and(reach, cond)
            )
            else_value = self._eval(
                expr.else_expr, env, act, enc.lit_and(reach, enc.lit_not(cond))
            )
            return enc.ite(cond, then_value, else_value)
        if isinstance(expr, C.UnOp):
            if expr.op == "!":
                operand = self._eval(expr.operand, env, act, reach)
                return enc.from_bool(enc.is_zero(operand))
            operand = self._eval(expr.operand, env, act, reach)
            if expr.op == "-":
                return enc.neg(operand)
            if expr.op == "+":
                return operand
            if expr.op == "~":
                return enc.not_(operand)
            raise AssertionError(expr.op)
        if isinstance(expr, C.BinOp):
            return self._eval_binop(expr, env, act, reach)
        raise BmcUnsupported("unsupported expression %s" % type(expr).__name__)

    def _eval_binop(self, expr, env, act, reach):
        enc = self.enc
        op = expr.op
        if op == "&&":
            left = self._truthy(self._eval(expr.left, env, act, reach))
            # Short-circuit for input accounting: the right operand is
            # only *read* (consumes an oracle value) when the left holds.
            right = self._truthy(
                self._eval(expr.right, env, act, enc.lit_and(reach, left))
            )
            return enc.from_bool(enc.lit_and(left, right))
        if op == "||":
            left = self._truthy(self._eval(expr.left, env, act, reach))
            right = self._truthy(
                self._eval(
                    expr.right, env, act, enc.lit_and(reach, enc.lit_not(left))
                )
            )
            return enc.from_bool(enc.lit_or(left, right))
        left = self._eval(expr.left, env, act, reach)
        right = self._eval(expr.right, env, act, reach)
        if op == "==":
            return enc.from_bool(enc.eq(left, right))
        if op == "!=":
            return enc.from_bool(enc.ne(left, right))
        if op == "<":
            return enc.from_bool(enc.slt(left, right))
        if op == "<=":
            return enc.from_bool(enc.sle(left, right))
        if op == ">":
            return enc.from_bool(enc.slt(right, left))
        if op == ">=":
            return enc.from_bool(enc.sle(right, left))
        if op in ("+", "-") and self._pointer_side(expr) is not None:
            # Logical memory model: pointer arithmetic stays on the object.
            return left if self._pointer_side(expr) == "left" else right
        if op == "+":
            return enc.add(left, right)
        if op == "-":
            return enc.sub(left, right)
        if op == "*":
            return enc.mul(left, right)
        if op == "/":
            return enc.divmod_c(left, right)[0]
        if op == "%":
            return enc.divmod_c(left, right)[1]
        if op == "&":
            return enc.and_(left, right)
        if op == "|":
            return enc.or_(left, right)
        if op == "^":
            return enc.xor(left, right)
        if op == "<<":
            return enc.shl(left, right)
        if op == ">>":
            return enc.ashr(left, right)
        raise BmcUnsupported("unsupported operator %r" % op)

    @staticmethod
    def _pointer_side(expr):
        left_type = getattr(expr.left, "type", None)
        right_type = getattr(expr.right, "type", None)
        if left_type is not None and (
            left_type.is_pointer() or left_type.is_array()
        ):
            return "left"
        if right_type is not None and (
            right_type.is_pointer() or right_type.is_array()
        ):
            return "right"
        return None


def _walk(expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)
