"""The SLAM iterative refinement loop (Section 6.1).

    abstraction (C2bp)  ->  model checking (Bebop)  ->
    predicate discovery (Newton)  ->  abstraction ...

Termination is not guaranteed (assertion-violation checking is
undecidable); the loop is bounded by ``max_iterations`` and returns
"unknown" if the bound is hit or Newton cannot find new predicates.
"""

import time

from repro.bebop import Bebop, ExplicitEngine
from repro.core import C2bp, PredicateSet
from repro.newton import analyze_path, path_from_boolean_steps
from repro.prover import Prover


class IterationStats:
    __slots__ = ("predicates", "prover_calls", "error_reached", "seconds")

    def __init__(self, predicates, prover_calls, error_reached, seconds):
        self.predicates = predicates
        self.prover_calls = prover_calls
        self.error_reached = error_reached
        self.seconds = seconds

    def __repr__(self):
        return (
            "IterationStats(predicates=%d, prover_calls=%d, error=%r, %.2fs)"
            % (self.predicates, self.prover_calls, self.error_reached, self.seconds)
        )


class CegarResult:
    """Outcome of the refinement loop."""

    def __init__(self, verdict, iterations, predicates, trace=None, boolean_program=None):
        self.verdict = verdict  # "safe" | "unsafe" | "unknown"
        self.iterations = iterations
        self.predicates = predicates
        self.trace = trace  # feasible C error path (for "unsafe")
        self.boolean_program = boolean_program
        self.iteration_stats = []
        self.total_prover_calls = 0
        self.seconds = 0.0

    @property
    def is_safe(self):
        return self.verdict == "safe"

    @property
    def is_unsafe(self):
        return self.verdict == "unsafe"

    def __repr__(self):
        return "CegarResult(%s after %d iterations, %d predicates)" % (
            self.verdict,
            self.iterations,
            len(self.predicates),
        )


def cegar_loop(
    program,
    initial_predicates=None,
    main="main",
    max_iterations=10,
    options=None,
    prover=None,
):
    """Run abstraction/check/refine until a verdict or the bound."""
    predicates = initial_predicates or PredicateSet()
    prover = prover or Prover()
    started = time.perf_counter()
    stats = []
    result = None
    boolean_program = None
    for iteration in range(1, max_iterations + 1):
        iter_start = time.perf_counter()
        tool = C2bp(program, predicates, options=options, prover=prover)
        boolean_program = tool.run()
        check = Bebop(boolean_program, main=main).run()
        elapsed = time.perf_counter() - iter_start
        stats.append(
            IterationStats(
                len(predicates), tool.stats.prover_calls, check.error_reached, elapsed
            )
        )
        if not check.error_reached:
            result = CegarResult("safe", iteration, predicates,
                                 boolean_program=boolean_program)
            break
        # A reachable failing assert: extract a concrete boolean path.
        engine = ExplicitEngine(boolean_program, main=main)
        bool_path = engine.find_assertion_failure()
        if bool_path is None:
            # The symbolic engine says reachable but no explicit witness
            # was found within budget: give up rather than guess.
            result = CegarResult("unknown", iteration, predicates,
                                 boolean_program=boolean_program)
            break
        c_path = path_from_boolean_steps(program, bool_path)
        newton = analyze_path(
            program, c_path, prover=prover, existing_predicates=predicates
        )
        if newton.feasible:
            result = CegarResult(
                "unsafe", iteration, predicates, trace=c_path,
                boolean_program=boolean_program,
            )
            break
        if not newton.new_predicates:
            result = CegarResult("unknown", iteration, predicates,
                                 boolean_program=boolean_program)
            break
        for predicate in newton.new_predicates:
            predicates.add(predicate)
    if result is None:
        result = CegarResult("unknown", max_iterations, predicates,
                             boolean_program=boolean_program)
    result.iteration_stats = stats
    result.total_prover_calls = prover.stats.calls
    result.seconds = time.perf_counter() - started
    return result
