"""The SLAM iterative refinement loop (Section 6.1).

    abstraction (C2bp)  ->  model checking (Bebop)  ->
    predicate discovery (Newton)  ->  abstraction ...

Termination is not guaranteed (assertion-violation checking is
undecidable); the loop is bounded by ``max_iterations`` and returns
"unknown" if the bound is hit or Newton cannot find new predicates.

The loop threads one :class:`repro.engine.EngineContext` through every
layer, so all iterations share a single prover and its canonical-form
query cache: cube tests whose answers did not change with the new
predicates are cache hits, not fresh decision-procedure runs.  Each
:class:`IterationStats` records the *per-iteration delta* of raw prover
calls, total queries, and cache hits, which is how the cross-iteration
reuse shows up in ``--stats-json`` output.
"""

import time

from repro.analysis import (
    AbstractionReuse,
    eliminate_dead_variables,
    ensure_analysis_stats,
)
from repro.bebop import Bebop, BebopReuse, ExplicitEngine
from repro.cfront import cast as C
from repro.cfront.exprutils import variables
from repro.core import C2bp, PredicateSet
from repro.core.predicates import Predicate, PredicateParseError
from repro.engine import EngineContext, IterationLog
from repro.newton import analyze_path, path_from_boolean_steps


class IterationStats:
    """One CEGAR iteration's accounting.

    ``prover_calls``/``prover_queries``/``cache_hits`` are deltas for this
    iteration only (C2bp plus Newton), not running totals.
    """

    __slots__ = (
        "iteration",
        "predicates",
        "prover_calls",
        "prover_queries",
        "cache_hits",
        "error_reached",
        "seconds",
        "bebop_transfers_compiled",
        "bebop_transfers_reused",
        "predicates_skipped_dead",
        "queries_discharged_interval",
        "bp_vars_eliminated",
        "modref_summary_hits",
    )

    def __init__(
        self,
        predicates,
        prover_calls,
        error_reached,
        seconds,
        iteration=0,
        prover_queries=0,
        cache_hits=0,
        bebop_transfers_compiled=0,
        bebop_transfers_reused=0,
        predicates_skipped_dead=0,
        queries_discharged_interval=0,
        bp_vars_eliminated=0,
        modref_summary_hits=0,
    ):
        self.iteration = iteration
        self.predicates = predicates
        self.prover_calls = prover_calls
        self.prover_queries = prover_queries
        self.cache_hits = cache_hits
        self.error_reached = error_reached
        self.seconds = seconds
        self.bebop_transfers_compiled = bebop_transfers_compiled
        self.bebop_transfers_reused = bebop_transfers_reused
        self.predicates_skipped_dead = predicates_skipped_dead
        self.queries_discharged_interval = queries_discharged_interval
        self.bp_vars_eliminated = bp_vars_eliminated
        self.modref_summary_hits = modref_summary_hits

    def snapshot(self):
        return {
            "iteration": self.iteration,
            "predicates": self.predicates,
            "prover_calls": self.prover_calls,
            "prover_queries": self.prover_queries,
            "cache_hits": self.cache_hits,
            "error_reached": self.error_reached,
            "seconds": round(self.seconds, 6),
            "bebop_transfers_compiled": self.bebop_transfers_compiled,
            "bebop_transfers_reused": self.bebop_transfers_reused,
            "predicates_skipped_dead": self.predicates_skipped_dead,
            "queries_discharged_interval": self.queries_discharged_interval,
            "bp_vars_eliminated": self.bp_vars_eliminated,
            "modref_summary_hits": self.modref_summary_hits,
        }

    def __repr__(self):
        return (
            "IterationStats(predicates=%d, prover_calls=%d, error=%r, %.2fs)"
            % (self.predicates, self.prover_calls, self.error_reached, self.seconds)
        )


class CegarResult:
    """Outcome of the refinement loop."""

    def __init__(self, verdict, iterations, predicates, trace=None, boolean_program=None):
        self.verdict = verdict  # "safe" | "unsafe" | "unknown"
        self.iterations = iterations
        self.predicates = predicates
        self.trace = trace  # feasible C error path (for "unsafe")
        self.boolean_program = boolean_program
        self.iteration_stats = []
        self.total_prover_calls = 0
        self.seconds = 0.0
        # Filled when the divergence fallback ran the bounded model
        # checker: the BMC verdict ("unsafe" / "safe" / "safe-up-to-k")
        # and the unwinding depth it used.  A replay-validated "unsafe"
        # also upgrades ``verdict`` itself.
        self.bounded_verdict = None
        self.bmc_depth = None

    @property
    def is_safe(self):
        return self.verdict == "safe"

    @property
    def is_unsafe(self):
        return self.verdict == "unsafe"

    def __repr__(self):
        return "CegarResult(%s after %d iterations, %d predicates)" % (
            self.verdict,
            self.iterations,
            len(self.predicates),
        )


def _interval_fallback_predicates(program, tool, predicates):
    """Candidate predicates from the interval analysis' loop-head
    invariants, deduplicated against the current set (Newton-stall
    fallback; empty when intervals are disabled)."""
    if tool.analysis is None:
        return []
    existing = set()
    for p in predicates.all_predicates():
        existing.add((p.scope, p.expr))
        existing.add((p.scope, C.negate(p.expr)))
    global_names = set(program.global_names())
    found = []
    for func in program.defined_functions():
        for expr in tool.analysis.newton_fallback_predicates(func.name):
            scope = None if variables(expr) <= global_names else func.name
            if (scope, expr) in existing or (scope, C.negate(expr)) in existing:
                continue
            try:
                predicate = Predicate(expr, scope)
            except PredicateParseError:
                continue
            existing.add((scope, expr))
            found.append(predicate)
    return found


def _bounded_fallback(program, main, predicates, ctx, iteration, boolean_program):
    """CEGAR diverged (no new predicates, interval fallback exhausted):
    run the bounded model checker for an independent verdict.  A witness
    that concretely fails an assert under the *unbounded* interpreter
    upgrades the verdict to "unsafe"; anything else stays "unknown" but
    records the bounded verdict (``safe-up-to-k`` / ``safe`` at the
    checked width) so callers see how far the program was explored."""
    result = CegarResult(
        "unknown", iteration, predicates, boolean_program=boolean_program
    )
    if not getattr(ctx.options, "bmc_fallback", True):
        return result
    from repro.bmc import (
        VERDICT_UNSAFE,
        VERDICT_UNSUPPORTED,
        replay_witness,
        run_bmc,
    )
    from repro.bmc.driver import REPLAY_ASSERT_FAILED

    depth = getattr(ctx.options, "bmc_depth", 16)
    width = getattr(ctx.options, "bmc_width", 16)
    with ctx.phase("bmc-fallback"):
        bmc = run_bmc(program, entry=main, depth=depth, width=width, context=ctx)
    if bmc.verdict == VERDICT_UNSUPPORTED:
        return result
    if bmc.verdict == VERDICT_UNSAFE and bmc.witness is not None:
        # Only a concrete failure under the paper's mathematical-integer
        # semantics may override the pipeline (a wrap-only overflow
        # failure is not an error the logical model recognizes).
        replay = replay_witness(program, main, bmc.witness, width=None)
        if replay == REPLAY_ASSERT_FAILED:
            result = CegarResult(
                "unsafe", iteration, predicates,
                boolean_program=boolean_program,
            )
    result.bounded_verdict = bmc.verdict
    result.bmc_depth = depth
    ctx.events.emit(
        "cegar.bmc_fallback", verdict=bmc.verdict, depth=depth, width=width
    )
    return result


def cegar_loop(
    program,
    initial_predicates=None,
    main="main",
    max_iterations=10,
    options=None,
    prover=None,
    context=None,
):
    """Run abstraction/check/refine until a verdict or the bound."""
    ctx = EngineContext.ensure(context, options=options, prover=prover)
    try:
        return _cegar_loop(program, initial_predicates, main, max_iterations, ctx)
    finally:
        if context is None:
            # The loop owns this private context, so nobody else can
            # release its worker pool; close on every exit path.
            ctx.close()


def _cegar_loop(program, initial_predicates, main, max_iterations, ctx):
    predicates = initial_predicates or PredicateSet()
    engine_prover = ctx.prover
    # One BDD manager + compiled-transfer cache for the whole loop: each
    # refinement changes a few procedures; the rest check with the
    # transfer relations compiled in earlier iterations.
    reuse = None
    if not getattr(ctx.options, "bebop_legacy", False) and getattr(
        ctx.options, "bebop_reuse", True
    ):
        persistent_tables = None
        if getattr(ctx, "store", None) is not None:
            # A --cache-dir run: compiled tables also come from / go to
            # the content-addressed store, so unchanged procedures skip
            # recompilation across *runs*, not just across iterations.
            from repro.serve import BebopTableStore

            persistent_tables = BebopTableStore(ctx.store)
        reuse = BebopReuse(persistent=persistent_tables)
        ctx.stats.register("bebop_reuse", reuse.snapshot)
    # Cross-iteration statement-abstraction cache (serial path only —
    # the parallel path already amortizes via the forked prover cache).
    abstraction_reuse = None
    analysis_stats = None
    if getattr(ctx.options, "use_analysis", True):
        analysis_stats = ensure_analysis_stats(ctx)
        if (getattr(ctx.options, "jobs", 1) or 1) <= 1:
            if getattr(ctx, "store", None) is not None:
                from repro.serve import PersistentAbstractionReuse

                abstraction_reuse = PersistentAbstractionReuse(
                    ctx.store, ctx.options, stats=analysis_stats
                )
            else:
                abstraction_reuse = AbstractionReuse(stats=analysis_stats)
    started = time.perf_counter()
    stats = []
    iteration_log = IterationLog()
    ctx.stats.register("iterations", iteration_log)
    result = None
    boolean_program = None
    interval_fallback_done = False
    for iteration in range(1, max_iterations + 1):
        iter_start = time.perf_counter()
        calls_before = engine_prover.stats.calls
        queries_before = engine_prover.stats.queries
        hits_before = engine_prover.stats.cache_hits
        analysis_before = (
            analysis_stats.snapshot() if analysis_stats is not None else {}
        )
        tool = C2bp(program, predicates, context=ctx, reuse=abstraction_reuse)
        boolean_program = tool.run()
        # Model-check the DCE'd program; the result object carries the
        # full translation (its label invariants name every predicate).
        checked_program = boolean_program
        if tool.analysis is not None and getattr(ctx.options, "bp_dce", True):
            checked_program, _ = eliminate_dead_variables(
                boolean_program, stats=analysis_stats
            )
        bebop = Bebop(checked_program, main=main, context=ctx, reuse=reuse)
        check = bebop.run()
        if not check.error_reached:
            result = CegarResult("safe", iteration, predicates,
                                 boolean_program=boolean_program)
        else:
            # A reachable failing assert: extract a concrete boolean path.
            engine = ExplicitEngine(checked_program, main=main)
            bool_path = engine.find_assertion_failure()
            if bool_path is None:
                # The symbolic engine says reachable but no explicit witness
                # was found within budget: give up rather than guess.
                result = CegarResult("unknown", iteration, predicates,
                                     boolean_program=boolean_program)
            else:
                c_path = path_from_boolean_steps(program, bool_path)
                newton = analyze_path(
                    program, c_path, existing_predicates=predicates, context=ctx
                )
                if newton.feasible:
                    result = CegarResult(
                        "unsafe", iteration, predicates, trace=c_path,
                        boolean_program=boolean_program,
                    )
                elif not newton.new_predicates:
                    # Newton stalled.  Once per run, fall back to the
                    # interval loop invariants as candidate predicates —
                    # a diverging counter often needs exactly the bound
                    # the intervals hand out for free.
                    fallback = []
                    if not interval_fallback_done:
                        interval_fallback_done = True
                        fallback = _interval_fallback_predicates(
                            program, tool, predicates
                        )
                    if fallback:
                        for predicate in fallback:
                            predicates.add(predicate)
                    else:
                        # Diverged for good: take a bounded verdict from
                        # the bit-precise model checker instead of
                        # returning a bare unknown.
                        result = _bounded_fallback(
                            program, main, predicates, ctx, iteration,
                            boolean_program,
                        )
                else:
                    for predicate in newton.new_predicates:
                        predicates.add(predicate)
        analysis_after = (
            analysis_stats.snapshot() if analysis_stats is not None else {}
        )

        def _delta(name):
            return analysis_after.get(name, 0) - analysis_before.get(name, 0)

        record = IterationStats(
            len(predicates),
            engine_prover.stats.calls - calls_before,
            check.error_reached,
            time.perf_counter() - iter_start,
            iteration=iteration,
            prover_queries=engine_prover.stats.queries - queries_before,
            cache_hits=engine_prover.stats.cache_hits - hits_before,
            bebop_transfers_compiled=bebop.transfers_compiled,
            bebop_transfers_reused=bebop.transfers_reused,
            predicates_skipped_dead=_delta("predicates_skipped_dead"),
            queries_discharged_interval=_delta("queries_discharged_interval"),
            bp_vars_eliminated=_delta("bp_vars_eliminated"),
            modref_summary_hits=_delta("modref_summary_hits"),
        )
        stats.append(record)
        iteration_log.append(record.snapshot())
        ctx.events.emit("cegar-iteration", **record.snapshot())
        if result is not None:
            break
        if reuse is not None:
            # Reclaim the finished iteration's path edges and summaries.
            # (Never after the last iteration: the returned result still
            # queries its BDDs.)
            reuse.end_iteration()
    if result is None:
        result = CegarResult("unknown", max_iterations, predicates,
                             boolean_program=boolean_program)
    result.iteration_stats = stats
    result.total_prover_calls = engine_prover.stats.calls
    result.seconds = time.perf_counter() - started
    ctx.stats.register(
        "cegar",
        {
            "verdict": result.verdict,
            "iterations": result.iterations,
            "predicates": len(result.predicates),
            "total_prover_calls": result.total_prover_calls,
            "seconds": round(result.seconds, 6),
            "bounded_verdict": result.bounded_verdict,
            "bmc_depth": result.bmc_depth,
        },
    )
    return result
