"""The SLAM toolkit: automatic checking of temporal safety properties.

Given a C program and a safety property (a finite automaton over the
program's interface calls, in the spirit of SLIC), SLAM iterates:

1. **abstraction** — C2bp builds ``BP(P, E)`` for the current predicates
   ``E`` (:mod:`repro.core`);
2. **model checking** — Bebop decides whether the instrumented error state
   is reachable (:mod:`repro.bebop`);
3. **predicate discovery** — Newton checks the reported error path against
   the concrete C semantics; infeasible paths yield new predicates that
   refine the abstraction (:mod:`repro.newton`).

The toolkit never reports spurious error paths: an error is only surfaced
after Newton confirms the path is feasible.  The loop may fail to converge
(property checking is undecidable); in practice — as the paper observes for
control-dominated driver properties — a few iterations suffice.
"""

from repro.slam.spec import SafetySpec, SpecError
from repro.slam.instrument import instrument_program
from repro.slam.cegar import CegarResult, cegar_loop
from repro.slam.toolkit import SlamResult, SlamToolkit, check_property

__all__ = [
    "CegarResult",
    "SafetySpec",
    "SlamResult",
    "SlamToolkit",
    "SpecError",
    "cegar_loop",
    "check_property",
    "instrument_program",
]
