"""Safety property specifications (a SLIC-like automaton language).

A safety property — "something bad does not happen" — is a finite state
machine over *events*, where an event is a call to a named interface
function (e.g. ``KeAcquireSpinLock``).  Transitions either move to another
state or to the implicit error state; reaching the error state means the
program violates the property.

Example — proper lock usage (locks alternate acquire/release)::

    spec = SafetySpec.lock_discipline("KeAcquireSpinLock",
                                      "KeReleaseSpinLock")

which is the automaton:

    states: Unlocked (initial), Locked
    Unlocked --acquire--> Locked      Locked  --acquire--> ERROR
    Locked  --release--> Unlocked     Unlocked --release--> ERROR
"""

ERROR = "<error>"


class SpecError(Exception):
    pass


class SafetySpec:
    def __init__(self, name, states, initial, final_states=()):
        if initial not in states:
            raise SpecError("initial state %r not among states" % initial)
        self.name = name
        self.states = list(states)
        self.initial = initial
        self.transitions = {}  # (state, event) -> state or ERROR
        self.events = []
        # States the automaton must NOT be in when a watched procedure
        # returns to the environment (e.g. "still holding the lock").
        self.final_forbidden = [s for s in final_states]

    def on(self, state, event, target):
        """Add the transition state --event--> target (ERROR allowed)."""
        if state not in self.states:
            raise SpecError("unknown state %r" % state)
        if target is not ERROR and target not in self.states:
            raise SpecError("unknown target state %r" % target)
        self.transitions[(state, event)] = target
        if event not in self.events:
            self.events.append(event)
        return self

    def error_on(self, state, event):
        return self.on(state, event, ERROR)

    def state_index(self, state):
        return self.states.index(state)

    def transition(self, state, event):
        """The successor (default: stay) for an event in a state."""
        return self.transitions.get((state, event), state)

    # -- common properties -------------------------------------------------------

    @classmethod
    def lock_discipline(cls, acquire, release, name="locking"):
        """A lock is never acquired twice nor released without holding it."""
        spec = cls(name, ["Unlocked", "Locked"], "Unlocked")
        spec.on("Unlocked", acquire, "Locked")
        spec.on("Locked", release, "Unlocked")
        spec.error_on("Locked", acquire)
        spec.error_on("Unlocked", release)
        return spec

    @classmethod
    def complete_exactly_once(cls, complete, name="irp-completion"):
        """An IRP must not be completed twice (double completion)."""
        spec = cls(name, ["Pending", "Completed"], "Pending")
        spec.on("Pending", complete, "Completed")
        spec.error_on("Completed", complete)
        return spec

    @classmethod
    def must_complete_before_return(cls, complete, name="irp-must-complete"):
        """An IRP must be completed (exactly once) before the dispatch
        routine returns; checked with a forbidden final state."""
        spec = cls(name, ["Pending", "Completed"], "Pending",
                   final_states=["Pending"])
        spec.on("Pending", complete, "Completed")
        spec.error_on("Completed", complete)
        return spec

    @classmethod
    def complete_or_forward(cls, complete, forward, name="irp-handoff"):
        """A filter driver must either complete a request locally or hand
        it to the lower driver — exactly one of the two, exactly once."""
        spec = cls(name, ["Pending", "Done"], "Pending",
                   final_states=["Pending"])
        spec.on("Pending", complete, "Done")
        spec.on("Pending", forward, "Done")
        spec.error_on("Done", complete)
        spec.error_on("Done", forward)
        return spec

    def __repr__(self):
        return "SafetySpec(%r, states=%r)" % (self.name, self.states)
