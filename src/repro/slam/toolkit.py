"""The SLAM front door: check a temporal safety property of a C program."""

from repro.cfront import parse_c_program
from repro.cfront.pretty import pretty_stmt
from repro.core import PredicateSet, Predicate
from repro.cfront import cast as C
from repro.slam.cegar import cegar_loop
from repro.slam.instrument import STATE_VAR, instrument_program
from repro.slam.spec import SafetySpec


class SlamResult:
    """User-facing verdict for one (program, property) query."""

    def __init__(self, cegar_result, spec, entry):
        self.cegar = cegar_result
        self.spec = spec
        self.entry = entry

    @property
    def verdict(self):
        return self.cegar.verdict

    @property
    def passed(self):
        return self.cegar.is_safe

    @property
    def iterations(self):
        return self.cegar.iterations

    @property
    def predicates(self):
        return self.cegar.predicates

    def error_trace_lines(self):
        """The violating C path rendered as source lines (empty if safe)."""
        if self.cegar.trace is None:
            return []
        lines = []
        for step in self.cegar.trace:
            text = pretty_stmt(step.stmt).strip().split("\n")[0]
            if step.kind == "branch":
                text += "  [%s]" % ("true" if step.outcome else "false")
            lines.append("%s: %s" % (step.func_name, text))
        return lines

    def __repr__(self):
        return "SlamResult(%s, property=%r, iterations=%d)" % (
            self.verdict,
            self.spec.name,
            self.iterations,
        )


class SlamToolkit:
    """Holds a parsed program and runs property checks against it."""

    def __init__(self, source, name="<program>"):
        self.source = source
        self.name = name

    def check(
        self,
        spec,
        entry="main",
        extra_predicates=(),
        max_iterations=10,
        options=None,
        context=None,
    ):
        # Each check instruments a fresh parse (instrumentation mutates).
        program = parse_c_program(self.source, name=self.name)
        instrument_program(program, spec, entry=entry)
        predicates = PredicateSet()
        for index, _state in enumerate(spec.states):
            predicates.add(
                Predicate(C.BinOp("==", C.Id(STATE_VAR), C.IntLit(index)), None)
            )
        for predicate in extra_predicates:
            predicates.add(predicate)
        result = cegar_loop(
            program,
            initial_predicates=predicates,
            main=entry,
            max_iterations=max_iterations,
            options=options,
            context=context,
        )
        return SlamResult(result, spec, entry)


def check_property(source, spec, entry="main", **kwargs):
    """Convenience wrapper: parse, instrument, and run the CEGAR loop."""
    return SlamToolkit(source).check(spec, entry=entry, **kwargs)
