"""Weaving a safety automaton into a C program.

The instrumentation is the SLIC-style product construction:

- a fresh global ``__slic_state`` holds the automaton state;
- every event (watched interface function) gets a stub
  ``__slic_<event>()`` that steps the automaton — an error transition
  becomes ``assert(0)``, which Bebop checks for reachability;
- every call to a watched function is routed through its stub (the original
  call is kept when the function has a real definition in the program);
- forbidden *final* states become asserts before the entry procedure's
  return.

The instrumentation state is registered in ``program.protected_globals`` so
extern-call havoc in C2bp cannot clobber it (no foreign code can reach a
variable we just invented).
"""

from repro.cfront import cast as C
from repro.cfront import ctypes as CT
from repro.cfront.cfg import build_program_cfgs
from repro.cfront.typecheck import typecheck_program
from repro.slam.spec import ERROR

STATE_VAR = "__slic_state"

_unknown_counter = [1000]


def _fresh_unknown():
    _unknown_counter[0] += 1
    return C.Unknown(uid=_unknown_counter[0])


def stub_name(event):
    return "__slic_%s" % event


def instrument_program(program, spec, entry="main"):
    """Instrument ``program`` in place with ``spec``; returns the program."""
    _add_state_variable(program, spec, entry)
    for event in spec.events:
        _add_stub(program, spec, event)
    _rewrite_call_sites(program, spec)
    if spec.final_forbidden:
        _check_final_states(program, spec, entry)
    typecheck_program(program)
    build_program_cfgs(program)  # stamp the new statements
    return program


def _add_state_variable(program, spec, entry):
    if program.lookup_global(STATE_VAR) is not None:
        raise ValueError("program already instrumented")
    initial = spec.state_index(spec.initial)
    program.globals.append(C.VarDecl(STATE_VAR, CT.INT, C.IntLit(initial)))
    program.protected_globals.add(STATE_VAR)
    # Boolean program variables start unconstrained (Section 2.1), so the
    # initial automaton state must be established by an explicit assignment
    # at the entry, where C2bp abstracts it precisely.
    func = program.functions.get(entry)
    if func is None or not func.is_defined:
        raise ValueError("no entry procedure %r to instrument" % entry)
    func.body.insert(0, C.Assign(C.Id(STATE_VAR), C.IntLit(initial)))


def _state_eq(index):
    return C.BinOp("==", C.Id(STATE_VAR), C.IntLit(index))


def _transition_action(spec, state, event):
    target = spec.transition(state, event)
    if target is ERROR:
        return [C.Assert(C.IntLit(0))]
    target_index = spec.state_index(target)
    if target_index == spec.state_index(state):
        return []  # self loop: nothing to do
    return [C.Assign(C.Id(STATE_VAR), C.IntLit(target_index))]


def _add_stub(program, spec, event):
    """``int __slic_<event>(void)``: step the automaton, return nondet."""
    body = []
    chain = None
    # Build the if/else-if chain over automaton states, innermost first.
    for state in reversed(spec.states):
        index = spec.state_index(state)
        action = _transition_action(spec, state, event)
        branch = C.If(_state_eq(index), action, [chain] if chain else [])
        chain = branch
    if chain is not None:
        body.append(chain)
    result = C.VarDecl("__slic_r", CT.INT)
    body.append(C.Assign(C.Id("__slic_r"), _fresh_unknown()))
    body.append(C.Return(C.Id("__slic_r")))
    func = C.Function(stub_name(event), CT.INT, [], [result], body)
    func.return_var = "__slic_r"
    program.functions[func.name] = func


def _rewrite_call_sites(program, spec):
    watched = set(spec.events)
    for func in program.defined_functions():
        if func.name.startswith("__slic_"):
            continue
        _rewrite_body(program, func.body, watched)


def _rewrite_body(program, stmts, watched):
    index = 0
    while index < len(stmts):
        stmt = stmts[index]
        for sub in stmt.substatements():
            _rewrite_body(program, sub, watched)
        if isinstance(stmt, C.CallStmt) and stmt.name in watched:
            callee = program.functions.get(stmt.name)
            if callee is not None and callee.is_defined:
                # Keep the real call; step the automaton just before it.
                probe = C.CallStmt(None, stub_name(stmt.name), [], stmt.pos)
                probe.labels = stmt.labels
                stmt.labels = []
                stmts.insert(index, probe)
                index += 1
            else:
                # Extern interface function: the stub *is* its model (it
                # returns a nondeterministic int, like the havoc would).
                replacement = C.CallStmt(stmt.lhs, stub_name(stmt.name), [], stmt.pos)
                replacement.labels = stmt.labels
                stmts[index] = replacement
        index += 1


def _check_final_states(program, spec, entry):
    func = program.functions.get(entry)
    if func is None or not func.is_defined:
        raise ValueError("no entry procedure %r to check final states in" % entry)
    checks = []
    for state in spec.final_forbidden:
        index = spec.state_index(state)
        checks.append(C.Assert(C.BinOp("!=", C.Id(STATE_VAR), C.IntLit(index))))
    # The lowered body ends with [..., __exit-labelled skip, return r?].
    insert_at = len(func.body)
    if func.body and isinstance(func.body[-1], C.Return):
        insert_at -= 1
    func.body[insert_at:insert_at] = checks
