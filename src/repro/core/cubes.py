"""The cube strengthening search: ``F_V(φ)`` and ``G_V(φ)`` (Section 4.1).

A *cube* over the boolean variables ``V`` is a conjunction of literals over
distinct variables.  ``F_V(φ)`` is the largest disjunction of cubes ``c``
such that ``E(c)`` implies ``φ``; it is the weakest predicate over ``E(V)``
that implies ``φ``.  ``G_V(φ) = ¬F_V(¬φ)`` is the strongest predicate over
``E(V)`` implied by ``φ``.

Each cube test is one theorem prover call.  The naive search makes
exponentially many; the Section 5.2 optimizations implemented here are:

- cubes are enumerated in increasing length, and any cube containing a
  known implicant is pruned (so the result is a disjunction of *prime*
  implicants only);
- a cube that implies ``¬φ`` prunes all its supersets;
- cube length can be bounded by ``max_cube_length`` (paper: ``k = 3``
  usually suffices — a precision/speed tradeoff);
- ``F`` can be distributed through ``&&`` (lossless) and ``||`` (lossy);
- the syntactic shortcut returns the variable directly when ``φ`` (or its
  negation) is literally a predicate of ``V``.
"""

import itertools

from repro.cfront import cast as C
from repro.cfront.exprutils import fold_constants, is_trivially_false, is_trivially_true
from repro.boolprog import ast as B


class Cube(tuple):
    """A cube as a tuple of (candidate index, polarity) pairs."""

    def contains(self, other):
        return set(other).issubset(set(self))


_KEEP = "keep"
_PRUNE = "prune"


class CubeSearch:
    """Shared machinery for F/G computations against one prover."""

    def __init__(self, prover, options, events=None):
        self.prover = prover
        self.options = options
        self.events = events

    # -- core search -----------------------------------------------------------

    def _search_cubes(self, candidates, limit, classify):
        """The shared pruning enumeration behind :meth:`implicant_cubes`
        and :meth:`inconsistent_cubes`.

        Cubes are enumerated in increasing length; any cube containing an
        already-kept or already-pruned cube is skipped, so the result is
        minimal (prime) cubes only.  ``classify(cube)`` returns ``_KEEP``
        (collect, prune supersets), ``_PRUNE`` (prune supersets only), or
        ``None`` (undecided — supersets stay eligible).
        """
        if limit is None or limit > len(candidates):
            limit = len(candidates)
        kept = []
        pruned = []
        for length in range(1, limit + 1):
            for var_indices in itertools.combinations(range(len(candidates)), length):
                for polarities in itertools.product([True, False], repeat=length):
                    cube = Cube(zip(var_indices, polarities))
                    if any(cube.contains(found) for found in kept):
                        continue
                    if any(cube.contains(bad) for bad in pruned):
                        continue
                    verdict = classify(cube)
                    if verdict == _KEEP:
                        kept.append(cube)
                    elif verdict == _PRUNE:
                        pruned.append(cube)
        return kept

    def _cube_query(self, candidates, cube, goal, purpose):
        """One prover query on a cube's concretization, reported as a
        ``cube-test`` event."""
        result = self.prover.implies(self._cube_exprs(candidates, cube), goal)
        if self.events is not None:
            self.events.emit(
                "cube-test", purpose=purpose, cube_size=len(cube), result=result
            )
        return result

    def implicant_cubes(self, candidates, phi, max_length=None):
        """All prime implicant cubes c over ``candidates`` with E(c) => φ.

        Returns a list of :class:`Cube`; the empty cube (meaning "true
        implies φ", i.e. φ is valid over the candidates) is returned as the
        single result ``[Cube()]``.
        """
        phi = fold_constants(phi)
        if is_trivially_true(phi):
            return [Cube()]
        if is_trivially_false(phi):
            return []
        if self.options.syntactic_heuristics:
            shortcut = self._syntactic_shortcut(candidates, phi)
            if shortcut is not None:
                return shortcut
        if self.prover.is_valid(phi):
            return [Cube()]
        limit = max_length
        if limit is None:
            limit = self.options.max_cube_length
        not_phi = C.negate(phi)

        def classify(cube):
            if self._cube_query(candidates, cube, phi, "implicant"):
                return _KEEP
            if self._cube_query(candidates, cube, not_phi, "refute"):
                return _PRUNE
            return None

        return self._search_cubes(candidates, limit, classify)

    def _syntactic_shortcut(self, candidates, phi):
        for index, candidate in enumerate(candidates):
            if candidate.expr == phi:
                return [Cube([(index, True)])]
            if C.negate(candidate.expr) == phi or candidate.expr == C.negate(phi):
                return [Cube([(index, False)])]
        return None

    @staticmethod
    def _cube_exprs(candidates, cube):
        exprs = []
        for index, polarity in cube:
            expr = candidates[index].expr
            exprs.append(expr if polarity else C.negate(expr))
        return exprs

    # -- boolean program expressions ---------------------------------------------

    def cubes_to_bexpr(self, candidates, cubes):
        """The boolean program expression for a disjunction of cubes."""
        if not cubes:
            return B.BConst(False)
        disjuncts = []
        for cube in cubes:
            literals = []
            for index, polarity in cube:
                var = B.BVar(candidates[index].name)
                literals.append(var if polarity else B.BNot(var))
            disjuncts.append(B.bool_and(literals))
        return B.bool_or(disjuncts)

    def f_expr(self, candidates, phi):
        """``F_V(φ)`` as a boolean program expression."""
        phi = fold_constants(phi)
        if self.options.distribute_f and isinstance(phi, C.BinOp):
            # F distributes losslessly through && and lossily through ||.
            if phi.op == "&&":
                return B.bool_and(
                    [self.f_expr(candidates, phi.left), self.f_expr(candidates, phi.right)]
                )
            if phi.op == "||":
                return B.bool_or(
                    [self.f_expr(candidates, phi.left), self.f_expr(candidates, phi.right)]
                )
        cubes = self.implicant_cubes(candidates, phi)
        return self.cubes_to_bexpr(candidates, cubes)

    def g_expr(self, candidates, phi):
        """``G_V(φ) = ¬F_V(¬φ)`` as a boolean program expression."""
        return B.bool_not(self.f_expr(candidates, C.negate(phi)))

    # -- the enforce invariant (Section 5.1) ------------------------------------------

    def inconsistent_cubes(self, candidates, max_length):
        """Minimal cubes whose concretizations are unsatisfiable — the
        ``F_V(false)`` computation, done directly (the constant-folding
        shortcuts of :meth:`implicant_cubes` would collapse it)."""
        false = C.IntLit(0)

        def classify(cube):
            if self._cube_query(candidates, cube, false, "inconsistent"):
                return _KEEP
            return None

        return self._search_cubes(candidates, max_length, classify)

    def enforce_expr(self, candidates):
        """``Ω = ¬F_V(false)``: rules out predicate valuations whose
        concretizations are unsatisfiable (e.g. x==1 and x==2 both true)."""
        cubes = self.inconsistent_cubes(
            candidates, self.options.enforce_cube_length
        )
        if not cubes:
            return None
        return B.bool_not(self.cubes_to_bexpr(candidates, cubes))
