"""The cube strengthening search: ``F_V(φ)`` and ``G_V(φ)`` (Section 4.1).

A *cube* over the boolean variables ``V`` is a conjunction of literals over
distinct variables.  ``F_V(φ)`` is the largest disjunction of cubes ``c``
such that ``E(c)`` implies ``φ``; it is the weakest predicate over ``E(V)``
that implies ``φ``.  ``G_V(φ) = ¬F_V(¬φ)`` is the strongest predicate over
``E(V)`` implied by ``φ``.

Each cube test is one theorem prover call.  The naive search makes
exponentially many; the Section 5.2 optimizations implemented here are:

- cubes are enumerated in increasing length, and any cube containing a
  known implicant is pruned (so the result is a disjunction of *prime*
  implicants only);
- a cube that implies ``¬φ`` prunes all its supersets;
- cube length can be bounded by ``max_cube_length`` (paper: ``k = 3``
  usually suffices — a precision/speed tradeoff);
- ``F`` can be distributed through ``&&`` (lossless) and ``||`` (lossy);
- the syntactic shortcut returns the variable directly when ``φ`` (or its
  negation) is literally a predicate of ``V``.

*How* the cube space is explored is a pluggable
:class:`StrengtheningStrategy`:

- :class:`CubeEnumerationStrategy` — the paper's increasing-length
  enumeration with superset pruning, every verdict one prover decide;
- :class:`AllSatStrategy` — the same enumeration order (so the kept cube
  lists, and hence the printed boolean program, are byte-identical), but
  backed by a :class:`repro.prover.allsat.ModelCatalog`: one incremental
  AllSAT sweep enumerates theory-validated models of ``¬φ ∧ axioms``
  projected onto the candidates, and each stored projection answers all
  the SAT-side cube queries it covers with a tuple comparison instead of
  a solver + theory-check loop.

The strategy also owns the session policy (satellite of the refactor):
whether sessions keep and validate assumption cores.  Throwaway
per-query sessions of the non-incremental baseline never read their
cores, so the strategy opens them with ``want_cores=False`` and the
audited core-validation code path lives only in the place that uses it.
"""

import itertools

from repro.cfront import cast as C
from repro.cfront.exprutils import fold_constants, is_trivially_false, is_trivially_true
from repro.boolprog import ast as B
from repro.prover.allsat import ModelCatalog


class Cube(tuple):
    """A cube as a tuple of (candidate index, polarity) pairs."""

    def contains(self, other):
        return set(other).issubset(set(self))


_KEEP = "keep"
_PRUNE = "prune"


class StrengtheningStrategy:
    """How a :class:`CubeSearch` explores the cube space.

    A strategy owns session opening (incrementality, core policy, model
    catalog) and the enumeration loops behind :meth:`CubeSearch.implicant_cubes`
    and :meth:`CubeSearch.inconsistent_cubes`.  All strategies must
    return identical kept-cube lists — they differ only in how many
    prover decides it takes to get there."""

    name = "?"

    def open_session(self, search, candidates, goal):
        raise NotImplementedError

    def search_implicants(self, search, candidates, phi, limit):
        raise NotImplementedError

    def search_inconsistent(self, search, candidates, limit):
        raise NotImplementedError


class CubeEnumerationStrategy(StrengtheningStrategy):
    """The paper's Section 5.2 search: enumerate cubes in increasing
    length with superset pruning, one prover decide per undecided cube."""

    name = "cubes"

    def _enumerate(self, candidates, limit, classify):
        """The shared pruning enumeration.

        Cubes are enumerated in increasing length; any cube containing an
        already-kept or already-pruned cube is skipped, so the result is
        minimal (prime) cubes only.  ``classify(cube)`` returns a pair
        ``(verdict, record)``: verdict ``_KEEP`` (collect, prune
        supersets), ``_PRUNE`` (prune supersets only), or ``None``
        (undecided — supersets stay eligible), with ``record`` the cube to
        put on the kept/pruned list.  ``record`` is normally the cube
        itself; when the prover reports an assumption core it is the
        smaller sub-cube whose literals alone force the verdict, which
        prunes strictly more supersets without further queries.
        """
        if limit is None or limit > len(candidates):
            limit = len(candidates)
        kept = []
        pruned = []
        for length in range(1, limit + 1):
            for var_indices in itertools.combinations(range(len(candidates)), length):
                for polarities in itertools.product([True, False], repeat=length):
                    cube = Cube(zip(var_indices, polarities))
                    if any(cube.contains(found) for found in kept):
                        continue
                    if any(cube.contains(bad) for bad in pruned):
                        continue
                    verdict, record = classify(cube)
                    if verdict == _KEEP:
                        kept.append(record)
                    elif verdict == _PRUNE:
                        pruned.append(record)
        return kept

    def open_session(self, search, candidates, goal):
        """A cube-decision session over the candidates' concretizations
        against ``goal`` (incremental when enabled and the backend
        supports it; fresh per-cube queries otherwise)."""
        return search.prover.cube_session(
            [candidate.expr for candidate in candidates],
            goal,
            incremental=getattr(search.options, "incremental_cubes", True),
            theory_incremental=getattr(
                search.options, "theory_incremental", True
            ),
        )

    def search_implicants(self, search, candidates, phi, limit):
        # The validity precheck is the empty-cube decision; it shares the
        # cache key with Prover.is_valid(phi) and warms the session whose
        # solver state every subsequent cube of this call reuses.
        implies_phi = self.open_session(search, candidates, phi)
        valid, _ = search._decide(implies_phi, ())
        if valid:
            return [Cube()]
        implies_not_phi = self.open_session(search, candidates, C.negate(phi))
        # The mirror precheck: an unsatisfiable φ is implied only by cubes
        # that are themselves inconsistent — every one a false disjunct, so
        # F(φ) is false without enumerating.  Deciding this up front also
        # keeps the engines aligned: the incremental session would refute
        # each cube with an *empty* assumption core (pruning everything),
        # while a fresh-query baseline keeps the vacuous implicants it
        # happens to test first.
        refuted, _ = search._decide(implies_not_phi, ())
        if refuted:
            return []

        def classify(cube):
            result, record = search._cube_query(implies_phi, cube, "implicant")
            if result:
                return _KEEP, record
            result, record = search._cube_query(implies_not_phi, cube, "refute")
            if result:
                return _PRUNE, record
            return None, None

        return self._enumerate(candidates, limit, classify)

    def search_inconsistent(self, search, candidates, limit):
        session = self.open_session(search, candidates, C.IntLit(0))

        def classify(cube):
            result, record = search._cube_query(session, cube, "inconsistent")
            if result:
                return _KEEP, record
            return None, None

        return self._enumerate(candidates, limit, classify)


class AllSatStrategy(CubeEnumerationStrategy):
    """Cube enumeration backed by AllSAT model catalogs.

    Same enumeration order and prover-decide semantics as
    :class:`CubeEnumerationStrategy` — the outputs are byte-identical —
    but every session carries a :class:`ModelCatalog` whose one-time
    model sweep answers the SAT-side cube queries (the bulk of a
    strengthening call) without touching the solver or the theory
    checker.  Requires the backend's incremental cube capability; the
    ``incremental_cubes`` knob is ignored (there is no fresh-per-query
    variant of a model sweep)."""

    name = "allsat"

    def open_session(self, search, candidates, goal):
        return search.prover.cube_session(
            [candidate.expr for candidate in candidates],
            goal,
            incremental=True,
            catalog=ModelCatalog(),
            theory_incremental=getattr(
                search.options, "theory_incremental", True
            ),
        )


_STRATEGIES = {
    CubeEnumerationStrategy.name: CubeEnumerationStrategy,
    AllSatStrategy.name: AllSatStrategy,
}


def make_strategy(spec):
    """Resolve a strategy: a name from ``C2bpOptions.strengthen``, a
    strategy instance (passes through), or ``None`` (the default)."""
    if isinstance(spec, StrengtheningStrategy):
        return spec
    if spec is None:
        spec = "allsat"
    try:
        return _STRATEGIES[spec]()
    except KeyError:
        raise ValueError(
            "unknown strengthening strategy %r (available: %s)"
            % (spec, ", ".join(sorted(_STRATEGIES)))
        ) from None


class CubeSearch:
    """Shared machinery for F/G computations against one prover."""

    def __init__(self, prover, options, events=None, discharger=None):
        self.prover = prover
        self.options = options
        self.events = events
        # Optional pre-prover query discharger (the interval abstract
        # interpreter): decides a cube implication without any SAT call
        # when cheap arithmetic propagation already settles it.  Sound
        # and strictly weaker than the prover, so enabling it changes
        # prover traffic but never a search outcome.
        self.discharger = discharger
        self.strategy = make_strategy(getattr(options, "strengthen", None))

    def _decide(self, session, cube):
        """One cube implication, tried against the discharger first.
        A discharged decision reports no assumption core — the keep-side
        record is then the cube itself, exactly what a fresh-query
        baseline records.  Discharged answers are tallied under their own
        ``queries_discharged`` stats key, before any prover timer starts,
        so they do not read as zero-time generalize entries in the
        per-query time attribution."""
        if self.discharger is not None:
            exprs = session.cube_exprs(cube)
            if self.discharger.decide(exprs, session.goal):
                self.prover.stats.queries_discharged += 1
                return True, None
        return session.implies_cube(cube)

    def _cube_query(self, session, cube, purpose):
        """One cube decision, reported as a ``cube-test`` event.  Returns
        ``(result, record)`` where ``record`` is the sub-cube to prune
        with: the assumption core when one shrank the cube, else the cube
        itself."""
        result, core = self._decide(session, cube)
        if self.events is not None:
            self.events.emit(
                "cube-test", purpose=purpose, cube_size=len(cube), result=result
            )
        record = Cube(core) if core is not None else cube
        return result, record

    def implicant_cubes(self, candidates, phi, max_length=None):
        """All prime implicant cubes c over ``candidates`` with E(c) => φ.

        Returns a list of :class:`Cube`; the empty cube (meaning "true
        implies φ", i.e. φ is valid over the candidates) is returned as the
        single result ``[Cube()]``.
        """
        phi = fold_constants(phi)
        if is_trivially_true(phi):
            return [Cube()]
        if is_trivially_false(phi):
            return []
        if self.options.syntactic_heuristics:
            shortcut = self._syntactic_shortcut(candidates, phi)
            if shortcut is not None:
                return shortcut
        limit = max_length
        if limit is None:
            limit = self.options.max_cube_length
        return self.strategy.search_implicants(self, candidates, phi, limit)

    def _syntactic_shortcut(self, candidates, phi):
        for index, candidate in enumerate(candidates):
            if candidate.expr == phi:
                return [Cube([(index, True)])]
            if C.negate(candidate.expr) == phi or candidate.expr == C.negate(phi):
                return [Cube([(index, False)])]
        return None

    # -- boolean program expressions ---------------------------------------------

    def cubes_to_bexpr(self, candidates, cubes):
        """The boolean program expression for a disjunction of cubes."""
        if not cubes:
            return B.BConst(False)
        disjuncts = []
        for cube in cubes:
            literals = []
            for index, polarity in cube:
                var = B.BVar(candidates[index].name)
                literals.append(var if polarity else B.BNot(var))
            disjuncts.append(B.bool_and(literals))
        return B.bool_or(disjuncts)

    def f_expr(self, candidates, phi):
        """``F_V(φ)`` as a boolean program expression."""
        phi = fold_constants(phi)
        if self.options.distribute_f and isinstance(phi, C.BinOp):
            # F distributes losslessly through && and lossily through ||.
            if phi.op == "&&":
                return B.bool_and(
                    [self.f_expr(candidates, phi.left), self.f_expr(candidates, phi.right)]
                )
            if phi.op == "||":
                return B.bool_or(
                    [self.f_expr(candidates, phi.left), self.f_expr(candidates, phi.right)]
                )
        cubes = self.implicant_cubes(candidates, phi)
        return self.cubes_to_bexpr(candidates, cubes)

    def g_expr(self, candidates, phi):
        """``G_V(φ) = ¬F_V(¬φ)`` as a boolean program expression."""
        return B.bool_not(self.f_expr(candidates, C.negate(phi)))

    # -- the enforce invariant (Section 5.1) ------------------------------------------

    def inconsistent_cubes(self, candidates, max_length):
        """Minimal cubes whose concretizations are unsatisfiable — the
        ``F_V(false)`` computation, done directly (the constant-folding
        shortcuts of :meth:`implicant_cubes` would collapse it)."""
        return self.strategy.search_inconsistent(self, candidates, max_length)

    def enforce_expr(self, candidates):
        """``Ω = ¬F_V(false)``: rules out predicate valuations whose
        concretizations are unsatisfiable (e.g. x==1 and x==2 both true)."""
        cubes = self.inconsistent_cubes(
            candidates, self.options.enforce_cube_length
        )
        if not cubes:
            return None
        return B.bool_not(self.cubes_to_bexpr(candidates, cubes))
