"""Statistics collected during abstraction (the Tables 1/2 columns).

:class:`C2bpStats` is one section of the run-wide
:class:`repro.engine.StatsRegistry` (registered as ``"c2bp"`` by
:class:`repro.core.abstractor.C2bp`); its prover counters are *deltas
for that run*, so they stay meaningful when the CEGAR loop reuses one
prover across iterations.
"""

import time


class C2bpStats:
    """Counters for one C2bp run."""

    def __init__(self):
        self.program_statements = 0
        self.predicate_count = 0
        self.prover_calls = 0
        self.prover_queries = 0
        self.prover_cache_hits = 0
        self.assignments_abstracted = 0
        self.assignments_skipped_unchanged = 0
        self.calls_abstracted = 0
        self.conditionals_abstracted = 0
        self.seconds = 0.0
        self.per_procedure = {}

    def snapshot(self):
        return {
            "program_statements": self.program_statements,
            "predicates": self.predicate_count,
            "prover_calls": self.prover_calls,
            "prover_queries": self.prover_queries,
            "prover_cache_hits": self.prover_cache_hits,
            "assignments": self.assignments_abstracted,
            "assignments_skipped": self.assignments_skipped_unchanged,
            "calls": self.calls_abstracted,
            "conditionals": self.conditionals_abstracted,
            "seconds": self.seconds,
        }

    def __repr__(self):
        return "C2bpStats(%r)" % (self.snapshot(),)


class Timer:
    """Context manager adding elapsed wall-clock time to an attribute."""

    def __init__(self, stats, attribute="seconds"):
        self.stats = stats
        self.attribute = attribute

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = time.perf_counter() - self._start
        setattr(
            self.stats, self.attribute, getattr(self.stats, self.attribute) + elapsed
        )
        return False
