"""Configuration knobs for C2bp (the Section 5 extensions/optimizations).

Every optimization can be toggled off so the ablation benchmarks can
measure its effect on the number of theorem prover calls; defaults match
the configuration the paper reports results with.
"""

import dataclasses


@dataclasses.dataclass
class C2bpOptions:
    #: Maximum cube length considered by the F/G search.  The paper
    #: (Section 5.2) notes that "setting k to 3 provides the needed
    #: precision in most cases"; ``None`` means unbounded (exponential).
    max_cube_length: int = 3

    #: Syntactic cone-of-influence restriction of the candidate variable
    #: set before cube enumeration (optimization three).
    cone_of_influence: bool = True

    #: Skip updating variables whose weakest precondition is syntactically
    #: unchanged (optimization two).
    skip_unchanged: bool = True

    #: Return the variable directly when the query is (the negation of) a
    #: predicate in E, without prover calls (optimization four).
    syntactic_heuristics: bool = True

    #: Cache theorem prover and alias queries (optimization five).
    cache_prover: bool = True

    #: Recursively distribute F over && and || (precision-losing through
    #: ||, Section 5.2 last paragraph).
    distribute_f: bool = False

    #: Compute and attach the per-procedure ``enforce`` invariant
    #: Omega = not F(false) (Section 5.1).
    compute_enforce: bool = True

    #: Maximum cube length used for the enforce computation.  Must keep
    #: pace with the predicate correlations the abstraction relies on (the
    #: syntactic shortcut "b stands for phi" is exact only below Omega);
    #: the paper computes Omega = not F(false) with the same k as F.
    enforce_cube_length: int = 3

    #: Use the points-to analysis to prune Morris disjuncts (Section 4.2).
    use_alias_analysis: bool = True

    #: Invalidate (rather than strengthen) a predicate whose weakest
    #: precondition dereferences a constant address — e.g. after
    #: ``prev = NULL`` the predicate ``prev->val > v`` mentions ``0->val``
    #: and is "undefined ... and thus invalidated" (Section 2.1).
    invalidate_constant_derefs: bool = True

    #: Answer the cube queries of one F/G strengthening call on a single
    #: persistent SAT solver via assumption literals (encode once, reuse
    #: learned clauses and theory lemmas across cubes) instead of a fresh
    #: encode-and-solve per cube.  Off is the pre-session baseline.
    #: Only consulted by the ``cubes`` strengthening strategy; ``allsat``
    #: always runs incrementally (a model sweep has no per-query form).
    incremental_cubes: bool = True

    #: Strengthening strategy for the F/G cube searches
    #: (:mod:`repro.core.cubes`): ``"allsat"`` (the default — the cube
    #: enumeration backed by an AllSAT model catalog that answers the
    #: SAT-side cube queries from swept, theory-validated model
    #: projections) or ``"cubes"`` (every verdict a prover decide; the
    #: measured baseline).  The kept cubes, and hence the printed boolean
    #: program, are byte-identical either way.
    strengthen: str = "allsat"

    #: Answer the theory consistency checks of one cube session on a
    #: persistent :class:`repro.prover.theory.IncrementalTheory` engine
    #: (difference-bound delta closure for the arithmetic fragment, a
    #: cached reference pipeline for the rest) instead of a stateless
    #: check per query.  Verdicts are identical either way (the fuzz
    #: oracle's ``theory-divergence`` check pins this); off is the
    #: ``--no-theory-incremental`` escape hatch and benchmark baseline.
    theory_incremental: bool = True

    #: Worker processes for statement abstraction; 0 (the default) picks
    #: automatically from ``os.cpu_count()`` when the
    #: :class:`repro.engine.EngineContext` starts (1 on single-core
    #: hosts, capped at :data:`repro.core.pool.MAX_AUTO_JOBS` elsewhere);
    #: 1 runs serially in-process.  The translated program is identical
    #: for any job count — parallelism only changes wall-clock time.
    jobs: int = 0

    #: Run Bebop on the legacy engine (transfer BDDs re-derived at every
    #: worklist visit, full path-edge propagation) instead of the fast
    #: path (compiled transfer relations + frontier propagation).  Kept
    #: for differential testing and as the benchmark baseline; invariants
    #: are identical either way.
    bebop_legacy: bool = False

    #: Share one BDD manager and the compiled transfer relations of
    #: unchanged procedures across CEGAR iterations (fast path only).
    bebop_reuse: bool = True

    #: Master switch for the static-analysis subsystem
    #: (:mod:`repro.analysis`).  Off reproduces the pre-analysis pipeline
    #: exactly: no liveness pruning, no interval discharge, no BP DCE,
    #: no cross-iteration abstraction reuse.
    use_analysis: bool = True

    #: Backward live-predicate analysis: C2bp emits ``unknown()`` for
    #: (statement, predicate) slots whose value cannot reach any
    #: observation point, skipping their cube searches, and the CEGAR
    #: loop reuses translations of statements the new predicates cannot
    #: touch.  Requires ``use_analysis``.
    live_predicates: bool = True

    #: Interval abstract interpretation: discharge cube validity queries
    #: the intervals already decide before any prover call, and export
    #: loop-head invariants as candidate predicates when Newton stalls.
    #: Requires ``use_analysis``.
    intervals: bool = True

    #: Boolean-program dead-variable elimination before model checking
    #: (never-read variables and their assignments are removed; verdicts
    #: and label invariants over surviving variables are unchanged).
    #: Requires ``use_analysis``.
    bp_dce: bool = True

    #: Root directory of the content-addressed persistent cache
    #: (:class:`repro.serve.PersistentStore`).  ``None`` (the default)
    #: keeps every cache in-process, exactly the pre-serve behaviour;
    #: a path makes prover answers, statement abstractions, and compiled
    #: Bebop tables survive the process (``--cache-dir``).
    cache_dir: str = None

    #: Master switch for the disk store when ``cache_dir`` is set
    #: (``--no-persistent-cache`` turns a configured directory off
    #: without losing the path from the configuration).
    persistent_cache: bool = True

    #: LRU byte cap for the persistent store; ``None`` means uncapped.
    #: When a write pushes the store past the cap, least-recently-used
    #: records are evicted down to 90% of it (``--cache-max-bytes``).
    cache_max_bytes: int = None

    #: Run :func:`repro.boolprog.validate.validate_bool_program` on the
    #: translated program before returning it (``--validate-bp``), so a
    #: malformed ``BP(P, E)`` fails at generation time instead of
    #: surfacing as a downstream Bebop error.  The fuzz oracle always
    #: enables this.
    validate_output: bool = False

    #: Bit-precisely confirm Newton's feasible counterexample paths
    #: (:mod:`repro.bmc.confirm`): extract a concrete input witness when
    #: the straight-line path is SAT at ``bmc_width`` bits, and flag the
    #: disagreement (``bmc_refuted``) when it is UNSAT.  Off by default —
    #: feasibility verdicts themselves never change.
    bmc_confirm: bool = False

    #: When CEGAR stalls (no new predicates, interval fallback exhausted),
    #: run the bounded model checker instead of giving a bare "unknown":
    #: a replay-validated counterexample upgrades the verdict to
    #: ``unsafe``; otherwise the result records a ``safe-up-to-k``
    #: bounded verdict (``--no-bmc-fallback`` restores the bare unknown).
    bmc_fallback: bool = True

    #: Unwinding depth for BMC runs launched from inside the pipeline
    #: (confirm and CEGAR fallback): the bound on back-edge traversals
    #: and recursive re-entries per function instance.
    bmc_depth: int = 16

    #: Bit width of the two's-complement integers in those BMC runs.
    bmc_width: int = 16

    def copy(self, **overrides):
        return dataclasses.replace(self, **overrides)
