"""The C2bp translation: from a C program and predicates to a boolean
program (Sections 4.3-4.5, 5.1, 5.2).

The tool operates in two passes.  Pass one computes every procedure's
signature (:mod:`repro.core.signatures`).  Pass two translates each
procedure in isolation, statement by statement:

- assignments become parallel assignments of
  ``choose(F(WP(s, φ)), F(WP(s, ¬φ)))`` to the affected boolean variables;
- conditionals become nondeterministic branches whose arms open with
  ``assume(G(guard))`` / ``assume(G(¬guard))``;
- gotos and labels are copied verbatim;
- calls follow :mod:`repro.core.calls`;
- ``assert(e)`` becomes ``assert(¬G(¬e))`` — it fails in the abstraction
  whenever some concrete state allowed by the current predicates could
  fail, which is the sound (may-overreport) direction SLAM refines away;
- each procedure carries the ``enforce`` data invariant ``¬F(false)``.

Statement abstraction is embarrassingly parallel: each top-level
statement's translation depends only on the immutable inputs (program,
predicates, signatures, points-to facts, options) — the only
cross-statement state is the call-site temporary counter (renamed
deterministically afterwards) and the prover cache (a pure accelerator).
With ``options.jobs > 1`` the statements of all procedures plus the
per-procedure ``enforce`` computations become tasks for the engine
context's persistent :class:`repro.core.pool.StatementPool`: workers are
forked once and re-targeted per run with a configure message, so CEGAR
iterations reuse warm worker processes (and their prover caches) instead
of paying a fork per abstraction.  The translated pieces, prover
statistics, learned cache entries, analysis counters, process-wide
SAT/CNF construction counters, and events are merged back in task
order, so the output program, the stats totals, and the event stream
are identical to a serial run.
"""

from repro.cfront import cast as C
from repro.cfront.pretty import pretty_stmt
from repro.boolprog import ast as B
from repro.pointers import PointsToAnalysis
from repro.analysis import ProgramAnalyses, TouchOracle, ensure_analysis_stats
from repro.analysis.modref import location_keyset
from repro.core.calls import abstract_call
from repro.core.cubes import CubeSearch
from repro.core.signatures import compute_signatures
from repro.core.stats import C2bpStats, Timer
from repro.engine import EngineContext
from repro.prover import cnf as cnf_module
from repro.prover import sat as sat_module


class C2bpError(Exception):
    pass


def _has_constant_deref(expr):
    """Whether a WP result dereferences a constant address (e.g. ``0->val``
    after substituting NULL into a pointer predicate)."""
    from repro.cfront.exprutils import walk

    for node in walk(expr):
        if isinstance(node, C.Deref) and isinstance(node.pointer, C.IntLit):
            return True
        if isinstance(node, C.Index) and isinstance(node.base, C.IntLit):
            return True
    return False


class C2bp:
    """One abstraction run: ``BP(P, E)`` plus statistics."""

    def __init__(
        self,
        program,
        predicates,
        options=None,
        prover=None,
        points_to=None,
        context=None,
        reuse=None,
    ):
        self.context = EngineContext.ensure(context, options=options, prover=prover)
        # Whether this run created its own context (the legacy keyword
        # shim): then nobody else can reuse (or close) the worker pool, so
        # run() tears it down itself after a parallel run.
        self._private_context = context is None
        self.program = program
        self.predicates = predicates
        self.options = self.context.options
        self.prover = self.context.prover
        self.points_to = points_to or PointsToAnalysis(program)
        self.signatures = compute_signatures(program, predicates)
        self.analysis = None
        if getattr(self.options, "use_analysis", True):
            self.analysis = ProgramAnalyses(
                program,
                predicates,
                self.signatures,
                self.options,
                self.points_to,
                ensure_analysis_stats(self.context),
            )
        # Cross-iteration statement-abstraction cache (CEGAR hands one
        # in); only the serial path consults it.
        self.reuse = reuse if self.analysis is not None else None
        if (
            self.reuse is None
            and self.analysis is not None
            and getattr(self.context, "store", None) is not None
            and (getattr(self.options, "jobs", 1) or 1) <= 1
        ):
            # A persistent store is configured: even a one-shot run reads
            # and populates the cross-run statement cache (the warm-run
            # fast path).  Imported lazily — repro.serve sits above core.
            from repro.serve import PersistentAbstractionReuse

            self.reuse = PersistentAbstractionReuse(
                self.context.store,
                self.options,
                stats=ensure_analysis_stats(self.context),
            )
        self.search = CubeSearch(
            self.prover,
            self.options,
            events=self.context.events,
            discharger=self.analysis.discharger if self.analysis else None,
        )
        self.stats = C2bpStats()
        self.context.stats.register("c2bp", self.stats)
        self._keysets = {}  # predicate name -> canonical location keyset
        # (procedure name, temp name) -> meaning expression E(t) for the
        # call-site temporaries of Section 4.5.3 (used by trace replay).
        self.temp_meanings = {}

    def predicate_keyset(self, predicate):
        """The canonical location keyset of a cone candidate, computed
        once per distinct expression.  Keyed by expression identity, not
        candidate name: call-site temporaries reuse names like ``__r0``
        across procedures while standing for different meanings."""
        entry = self._keysets.get(id(predicate.expr))
        if entry is None:
            entry = (predicate.expr, location_keyset(predicate.expr))
            self._keysets[id(predicate.expr)] = entry
        return entry[1]

    def run(self):
        """Build and return the boolean program ``BP(P, E)``."""
        jobs = getattr(self.options, "jobs", 1) or 1
        if jobs > 1:
            pool = self.context.worker_pool(jobs)
            if pool is not None:  # no fork on this platform: run serially
                try:
                    return self._run_parallel(pool)
                finally:
                    if self._private_context:
                        self.context.close()
        if self.reuse is not None:
            return self._run_with_reuse()
        started_calls = self.prover.stats.calls
        started_queries = self.prover.stats.queries
        started_hits = self.prover.stats.cache_hits
        with self.context.phase("c2bp"), Timer(self.stats):
            boolean_program = B.BProgram()
            boolean_program.globals = [p.name for p in self.predicates.globals]
            for func in self.program.defined_functions():
                before = self.prover.stats.calls
                procedure = _ProcedureAbstractor(self, func).abstract()
                boolean_program.add_procedure(procedure)
                delta = self.prover.stats.calls - before
                self.stats.per_procedure[func.name] = delta
                self.context.events.emit(
                    "c2bp-procedure", procedure=func.name, prover_calls=delta
                )
            self.stats.program_statements = self.program.statement_count()
            self.stats.predicate_count = len(self.predicates)
            self.stats.prover_calls = self.prover.stats.calls - started_calls
            self.stats.prover_queries = self.prover.stats.queries - started_queries
            self.stats.prover_cache_hits = (
                self.prover.stats.cache_hits - started_hits
            )
        self._maybe_validate(boolean_program)
        return boolean_program

    def _run_with_reuse(self):
        """The serial CEGAR path with a cross-iteration statement cache.

        Assembly mirrors ``_run_parallel``: statements are translated
        (or fetched) with per-statement temp prefixes, then merged with
        the same first-use renumbering — so the output is byte-identical
        to a fresh serial run, while statements whose cache key is
        unchanged since the previous iteration cost zero prover calls.
        """
        started_calls = self.prover.stats.calls
        started_queries = self.prover.stats.queries
        started_hits = self.prover.stats.cache_hits
        with self.context.phase("c2bp"), Timer(self.stats):
            boolean_program = B.BProgram()
            boolean_program.globals = [p.name for p in self.predicates.globals]
            for func in self.program.defined_functions():
                before = self.prover.stats.calls
                scope = self.predicates.in_scope(func.name)
                enforce = None
                if self.options.compute_enforce and scope:
                    key = self.analysis.enforce_key(func.name)
                    hit, cached = self.reuse.fetch_enforce(key)
                    if hit:
                        enforce = cached
                    else:
                        enforce = self.search.enforce_expr(scope)
                        self.reuse.store_enforce(key, enforce)
                self.analysis.compute_liveness(func.name, enforce)
                parts = []
                for index, stmt in enumerate(func.body):
                    stmt_key = self.analysis.statement_key(func, index, stmt)
                    payload = self.reuse.fetch(stmt_key)
                    if payload is None:
                        payload = self._translate_statement(func, index, stmt)
                        self.reuse.store(
                            stmt_key,
                            payload["stmts"],
                            payload["temps"],
                            payload["temp_meanings"],
                            payload["c2bp"],
                        )
                    else:
                        for name, value in payload["c2bp"].items():
                            setattr(
                                self.stats, name, getattr(self.stats, name) + value
                            )
                    parts.append(payload)
                body = []
                renamed_temps = []
                mapping = {}
                for part in parts:
                    for site_name in part["temps"]:
                        final_name = "__r%d" % len(renamed_temps)
                        mapping[site_name] = final_name
                        renamed_temps.append(final_name)
                    body.extend(part["stmts"])
                    for site_name, meaning in part["temp_meanings"]:
                        self.temp_meanings[(func.name, mapping[site_name])] = meaning
                if mapping:
                    B.rename_stmt_variables(body, mapping)
                signature = self.signatures[func.name]
                local_predicates = self.predicates.for_procedure(func.name)
                formal_names = [p.name for p in signature.formal_predicates]
                local_names = [
                    p.name
                    for p in local_predicates
                    if p not in signature.formal_predicates
                ] + renamed_temps
                boolean_program.add_procedure(
                    B.BProcedure(
                        func.name,
                        formal_names,
                        local_names,
                        len(signature.return_predicates),
                        body,
                        enforce,
                    )
                )
                delta = self.prover.stats.calls - before
                self.stats.per_procedure[func.name] = delta
                self.context.events.emit(
                    "c2bp-procedure", procedure=func.name, prover_calls=delta
                )
            self.stats.program_statements = self.program.statement_count()
            self.stats.predicate_count = len(self.predicates)
            self.stats.prover_calls = self.prover.stats.calls - started_calls
            self.stats.prover_queries = self.prover.stats.queries - started_queries
            self.stats.prover_cache_hits = (
                self.prover.stats.cache_hits - started_hits
            )
        self._maybe_validate(boolean_program)
        return boolean_program

    _COUNTER_FIELDS = (
        "assignments_abstracted",
        "assignments_skipped_unchanged",
        "calls_abstracted",
        "conditionals_abstracted",
    )

    def _translate_statement(self, func, index, stmt):
        """Translate one top-level statement in its own temp namespace
        (``__rc<index>_``) and package it for the reuse cache."""
        counters_before = {
            name: getattr(self.stats, name) for name in self._COUNTER_FIELDS
        }
        meanings_before = set(self.temp_meanings)
        proc_abs = _ProcedureAbstractor(self, func, temp_prefix="__rc%d_" % index)
        translated = proc_abs._abstract_stmt(stmt)
        if stmt.labels:
            if not translated:
                translated = [B.BSkip()]
            translated[0].labels = list(stmt.labels) + list(translated[0].labels)
        temp_meanings = []
        for key in list(self.temp_meanings):
            if key not in meanings_before:
                temp_meanings.append((key[1], self.temp_meanings.pop(key)))
        return {
            "stmts": translated,
            "temps": list(proc_abs._extra_locals),
            "temp_meanings": temp_meanings,
            "c2bp": {
                name: getattr(self.stats, name) - counters_before[name]
                for name in self._COUNTER_FIELDS
            },
        }

    def _maybe_validate(self, boolean_program):
        """The ``--validate-bp`` debug gate: reject a malformed translation
        here, where the C2bp inputs are still on hand, rather than letting
        Bebop trip over it later."""
        if getattr(self.options, "validate_output", False):
            from repro.boolprog.validate import validate_bool_program

            validate_bool_program(boolean_program)

    def _run_parallel(self, pool):
        """The ``--jobs N`` path: fan top-level statements and per-procedure
        enforce computations out to the context's persistent worker pool,
        then merge the pieces and every accounting delta."""
        started_calls = self.prover.stats.calls
        started_queries = self.prover.stats.queries
        started_hits = self.prover.stats.cache_hits
        with self.context.phase("c2bp"), Timer(self.stats):
            boolean_program = B.BProgram()
            boolean_program.globals = [p.name for p in self.predicates.globals]
            funcs = list(self.program.defined_functions())
            # With liveness on, Ω must be known before any statement task
            # runs (its variables anchor the always-live set), so the
            # enforce computations happen here, in the parent — the Ω
            # expressions ship to the workers in the configure payload,
            # which replay compute_liveness to identical facts instead of
            # racing on enforce tasks.
            precomputed = {}
            if self.analysis is not None and self.analysis.live_enabled:
                for func in funcs:
                    before = self.prover.stats.calls
                    enforce = None
                    scope = self.predicates.in_scope(func.name)
                    if self.options.compute_enforce and scope:
                        enforce = self.search.enforce_expr(scope)
                    self.analysis.compute_liveness(func.name, enforce)
                    precomputed[func.name] = (
                        enforce,
                        self.prover.stats.calls - before,
                    )
            tasks = []
            for func in funcs:
                for index in range(len(func.body)):
                    tasks.append(("stmt", func.name, index))
                if (
                    func.name not in precomputed
                    and self.options.compute_enforce
                    and self.predicates.in_scope(func.name)
                ):
                    tasks.append(("enforce", func.name, -1))
            results = []
            if tasks:
                pool.configure(
                    {
                        "program": self.program,
                        "predicates": self.predicates,
                        "options": self.options.copy(jobs=1),
                        "enforce": {
                            name: enforce
                            for name, (enforce, _) in precomputed.items()
                        },
                        # Only what the workers have not seen yet: the
                        # pool remembers how much of the (append-only)
                        # parent cache previous configures shipped.
                        "cache": self.prover.cache.export_since(
                            pool.shipped_cache_watermark
                        ),
                    }
                )
                pool.shipped_cache_watermark = len(self.prover.cache)
                results = pool.run(tasks)
            merged = {
                func.name: {"parts": [], "enforce": None, "calls": 0}
                for func in funcs
            }
            for func_name, (enforce, calls) in precomputed.items():
                merged[func_name]["enforce"] = enforce
                merged[func_name]["calls"] += calls
            for task, result in zip(tasks, results):
                kind, func_name, _ = task
                self.prover.stats.merge(result["prover"])
                self.prover.cache.absorb(result["cache"])
                # Fold the workers' read-only store accounting into the
                # parent's store (writes already happen here via absorb).
                store_delta = result.get("store")
                if store_delta and getattr(self.context, "store", None) is not None:
                    self.context.store.merge_counters(store_delta)
                # Fold the workers' SAT/CNF construction counters into the
                # process-wide tallies, so benchmark rows measured under
                # --jobs report real work instead of a blackout.
                construction = result.get("construction")
                if construction:
                    for key, value in construction["sat"].items():
                        sat_module.COUNTERS[key] += value
                    for key, value in construction["cnf"].items():
                        cnf_module.COUNTERS[key] += value
                for name, value in result["c2bp"].items():
                    setattr(self.stats, name, getattr(self.stats, name) + value)
                if self.analysis is not None:
                    for name, value in result.get("analysis", {}).items():
                        setattr(
                            self.analysis.stats,
                            name,
                            getattr(self.analysis.stats, name) + value,
                        )
                for event in result["events"]:
                    data = {
                        key: value
                        for key, value in event.items()
                        if key not in ("kind", "t")
                    }
                    self.context.events.emit(event["kind"], **data)
                merged[func_name]["calls"] += result["prover"]["calls"]
                if kind == "stmt":
                    merged[func_name]["parts"].append(result)
                else:
                    merged[func_name]["enforce"] = result["enforce"]
            for func in funcs:
                entry = merged[func.name]
                body = []
                renamed_temps = []
                mapping = {}
                for part in entry["parts"]:
                    # Worker temp names are task-namespaced (__rw<stmt>_<k>);
                    # renumber to the serial __r<N> scheme in first-use order.
                    for worker_name in part["temps"]:
                        final_name = "__r%d" % len(renamed_temps)
                        mapping[worker_name] = final_name
                        renamed_temps.append(final_name)
                    body.extend(part["stmts"])
                    for (_, worker_name), meaning in part["temp_meanings"]:
                        self.temp_meanings[(func.name, mapping[worker_name])] = (
                            meaning
                        )
                if mapping:
                    B.rename_stmt_variables(body, mapping)
                signature = self.signatures[func.name]
                local_predicates = self.predicates.for_procedure(func.name)
                formal_names = [p.name for p in signature.formal_predicates]
                local_names = [
                    p.name
                    for p in local_predicates
                    if p not in signature.formal_predicates
                ] + renamed_temps
                boolean_program.add_procedure(
                    B.BProcedure(
                        func.name,
                        formal_names,
                        local_names,
                        len(signature.return_predicates),
                        body,
                        entry["enforce"],
                    )
                )
                self.stats.per_procedure[func.name] = entry["calls"]
                self.context.events.emit(
                    "c2bp-procedure",
                    procedure=func.name,
                    prover_calls=entry["calls"],
                )
            self.stats.program_statements = self.program.statement_count()
            self.stats.predicate_count = len(self.predicates)
            self.stats.prover_calls = self.prover.stats.calls - started_calls
            self.stats.prover_queries = self.prover.stats.queries - started_queries
            self.stats.prover_cache_hits = (
                self.prover.stats.cache_hits - started_hits
            )
        self._maybe_validate(boolean_program)
        return boolean_program

    def may_alias(self, func_name):
        """A two-location may-alias oracle bound to one procedure's scope,
        or None (assume-everything) when alias pruning is disabled."""
        if not self.options.use_alias_analysis:
            return None
        return lambda a, b: self.points_to.may_alias(a, b, func_name)


class _ProcedureAbstractor:
    """Pass two for a single procedure."""

    def __init__(self, parent, func, temp_prefix="__r"):
        self.parent = parent
        self.func = func
        self.signature = parent.signatures[func.name]
        # Scope = E_G followed by E_R (order is stable for output).
        self.scope_predicates = parent.predicates.in_scope(func.name)
        self.local_predicates = parent.predicates.for_procedure(func.name)
        self._may_alias = parent.may_alias(func.name)
        analysis = parent.analysis
        if analysis is not None:
            self._toucher = analysis.toucher(func.name)
            # Solved facts if liveness already ran for this procedure
            # (reuse and parallel paths solve it up front); the serial
            # path fills this in from abstract() once Ω is known.
            self._liveness = analysis.liveness(func.name)
        else:
            self._toucher = TouchOracle(self._may_alias)
            self._liveness = None
        self._temp_counter = 0
        self._temp_prefix = temp_prefix
        self._extra_locals = []

    # -- conveniences shared with the call translator --------------------------

    def fresh_temp_name(self):
        name = "%s%d" % (self._temp_prefix, self._temp_counter)
        self._temp_counter += 1
        self._extra_locals.append(name)
        return name

    def f_expr(self, candidates, phi):
        return self.parent.search.f_expr(self._cone(candidates, phi), phi)

    def g_expr(self, phi):
        candidates = self._cone(self.scope_predicates, C.negate(phi))
        return self.parent.search.g_expr(candidates, phi)

    def make_choose(self, pos, neg):
        """``choose(pos, neg)`` with the Section 4.3 constant folds."""
        if isinstance(pos, B.BConst) and pos.value:
            return B.BConst(True)
        if isinstance(neg, B.BConst) and neg.value:
            # neg always holds, so the result is exactly pos (which, when
            # constantly false, folds to the constant 0).
            return pos
        if isinstance(pos, B.BConst) and isinstance(neg, B.BConst):
            return B.BUnknown()  # choose(false, false)
        if neg == B.bool_not(pos):
            # choose(e, !e) is exactly e — this is how copying assignments
            # like prev = curr come out as {prev==NULL} = {curr==NULL}.
            return pos
        return B.BChoose(pos, neg)

    def make_choose_for(self, phi):
        """``choose(F(φ), F(¬φ))`` over the full scope."""
        pos = self.f_expr(self.scope_predicates, phi)
        neg = self.f_expr(self.scope_predicates, C.negate(phi))
        return self.make_choose(pos, neg)

    # -- cone of influence (Section 5.2, optimization three) ----------------------

    def _cone(self, candidates, phi):
        if not self.parent.options.cone_of_influence:
            return list(candidates)
        # Canonical-text keysets plus the memoized TouchOracle replace the
        # old pairwise location loop: text equality decides the common
        # case without any alias query, and each distinct location pair is
        # asked of the points-to oracle at most once per procedure.
        relevant = dict(location_keyset(phi))
        chosen = set()
        remaining = list(candidates)
        changed = True
        while changed:
            changed = False
            still_remaining = []
            for candidate in remaining:
                keyset = self.parent.predicate_keyset(candidate)
                if self._toucher.touch(keyset, relevant):
                    chosen.add(id(candidate))
                    relevant.update(keyset)
                    changed = True
                else:
                    still_remaining.append(candidate)
            remaining = still_remaining
        # Preserve the original candidate order for deterministic output.
        return [c for c in candidates if id(c) in chosen]

    # -- statement translation ---------------------------------------------------

    def _compute_enforce(self):
        if self.parent.options.compute_enforce and self.scope_predicates:
            return self.parent.search.enforce_expr(self.scope_predicates)
        return None

    def abstract(self):
        analysis = self.parent.analysis
        enforce = None
        enforce_done = False
        if analysis is not None and analysis.live_enabled:
            # Liveness anchors the predicates Ω reads as always-live, so Ω
            # is computed before the body.  The reorder is answer-neutral:
            # both are independent cube searches against the same cached
            # prover.
            enforce = self._compute_enforce()
            enforce_done = True
            self._liveness = analysis.compute_liveness(self.func.name, enforce)
        body = self._abstract_body(self.func.body)
        if not enforce_done:
            enforce = self._compute_enforce()
        formal_names = [p.name for p in self.signature.formal_predicates]
        local_names = [
            p.name
            for p in self.local_predicates
            if p not in self.signature.formal_predicates
        ] + self._extra_locals
        return B.BProcedure(
            self.func.name,
            formal_names,
            local_names,
            len(self.signature.return_predicates),
            body,
            enforce,
        )

    def _abstract_body(self, stmts):
        out = []
        for stmt in stmts:
            translated = self._abstract_stmt(stmt)
            if stmt.labels:
                if not translated:
                    translated = [B.BSkip()]
                translated[0].labels = list(stmt.labels) + list(translated[0].labels)
            out.extend(translated)
        return out

    def _abstract_stmt(self, stmt):
        comment = pretty_stmt(stmt).strip().split("\n")[0]
        if isinstance(stmt, C.Skip):
            skip = B.BSkip()
            skip.source_sid = stmt.sid
            return [skip]
        if isinstance(stmt, C.Goto):
            goto = B.BGoto(stmt.label)
            goto.source_sid = stmt.sid
            return [goto]
        if isinstance(stmt, C.Assign):
            return self._abstract_assign(stmt, comment)
        if isinstance(stmt, C.CallStmt):
            self.parent.stats.calls_abstracted += 1
            return abstract_call(self, stmt)
        if isinstance(stmt, C.If):
            return self._abstract_if(stmt, comment)
        if isinstance(stmt, C.While):
            return self._abstract_while(stmt, comment)
        if isinstance(stmt, C.Assume):
            assume = B.BAssume(self.g_expr(stmt.cond))
            assume.source_sid = stmt.sid
            assume.comment = comment
            return [assume]
        if isinstance(stmt, C.Assert):
            check = B.BAssert(B.bool_not(self.g_expr(C.negate(stmt.cond))))
            check.source_sid = stmt.sid
            check.comment = comment
            return [check]
        if isinstance(stmt, C.Return):
            values = [
                B.BVar(p.name) for p in self.signature.return_predicates
            ]
            ret = B.BReturn(values)
            ret.source_sid = stmt.sid
            ret.comment = comment
            return [ret]
        raise C2bpError(
            "cannot abstract statement %r (not in intermediate form)"
            % type(stmt).__name__
        )

    def _abstract_assign(self, stmt, comment):
        from repro.core.wp import weakest_precondition, wp_unchanged

        self.parent.stats.assignments_abstracted += 1
        options = self.parent.options
        targets, values = [], []
        for predicate in self.scope_predicates:
            if options.skip_unchanged and wp_unchanged(
                stmt.lhs, stmt.rhs, predicate.expr, self._may_alias
            ):
                self.parent.stats.assignments_skipped_unchanged += 1
                continue
            if self._liveness is not None and not self._liveness.is_live(
                stmt, predicate.name
            ):
                # Dead slot: the predicate's value after this statement
                # cannot reach any observation point, so unknown() (which
                # over-approximates any choose) replaces the cube search.
                self.parent.analysis.stats.predicates_skipped_dead += 1
                targets.append(predicate.name)
                values.append(B.BUnknown())
                continue
            wp_pos = weakest_precondition(
                stmt.lhs, stmt.rhs, predicate.expr, self._may_alias
            )
            wp_neg = weakest_precondition(
                stmt.lhs, stmt.rhs, C.negate(predicate.expr), self._may_alias
            )
            if options.invalidate_constant_derefs and (
                _has_constant_deref(wp_pos) or _has_constant_deref(wp_neg)
            ):
                # The substitution produced a dereference of a constant
                # (e.g. WP(prev = NULL, prev->val > v) mentions 0->val):
                # the predicate's value is undefined after the statement,
                # so it is invalidated (Section 2.1's unknown() case).
                targets.append(predicate.name)
                values.append(B.BUnknown())
                continue
            pos = self.f_expr(self.scope_predicates, wp_pos)
            neg = self.f_expr(self.scope_predicates, wp_neg)
            targets.append(predicate.name)
            values.append(self.make_choose(pos, neg))
        if not targets:
            skip = B.BSkip()
            skip.source_sid = stmt.sid
            skip.comment = comment
            return [skip]
        assign = B.BAssign(targets, values)
        assign.source_sid = stmt.sid
        assign.comment = comment
        return [assign]

    def _guard_assume(self, cond, stmt, comment):
        """``assume(G(cond))`` — omitted entirely when G gives no
        information (the paper's figures leave those branches bare)."""
        guard = self.g_expr(cond)
        if isinstance(guard, B.BConst) and guard.value:
            return []
        assume = B.BAssume(guard)
        assume.source_sid = stmt.sid
        assume.comment = comment
        return [assume]

    def _abstract_if(self, stmt, comment):
        self.parent.stats.conditionals_abstracted += 1
        then_body = self._guard_assume(
            stmt.cond, stmt, "then: " + comment
        ) + self._abstract_body(stmt.then_body)
        else_body = self._guard_assume(
            C.negate(stmt.cond), stmt, "else: " + comment
        ) + self._abstract_body(stmt.else_body)
        branch = B.BIf(B.BNondet(), then_body, else_body)
        branch.source_sid = stmt.sid
        branch.comment = comment
        return [branch]

    def _abstract_while(self, stmt, comment):
        self.parent.stats.conditionals_abstracted += 1
        body = self._guard_assume(
            stmt.cond, stmt, "loop entry: " + comment
        ) + self._abstract_body(stmt.body)
        loop = B.BWhile(B.BNondet(), body)
        loop.source_sid = stmt.sid
        loop.comment = comment
        return [loop] + self._guard_assume(
            C.negate(stmt.cond), stmt, "loop exit: " + comment
        )


def abstract_program(program, predicates, options=None, prover=None, context=None):
    """Convenience wrapper: run C2bp and return (boolean program, stats)."""
    tool = C2bp(program, predicates, options=options, prover=prover, context=context)
    boolean_program = tool.run()
    return boolean_program, tool.stats
