"""C2bp — automatic predicate abstraction of C programs.

This package is the paper's primary contribution.  Given a C program ``P``
(in the intermediate form produced by :func:`repro.cfront.parse_c_program`)
and a set ``E`` of predicates (pure boolean C expressions), it constructs
the boolean program ``BP(P, E)``: same control structure, one boolean
variable per predicate, and conservative boolean transfer functions
computed with weakest preconditions strengthened through theorem-prover
queries.

Module map (paper section in parentheses):

- :mod:`repro.core.predicates` — predicates and the predicate input file (2.1);
- :mod:`repro.core.wp` — weakest preconditions with Morris' axiom and
  alias-based pruning (4.1, 4.2);
- :mod:`repro.core.cubes` — the ``F_V`` / ``G_V`` strengthening search with
  the Section 5.2 optimizations;
- :mod:`repro.core.signatures` — modular procedure signatures (4.5.2);
- :mod:`repro.core.calls` — abstraction of procedure calls (4.5.3);
- :mod:`repro.core.abstractor` — the statement-by-statement translation
  (4.3, 4.4) and the ``enforce`` computation (5.1);
- :mod:`repro.core.options` — the precision/efficiency knobs (5.2).
"""

from repro.core.abstractor import C2bp, abstract_program
from repro.core.options import C2bpOptions
from repro.core.predicates import (
    Predicate,
    PredicateParseError,
    PredicateSet,
    parse_predicate_file,
)

__all__ = [
    "C2bp",
    "C2bpOptions",
    "Predicate",
    "PredicateParseError",
    "PredicateSet",
    "abstract_program",
    "parse_predicate_file",
]
