"""A persistent worker pool for parallel statement abstraction.

The original ``--jobs`` implementation forked a fresh
``multiprocessing.Pool`` for every :meth:`repro.core.abstractor.C2bp.run`
and relied on fork inheritance to hand workers the parent's state.  That
meant every CEGAR iteration paid the full fork + warm-up cost again, and
(worse) the per-run pool could not carry solver state, learned theory
lemmas, or prover-cache entries from one abstraction run to the next.

:class:`StatementPool` replaces it with long-lived workers:

- workers are forked once (lazily, by the owning
  :class:`repro.engine.EngineContext`) and persist across statements and
  CEGAR iterations;
- each abstraction run re-targets them with one ``configure`` message
  carrying the pickled program, predicates, options, the precomputed
  ``enforce`` invariants (liveness anchors), and the parent's
  prover-cache *delta* since the last configure — workers keep their own
  :class:`repro.prover.cache.QueryCache` alive across configures, so
  iteration ``i+1`` starts with everything any process learned in
  iteration ``i``;
- tasks are batched onto per-worker request queues and drained from one
  shared result queue; replies carry the translated statements plus
  per-task deltas of the prover stats, new cache entries, analysis
  counters, events, and the process-wide SAT/CNF construction counters
  (:data:`repro.prover.sat.COUNTERS`, :data:`repro.prover.cnf.COUNTERS`)
  so a ``--jobs`` run reports the same truthful numbers a serial run
  does;
- shutdown is deterministic: workers ignore SIGINT (the parent drives
  teardown), ``close()`` sends stop messages, joins with a timeout, and
  terminates stragglers, and a task exception is shipped back as the
  formatted remote traceback and re-raised in the parent as
  :class:`WorkerError` after the drain completes — no zombies, no hangs.
"""

import multiprocessing
import os
import signal
import traceback

#: Cap for the auto-selected worker count.  BENCH_strengthen puts the
#: pool's configure/serialize overhead at roughly a quarter of a small
#: corpus run, so scaling past a handful of workers stops paying long
#: before typical core counts do; four is where the measured crossover
#: comfortably wins without oversubscribing the prover-cache shipping.
MAX_AUTO_JOBS = 4


def auto_jobs():
    """The worker count ``C2bpOptions(jobs=0)`` resolves to at
    :class:`repro.engine.EngineContext` startup: 1 on single-core hosts
    (serial in-process — keeps CI numbers identical to ``--jobs=1``),
    otherwise ``os.cpu_count()`` capped at :data:`MAX_AUTO_JOBS`."""
    count = os.cpu_count() or 1
    if count <= 1:
        return 1
    return min(count, MAX_AUTO_JOBS)


class WorkerError(Exception):
    """A worker task (or its configure) failed; carries the remote
    traceback so the parent error message shows the original failure."""

    def __init__(self, remote_traceback):
        super().__init__(
            "statement-abstraction worker failed:\n%s" % remote_traceback
        )
        self.remote_traceback = remote_traceback


def create_pool(jobs):
    """A :class:`StatementPool` with ``jobs`` workers, or ``None`` when
    the platform has no ``fork`` start method (the caller runs serially)."""
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    return StatementPool(jobs, mp_context)


class StatementPool:
    """``jobs`` forked workers answering statement-abstraction tasks."""

    def __init__(self, jobs, mp_context=None):
        if mp_context is None:
            mp_context = multiprocessing.get_context("fork")
        self.jobs = jobs
        #: How many parent-cache entries have been shipped to the workers
        #: already (maintained by the abstractor around ``configure`` so
        #: each run only sends the delta).
        self.shipped_cache_watermark = 0
        self._result_queue = mp_context.SimpleQueue()
        self._request_queues = []
        self._workers = []
        self._closed = False
        for _ in range(jobs):
            request_queue = mp_context.SimpleQueue()
            process = mp_context.Process(
                target=_worker_main,
                args=(request_queue, self._result_queue),
                daemon=True,  # never outlive the parent, even sans close()
            )
            process.start()
            self._request_queues.append(request_queue)
            self._workers.append(process)

    def configure(self, payload):
        """Broadcast the next run's inputs to every worker.

        No acknowledgement round-trip: the per-worker queues are FIFO, so
        a worker-side configure failure surfaces as a :class:`WorkerError`
        on the first :meth:`run` drain."""
        for request_queue in self._request_queues:
            request_queue.put(("configure", payload))

    def run(self, tasks):
        """Execute ``tasks`` across the pool; results come back in task
        order regardless of completion order.

        Tasks are sent as contiguous chunks, round-robin over the
        workers; every chunk produces exactly one reply message (results
        or an error), so the drain always terminates.  The first remote
        failure is re-raised as :class:`WorkerError` — after the drain,
        so the pool is left idle and reusable."""
        if not tasks:
            return []
        chunk = max(1, -(-len(tasks) // (self.jobs * 4)))
        pending = 0
        for start in range(0, len(tasks), chunk):
            worker = (start // chunk) % self.jobs
            batch = [
                (start + offset, task)
                for offset, task in enumerate(tasks[start : start + chunk])
            ]
            self._request_queues[worker].put(("tasks", batch))
            pending += 1
        results = [None] * len(tasks)
        failure = None
        while pending:
            message = self._result_queue.get()
            pending -= 1
            if message[0] == "error":
                if failure is None:
                    failure = message[1]
                continue
            for index, payload in message[1]:
                results[index] = payload
        if failure is not None:
            raise WorkerError(failure)
        return results

    def close(self):
        """Stop the workers; idempotent, never hangs (stragglers that miss
        the stop message — e.g. blocked mid-write after an interrupt —
        are terminated after a bounded join)."""
        if self._closed:
            return
        self._closed = True
        for request_queue in self._request_queues:
            try:
                request_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._workers:
            process.join(timeout=5)
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._workers = []
        self._request_queues = []

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


# -- worker side ----------------------------------------------------------------


def _worker_main(request_queue, result_queue):
    """The worker loop: configure / tasks / stop."""
    # The parent drives shutdown; a ^C in the terminal must not kill
    # workers mid-protocol (the parent's close() tears them down).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state = None
    configure_error = None
    while True:
        try:
            message = request_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "configure":
            try:
                state = _WorkerState(message[1], state)
                configure_error = None
            except BaseException:
                state = None
                configure_error = traceback.format_exc()
            continue
        # kind == "tasks"
        try:
            if state is None:
                raise WorkerError(configure_error or "worker not configured")
            replies = [
                (index, state.run_task(task)) for index, task in message[1]
            ]
            result_queue.put(("results", replies))
        except BaseException:
            try:
                result_queue.put(("error", traceback.format_exc()))
            except Exception:
                break


class _WorkerState:
    """One worker's long-lived abstraction state.

    A private :class:`repro.core.abstractor.C2bp` is rebuilt from the
    pickled inputs at every configure; the prover cache is carried over
    from the previous configure, so cube-query answers survive CEGAR
    iterations inside the worker exactly as they do in the parent."""

    def __init__(self, payload, previous):
        from repro.core.abstractor import C2bp
        from repro.engine import EngineContext

        cache = previous.cache if previous is not None else None
        # Workers open the persistent store (if the options configure one)
        # read-only: disk hits flow in, but every write reaches disk only
        # through the parent's write-through absorb of the shipped cache
        # delta — no multi-process write contention on the store.
        context = EngineContext(
            options=payload["options"], cache=cache, store_readonly=True
        )
        self.cache = context.cache
        self.store = context.store
        self.cache.absorb(payload["cache"])
        self.cache_watermark = len(self.cache)
        self.tool = C2bp(
            payload["program"], payload["predicates"], context=context
        )
        if self.tool.analysis is not None and self.tool.analysis.live_enabled:
            # The parent solved enforce pre-fork (Ω anchors the always-live
            # set); replaying compute_liveness with the shipped Ω gives the
            # worker identical liveness facts without re-running the cube
            # searches.
            for func_name, enforce in payload["enforce"].items():
                self.tool.analysis.compute_liveness(func_name, enforce)

    def run_task(self, task):
        """Translate one top-level statement (or compute one procedure's
        enforce invariant); the reply packages the translated piece plus
        every per-task accounting delta the parent merges back."""
        from repro.boolprog import ast as B
        from repro.core.abstractor import _ProcedureAbstractor
        from repro.prover import cnf as cnf_module
        from repro.prover import sat as sat_module

        tool = self.tool
        kind, func_name, index = task
        func = tool.program.functions[func_name]
        tool.prover.stats.reset()
        tool.stats.__init__()
        tool.temp_meanings.clear()
        analysis_before = (
            tool.analysis.stats.snapshot() if tool.analysis is not None else None
        )
        sat_before = dict(sat_module.COUNTERS)
        cnf_before = dict(cnf_module.COUNTERS)
        store_before = (
            self.store.counters_with_namespaces() if self.store is not None else None
        )
        events = tool.context.events
        events.events.clear()  # long-lived worker: never hit the record cap
        if kind == "stmt":
            proc_abs = _ProcedureAbstractor(
                tool, func, temp_prefix="__rw%d_" % index
            )
            stmt = func.body[index]
            translated = proc_abs._abstract_stmt(stmt)
            if stmt.labels:
                if not translated:
                    translated = [B.BSkip()]
                translated[0].labels = list(stmt.labels) + list(
                    translated[0].labels
                )
            payload = {"stmts": translated, "temps": list(proc_abs._extra_locals)}
        else:
            scope_predicates = tool.predicates.in_scope(func_name)
            payload = {
                "enforce": (
                    tool.search.enforce_expr(scope_predicates)
                    if scope_predicates
                    else None
                ),
                "temps": [],
            }
        payload["cache"] = self.cache.export_since(self.cache_watermark)
        self.cache_watermark = len(self.cache)
        payload["prover"] = tool.prover.stats.snapshot()
        payload["c2bp"] = {
            "assignments_abstracted": tool.stats.assignments_abstracted,
            "assignments_skipped_unchanged": (
                tool.stats.assignments_skipped_unchanged
            ),
            "calls_abstracted": tool.stats.calls_abstracted,
            "conditionals_abstracted": tool.stats.conditionals_abstracted,
        }
        payload["temp_meanings"] = list(tool.temp_meanings.items())
        if analysis_before is not None:
            payload["analysis"] = {
                name: value - analysis_before[name]
                for name, value in tool.analysis.stats.snapshot().items()
                if value != analysis_before[name]
            }
        else:
            payload["analysis"] = {}
        payload["events"] = list(events.events)
        if store_before is not None:
            after = self.store.counters_with_namespaces()
            delta = {
                name: after[name] - store_before[name]
                for name in self.store.COUNTER_FIELDS
                if after[name] != store_before[name]
            }
            namespaces = {}
            for namespace, counts in after["namespaces"].items():
                before = store_before["namespaces"].get(namespace, {})
                diff = {
                    field: value - before.get(field, 0)
                    for field, value in counts.items()
                    if value != before.get(field, 0)
                }
                if diff:
                    namespaces[namespace] = diff
            if namespaces:
                delta["namespaces"] = namespaces
            payload["store"] = delta
        else:
            payload["store"] = {}
        payload["construction"] = {
            "sat": {
                key: sat_module.COUNTERS[key] - sat_before[key]
                for key in sat_before
            },
            "cnf": {
                key: cnf_module.COUNTERS[key] - cnf_before[key]
                for key in cnf_before
            },
        }
        return payload
