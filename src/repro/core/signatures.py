"""Procedure signatures (Section 4.5.2).

The abstraction is modular: each procedure is abstracted given only the
*signatures* of its callees, and a signature is computed from the procedure
and its local predicate set alone.  The signature of ``R`` is the tuple
``(F_R, r, E_f, E_r)``:

- ``F_R`` — formal parameters;
- ``r`` — the (canonical) return variable;
- ``E_f`` — formal-parameter predicates: predicates of ``E_R`` that do not
  mention any local of ``R`` (they become formals of the boolean procedure);
- ``E_r`` — return predicates: predicates providing callers with
  information about the return value, the globals, and call-by-reference
  parameters:

      { e in E_R | (r in vars(e) and (vars(e) \\ {r}) ∩ L_R = ∅)
                 or (e in E_f and (vars(e) ∩ G_P != ∅ or drfs(e) ∩ F_R != ∅)) }

A formal-parameter predicate is only returned if the formal still refers to
its actual's value at exit — a formal reassigned inside ``R`` invalidates
that (the paper's footnote 4); we check this with a syntactic modification
analysis.
"""

from repro.cfront import cast as C
from repro.cfront.exprutils import derefs, variables


class Signature:
    __slots__ = ("func", "formals", "return_var", "formal_predicates", "return_predicates")

    def __init__(self, func, formal_predicates, return_predicates):
        self.func = func
        self.formals = func.param_names()
        self.return_var = func.return_var
        self.formal_predicates = formal_predicates  # E_f, ordered
        self.return_predicates = return_predicates  # E_r, ordered

    def __repr__(self):
        return "Signature(%s, E_f=%r, E_r=%r)" % (
            self.func.name,
            [p.name for p in self.formal_predicates],
            [p.name for p in self.return_predicates],
        )


def modified_formals(func):
    """Formal parameters the procedure may reassign (syntactically)."""
    formals = set(func.param_names())
    modified = set()

    def visit(stmts):
        for stmt in stmts:
            target = None
            if isinstance(stmt, C.Assign):
                target = stmt.lhs
            elif isinstance(stmt, C.CallStmt):
                target = stmt.lhs
            if isinstance(target, C.Id) and target.name in formals:
                modified.add(target.name)
            for sub in stmt.substatements():
                visit(sub)

    if func.body:
        visit(func.body)
    return modified


def compute_signature(program, func, local_predicates):
    """The signature of ``func`` with respect to its predicate set E_R."""
    formals = set(func.param_names())
    # L_R: locals proper (formals are not locals in the paper's notation).
    locals_only = set(func.local_names())
    globals_ = set(program.global_names())
    return_var = func.return_var
    unstable_formals = modified_formals(func)

    formal_predicates = []
    for predicate in local_predicates:
        mentioned = predicate.variables()
        if not (mentioned & locals_only):
            formal_predicates.append(predicate)

    return_predicates = []
    for predicate in local_predicates:
        mentioned = predicate.variables()
        about_return = (
            return_var is not None
            and return_var in mentioned
            and not ((mentioned - {return_var}) & locals_only)
        )
        about_side_effects = predicate in formal_predicates and (
            bool(mentioned & globals_) or bool(derefs(predicate.expr) & formals)
        )
        if about_return or about_side_effects:
            # Footnote 4: a predicate mentioning a formal whose value may
            # have changed inside R cannot be translated back to the caller.
            if mentioned & unstable_formals:
                continue
            return_predicates.append(predicate)
    return Signature(func, formal_predicates, return_predicates)


def compute_signatures(program, predicate_set):
    """Pass one of C2bp: the signature of every defined procedure."""
    return {
        func.name: compute_signature(
            program, func, predicate_set.for_procedure(func.name)
        )
        for func in program.defined_functions()
    }
