"""Trace replay: the executable form of the soundness theorem (Section 4.6).

    *For any path p feasible in P, p is feasible in BP(P, E) as well;
    moreover there is an execution of p in the boolean program whose state
    agrees with the concrete state on every predicate.*

The replayer runs the C program concretely, recording for every executed
statement the truth value of every predicate in scope (before and after the
statement).  It then re-executes the *boolean* program, resolving each
nondeterministic choice from the recording:

- ``*`` branch choices follow the concrete branch outcomes;
- ``unknown()`` / ``choose`` fall-throughs take the predicate's concrete
  post-state truth value;
- callee locals and actuals take the predicate values at procedure entry /
  the translated formal predicates evaluated in the caller's pre-state.

Soundness violations manifest as (a) a blocked ``assume`` (the concrete
path is infeasible in the abstraction), or (b) a boolean variable that
disagrees with its predicate's concrete value after a statement.  Either is
reported; a clean replay is evidence for Theorem 1 on this trace.
"""

from repro.boolprog.interp import AssumeBlocked, BoolProgramInterpreter
from repro.cfront.interp import InterpError, Interpreter, truthy
from repro.core.calls import translate_to_caller


class ReplayViolation:
    __slots__ = ("kind", "detail")

    def __init__(self, kind, detail):
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "ReplayViolation(%s: %s)" % (self.kind, self.detail)


class ReplayReport:
    def __init__(self):
        self.violations = []
        self.events_replayed = 0
        self.blocked = None

    @property
    def ok(self):
        return not self.violations and self.blocked is None

    def __repr__(self):
        return "ReplayReport(ok=%r, violations=%r, blocked=%r)" % (
            self.ok,
            self.violations,
            self.blocked,
        )


class _Event:
    __slots__ = (
        "kind",
        "func",
        "sid",
        "pre_vals",
        "post_vals",
        "outcome",
        "call_args",
        "consumed",
    )

    def __init__(self, kind, func, sid):
        self.kind = kind  # "entry", "stmt", "branch"
        self.func = func
        self.sid = sid
        self.pre_vals = {}
        self.post_vals = {}
        self.outcome = None
        self.call_args = {}  # formal-predicate name -> concrete value
        self.consumed = False

    def __repr__(self):
        return "<_Event %s %s sid=%s>" % (self.kind, self.func, self.sid)


class TraceReplayer:
    """Replays one concrete execution inside the abstraction."""

    def __init__(
        self,
        tool,
        boolean_program,
        entry="main",
        args=(),
        extern_oracle=None,
        args_factory=None,
    ):
        """``tool`` is the :class:`repro.core.C2bp` instance that produced
        ``boolean_program`` (the replayer needs its signatures and
        temporaries).  ``args_factory(interp)`` may build heap-allocated
        arguments using the concrete interpreter (e.g. linked lists)."""
        self.tool = tool
        self.program = tool.program
        self.predicates = tool.predicates
        self.boolean_program = boolean_program
        self.entry = entry
        self.args = list(args)
        self.args_factory = args_factory
        self.extern_oracle = extern_oracle
        self.report = ReplayReport()
        self._events = []
        self._entry_stack = []
        self._update_sids = _collect_update_sids(boolean_program)
        self._scope_exprs = {
            func.name: {
                p.name: p.expr for p in self.predicates.in_scope(func.name)
            }
            for func in self.program.defined_functions()
        }

    # -- phase one: concrete execution with predicate recording -----------------

    def _record(self, interp):
        # "pre"/"post" pairs nest across procedure calls (a CallStmt's post
        # fires after all of the callee's events), so match them by stack.
        open_events = []

        def evaluate(expr, env):
            try:
                value = interp.eval_expr(expr, env)
            except InterpError:
                return None  # predicate undefined in this state
            return truthy(value)

        def observer(phase, func_name, stmt, env):
            exprs = self._scope_exprs.get(func_name, {})
            if phase == "entry":
                event = _Event("entry", func_name, None)
                event.post_vals = {n: evaluate(e, env) for n, e in exprs.items()}
                self._events.append(event)
                return
            if phase == "pre":
                kind = "branch" if _is_branch(stmt) else "stmt"
                event = _Event(kind, func_name, stmt.sid)
                event.pre_vals = {n: evaluate(e, env) for n, e in exprs.items()}
                self._record_call_args(event, stmt, env, evaluate)
                self._events.append(event)
                open_events.append(event)
                return
            event = open_events.pop()
            event.post_vals = {n: evaluate(e, env) for n, e in exprs.items()}
            if event.kind == "branch":
                event.outcome = truthy(interp.eval_expr(stmt.cond, env))

        return observer

    def _record_call_args(self, event, stmt, env, evaluate):
        from repro.cfront import cast as C

        if not isinstance(stmt, C.CallStmt):
            return
        callee = self.program.functions.get(stmt.name)
        if callee is None or not callee.is_defined:
            return
        signature = self.tool.signatures[stmt.name]
        for index, predicate in enumerate(signature.formal_predicates):
            meaning = translate_to_caller(
                predicate.expr, signature.formals, stmt.args
            )
            event.call_args[index] = None if meaning is None else evaluate(meaning, env)

    # -- phase two: guided boolean replay ------------------------------------------

    def run(self):
        interp = Interpreter(
            self.program,
            extern_oracle=self.extern_oracle,
            observer=None,
        )
        interp.observer = self._record(interp)
        self._initial_globals = {
            p.name: self._eval_static(interp, p.expr)
            for p in self.predicates.globals
        }
        args = self.args
        if self.args_factory is not None:
            args = self.args_factory(interp)
        interp.call_function(self.entry, args)
        self.report.events_replayed = len(self._events)
        replay = BoolProgramInterpreter(
            self.boolean_program,
            chooser=_ReplayChooser(self),
            stop_on_assert=False,
            listener=self._check_state,
            on_enter=self._enter_procedure,
            on_exit=self._exit_procedure,
        )
        try:
            replay.call(self.entry, self._entry_arguments())
        except AssumeBlocked as blocked:
            self.report.blocked = blocked.stmt
        return self.report

    def _eval_static(self, interp, expr):
        try:
            return truthy(interp.eval_expr(expr, {}))
        except InterpError:
            return None

    def _entry_arguments(self):
        """Concrete values for the entry procedure's formal predicates."""
        proc = self.boolean_program.procedures[self.entry]
        entry_event = next(e for e in self._events if e.kind == "entry")
        values = []
        for name in proc.formals:
            value = entry_event.post_vals.get(name)
            values.append(bool(value))
        return values

    # -- synchronization helpers -----------------------------------------------------

    # Each recorded event is matched with at most one replayed statement
    # execution.  Lookups take the first *unconsumed* event with a matching
    # sid; an event is marked consumed when its statement's replay is
    # complete (the checkpoint of a BAssign, a branch outcome, a procedure
    # entry).  This keeps repeated executions of the same source statement
    # (loops, multiple calls to one procedure) in lockstep with the
    # recording even though pre/post event nesting is not list-ordered.

    def _find_event(self, sid, consume=False):
        for event in self._events:
            if event.sid == sid and not event.consumed:
                if consume:
                    event.consumed = True
                return event
        return None

    def _find_entry_event(self, func, consume=True):
        for event in self._events:
            if event.kind == "entry" and event.func == func and not event.consumed:
                if consume:
                    event.consumed = True
                return event
        return None

    def _enter_procedure(self, name):
        self._entry_stack.append(self._find_entry_event(name, consume=True))

    def _exit_procedure(self, name):
        if self._entry_stack:
            self._entry_stack.pop()

    # -- the chooser / the state check ---------------------------------------------------

    def _check_state(self, proc_name, stmt, env, globals_env):
        from repro.boolprog import ast as B

        # Plain assignments are checkpoints.  A BCall whose sid has a
        # post-call update assignment is not: its listener fires before the
        # update (same source sid) has re-strengthened the caller's
        # predicates, so checking there would flag transient, legitimate
        # disagreement — the update assignment is the checkpoint and
        # consumes the event.  A BCall *without* an update assignment is
        # final when its listener fires, so it checks (and consumes — an
        # unconsumed call event would shadow later executions of the same
        # call site in a loop) its own event.
        if stmt.source_sid is None:
            return
        if isinstance(stmt, B.BCall):
            if stmt.source_sid in self._update_sids:
                return
        elif not isinstance(stmt, B.BAssign):
            return
        event = self._find_event(stmt.source_sid, consume=True)
        if event is None:
            return
        exprs = self._scope_exprs.get(event.func, {})
        for name, concrete in event.post_vals.items():
            if concrete is None or name not in exprs:
                continue
            if name in env:
                got = env[name]
            elif name in globals_env:
                got = globals_env[name]
            else:
                continue
            if bool(got) != bool(concrete):
                self.report.violations.append(
                    ReplayViolation(
                        "state-mismatch",
                        "after sid %s (%s): boolean %r is %r but predicate is %r"
                        % (stmt.source_sid, stmt.comment, name, got, concrete),
                    )
                )


class _ReplayChooser:
    def __init__(self, replayer):
        self.replayer = replayer

    def choose(self, stmt, what):
        kind = what[0]
        replayer = self.replayer
        if kind == "initial":
            value = replayer._initial_globals.get(what[1])
            return bool(value)
        if kind == "local":
            _, proc, local = what
            event = None
            if replayer._entry_stack:
                top = replayer._entry_stack[-1]
                if top is not None and top.func == proc:
                    event = top
            if event is None:
                event = replayer._find_entry_event(proc, consume=False)
            if event is None:
                return False
            return bool(event.post_vals.get(local))
        if kind == "nondet":
            if stmt is None or stmt.source_sid is None:
                return False
            event = replayer._find_event(stmt.source_sid, consume=True)
            if event is None or event.outcome is None:
                return False
            return bool(event.outcome)
        if kind in ("unknown", "choose"):
            hint = what[1] if len(what) > 1 else None
            if stmt is None or stmt.source_sid is None:
                return False
            event = replayer._find_event(stmt.source_sid)
            if event is None:
                return False
            if isinstance(hint, tuple) and hint and hint[0] == "arg":
                _, callee, index = hint
                return bool(event.call_args.get(index))
            if isinstance(hint, str):
                meaning = replayer.tool.temp_meanings.get((event.func, hint))
                if meaning is not None:
                    # Temporaries carry translated post-call meanings.
                    return bool(event.post_vals.get(hint, False))
                return bool(event.post_vals.get(hint))
            return False
        return False


def _collect_update_sids(boolean_program):
    """Sids whose BCall is followed by a post-call update BAssign (same
    source sid) — for those, the update is the replay checkpoint."""
    from repro.boolprog import ast as B

    sids = set()

    def visit(stmts):
        for prev, nxt in zip(stmts, stmts[1:]):
            if (
                isinstance(prev, B.BCall)
                and isinstance(nxt, B.BAssign)
                and prev.source_sid is not None
                and nxt.source_sid == prev.source_sid
            ):
                sids.add(prev.source_sid)
        for stmt in stmts:
            for block in stmt.substatements():
                visit(block)

    for proc in boolean_program.procedures.values():
        visit(proc.body)
    return sids


def _is_branch(stmt):
    from repro.cfront import cast as C

    return isinstance(stmt, (C.If, C.While))


def replay_random_traces(tool, boolean_program, entry="main", seeds=(0,), make_args=None):
    """Replay several concrete runs (varying the extern oracle by seed);
    returns the list of reports."""
    import random

    reports = []
    for seed in seeds:
        rng = random.Random(seed)
        oracle = lambda name, args: rng.randint(-4, 4)  # noqa: E731
        args = make_args(seed) if make_args is not None else []
        replayer = TraceReplayer(
            tool, boolean_program, entry=entry, args=args, extern_oracle=oracle
        )
        reports.append(replayer.run())
    return reports
