"""Weakest preconditions with pointers (Sections 4.1 and 4.2).

For scalar assignments ``WP(x = e, φ) = φ[e/x]``.  In the presence of
pointers the substitution is wrong — ``WP(x = 3, *p > 5)`` is not
``*p > 5`` when ``x`` and ``*p`` alias — so we use Morris' general axiom of
assignment: enumerate the alias scenarios between the assigned location
``x`` and every location mentioned in ``φ``:

    φ[x, e, y] = (&x == &y && φ[e/y]) || (&x != &y && φ)

With ``k`` candidate locations the expansion has ``2^k`` disjuncts, one per
alias scenario (which locations coincide with ``x``); the points-to
analysis prunes scenarios it can refute, and syntactic identity decides
must-alias, so in the common case the result collapses to the plain
substitution.
"""

import itertools

from repro.cfront import cast as C
from repro.cfront.exprutils import fold_constants, locations, substitute, walk


class WpError(Exception):
    pass


def _morris_locations(phi):
    """The locations of ``φ`` relevant to Morris' axiom: scalar (integer or
    pointer typed) locations only.  Aggregate-typed intermediates such as
    the ``*curr`` inside ``curr->val`` are excluded — assigning a scalar
    cannot *be* the aggregate, and the aggregate's identity is already
    covered by its scalar sub-locations (here ``curr``)."""
    result = []
    for loc in locations(phi):
        loc_type = getattr(loc, "type", None)
        if loc_type is not None and not loc_type.is_scalar():
            continue
        result.append(loc)
    return sorted(result, key=lambda l: str(l._key()))


def address_expr(lvalue):
    """The C expression ``&lvalue``, simplified (``&*p`` folds to ``p``)."""
    if isinstance(lvalue, C.Deref):
        return lvalue.pointer
    if isinstance(lvalue, C.Cast):
        return address_expr(lvalue.operand)
    return C.AddrOf(lvalue)


def _mentions(expr, target):
    return any(node == target for node in walk(expr))


def _scenario_substitution(phi, aliased):
    """Simultaneously substitute ``e`` for every location in ``aliased``
    (a dict location -> replacement), maximal subexpressions first."""
    return substitute(phi, dict(aliased))


def weakest_precondition(lhs, rhs, phi, may_alias=None):
    """``WP(lhs = rhs, φ)`` under the logical memory model.

    ``may_alias(loc_a, loc_b) -> bool`` is the oracle used to prune alias
    scenarios; ``None`` means assume everything may alias (the paper's
    no-alias-information worst case with ``2^k`` disjuncts).
    """
    if not lhs.is_lvalue():
        raise WpError("assignment target %r is not a location" % (lhs,))
    phi_locations = _morris_locations(phi)
    certain = {}  # locations that definitely alias lhs (syntactic identity)
    possible = []  # locations that may or may not alias lhs
    for loc in phi_locations:
        if loc == lhs:
            certain[loc] = rhs
        elif may_alias is None or may_alias(lhs, loc):
            possible.append(loc)
    if not possible:
        return fold_constants(_scenario_substitution(phi, certain))
    disjuncts = []
    for selection in itertools.product([False, True], repeat=len(possible)):
        mapping = dict(certain)
        conditions = []
        for loc, chosen in zip(possible, selection):
            condition = C.BinOp(
                "==" if chosen else "!=", address_expr(lhs), address_expr(loc)
            )
            conditions.append(condition)
            if chosen:
                mapping[loc] = rhs
        body = _scenario_substitution(phi, mapping)
        disjuncts.append(C.conjoin(conditions + [body]))
    return fold_constants(C.disjoin(disjuncts))


def wp_unchanged(lhs, rhs, phi, may_alias=None):
    """Optimization two (Section 5.2): the truth of ``φ`` definitely does
    not change across ``lhs = rhs`` iff ``WP(lhs = rhs, φ) = φ``.

    We use the cheap sufficient condition: no location of ``φ`` is
    syntactically ``lhs`` and none may alias it."""
    for loc in _morris_locations(phi):
        if loc == lhs:
            return False
        if may_alias is None or may_alias(lhs, loc):
            return False
    return True


def wp_for_statement(stmt, phi, may_alias=None):
    """WP of a non-call intermediate-form statement."""
    if isinstance(stmt, C.Assign):
        return weakest_precondition(stmt.lhs, stmt.rhs, phi, may_alias)
    if isinstance(stmt, (C.Skip, C.Goto)):
        return phi
    raise WpError(
        "weakest precondition undefined for %r statements" % type(stmt).__name__
    )
