"""Abstraction of procedure calls (Section 4.5.3).

For a call ``v = R(a1, ..., aj)`` at a label of procedure ``S``:

1. for each formal-parameter predicate ``e`` of ``R``, the actual passed is
   ``choose(F(e'), F(¬e'))`` where ``e' = e[a/f]`` translates ``e`` to the
   calling context;
2. fresh temporaries ``t1..tp`` receive the return predicates ``E_r``; the
   meaning of ``t_i`` is ``e_i[v/r, a/f]``;
3. caller-local predicates whose value the call may change (they mention
   ``v``, a global, a transitive dereference of an actual, or an alias of
   one of those) are re-strengthened from the unaffected predicates plus
   the temporaries; everything else is left untouched.

A call to an *undefined* (extern) procedure has no summary at all:
affected predicates — including global ones — are invalidated with
``unknown()``.
"""

from repro.cfront import cast as C
from repro.cfront.exprutils import fold_constants, locations, substitute, variables
from repro.cfront.pretty import pretty_stmt
from repro.boolprog import ast as B


class TempPredicate:
    """A call-site temporary carrying the meaning E(t) = translated E_r
    predicate; participates in cube searches like a normal predicate."""

    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr

    def __repr__(self):
        return "TempPredicate(%s = %s)" % (self.name, self.expr)


def translate_to_caller(expr, formals, actuals, return_var=None, result_lvalue=None):
    """``e[v/r, a1/f1, ..., aj/fj]`` — or None if the translation needs a
    result lvalue that does not exist."""
    mapping = {}
    for formal, actual in zip(formals, actuals):
        mapping[C.Id(formal)] = actual
    if return_var is not None:
        if return_var in variables(expr) and result_lvalue is None:
            return None
        if result_lvalue is not None:
            mapping[C.Id(return_var)] = result_lvalue
    return fold_constants(substitute(expr, mapping))


def abstract_call(proc_abs, stmt):
    """Translate one CallStmt; returns a list of boolean statements."""
    parent = proc_abs.parent
    callee = parent.program.functions.get(stmt.name)
    comment = pretty_stmt(stmt).strip()
    if callee is None or not callee.is_defined:
        return _abstract_extern_call(proc_abs, stmt, comment)

    signature = parent.signatures[stmt.name]
    formals = signature.formals
    out = []

    # 1. Actual parameters for the formal-parameter predicates.
    args = []
    for predicate in signature.formal_predicates:
        translated = translate_to_caller(predicate.expr, formals, stmt.args)
        args.append(proc_abs.make_choose_for(translated))

    # 2. Temporaries for the return predicates.
    temps = []
    for predicate in signature.return_predicates:
        name = proc_abs.fresh_temp_name()
        meaning = translate_to_caller(
            predicate.expr,
            formals,
            stmt.args,
            return_var=signature.return_var,
            result_lvalue=stmt.lhs,
        )
        if meaning is not None and _call_clobbers_actuals(
            proc_abs, stmt, predicate.expr, formals
        ):
            meaning = None
        if meaning is not None and _binding_clobbers_meaning(
            proc_abs, stmt, predicate.expr, signature
        ):
            meaning = None
        temps.append(TempPredicate(name, meaning))
        parent.temp_meanings[(proc_abs.func.name, name)] = meaning
    call_stmt = B.BCall([t.name for t in temps], stmt.name, args)
    call_stmt.source_sid = stmt.sid
    call_stmt.comment = comment
    out.append(call_stmt)

    # 3. Update the affected caller-local predicates — plus any *global*
    # predicate the return binding itself may change (the callee's own
    # abstraction accounts for writes inside the callee, but ``v = R(...)``
    # with a global ``v`` is a caller-side store that happens after the
    # callee exits; see also the Bebop-side fix of the same shape in PR 4).
    affected = _affected_predicates(proc_abs, stmt, include_globals=False)
    affected += _binding_affected_globals(proc_abs, stmt, affected)
    if affected:
        unaffected = [
            p for p in proc_abs.scope_predicates if p not in affected
        ]
        candidates = unaffected + [t for t in temps if t.expr is not None]
        targets, values = [], []
        for predicate in affected:
            pos = proc_abs.f_expr(candidates, predicate.expr)
            neg = proc_abs.f_expr(candidates, C.negate(predicate.expr))
            targets.append(predicate.name)
            values.append(proc_abs.make_choose(pos, neg))
        update = B.BAssign(targets, values)
        update.source_sid = stmt.sid
        update.comment = "update after " + comment
        out.append(update)
    return out


def _call_clobbers_actuals(proc_abs, stmt, predicate_expr, formals):
    """Whether the call may change the value of an actual substituted into
    a temp meaning ``e[v/r, a/f]``.

    The actuals were evaluated *before* the call, but the meaning is read
    in the post-call state — e.g. for ``a = helper(a - 1)`` the translated
    ``p < h`` would become ``a - 1 < a`` and read the freshly assigned
    ``a``.  When the call can modify an actual (through the result lvalue,
    an alias, a cell reachable from an argument, or a global) the meaning
    is undefined and the temporary must not constrain the cube search.
    """
    parent = proc_abs.parent
    pta = parent.points_to
    func_name = proc_abs.func.name
    used = variables(predicate_expr)
    global_names = set(parent.program.global_names())
    reachable = pta.reachable_from_values(stmt.args, func_name)
    for formal, actual in zip(formals, stmt.args):
        if formal not in used:
            continue
        actual_vars = variables(actual)
        if actual_vars & global_names:
            return True  # a defined callee may write any global
        actual_locations = set(locations(actual)) | {C.Id(v) for v in actual_vars}
        for loc in actual_locations:
            if stmt.lhs is not None and pta.may_alias(loc, stmt.lhs, func_name):
                return True
            if pta.location_in(loc, reachable, func_name):
                return True
    return False


def _binding_clobbers_meaning(proc_abs, stmt, predicate_expr, signature):
    """Whether the result binding ``v = R(...)`` may change a *global*
    mentioned in a return predicate ``e``.

    The temp's meaning ``e[v/r, a/f]`` is read in the post-binding state,
    but the temp carries the truth of ``e`` at callee *exit* — before the
    store to ``v``.  For ``g = helper(...)`` with return predicate
    ``g > 1`` the two states disagree whenever the returned value moves
    ``g`` across the bound.  (Formals substituted by actuals are covered
    by :func:`_call_clobbers_actuals`; the return variable itself is the
    one occurrence the ``v/r`` substitution makes valid.)
    """
    if stmt.lhs is None:
        return False
    parent = proc_abs.parent
    pta = parent.points_to
    func_name = proc_abs.func.name
    global_names = set(parent.program.global_names())
    mentioned = variables(predicate_expr) - {signature.return_var}
    checked = {C.Id(v) for v in mentioned & global_names}
    for loc in locations(predicate_expr):
        if variables(loc) <= global_names:
            checked.add(loc)
    for loc in checked:
        if pta.may_alias(loc, stmt.lhs, func_name):
            return True
    return False


def _binding_affected_globals(proc_abs, stmt, already_affected):
    """Global predicates the result binding ``v = R(...)`` may change.

    ``_affected_predicates(include_globals=False)`` trusts the callee's
    own abstraction to keep global predicate variables current — correct
    for writes *inside* the callee, but the store of the return value
    into ``v`` happens in the caller after the callee exits, so a global
    predicate over (an alias of) ``v`` must be re-strengthened here like
    any caller-local one.
    """
    if stmt.lhs is None:
        return []
    parent = proc_abs.parent
    pta = parent.points_to
    func_name = proc_abs.func.name
    affected = []
    for predicate in proc_abs.scope_predicates:
        if getattr(predicate, "scope", "x") is not None:
            continue  # not a global predicate
        if predicate in already_affected:
            continue
        for loc in locations(predicate.expr):
            if pta.may_alias(loc, stmt.lhs, func_name):
                affected.append(predicate)
                break
    return affected


def _abstract_extern_call(proc_abs, stmt, comment):
    """Invalidate everything an unknown callee could touch."""
    affected = _affected_predicates(proc_abs, stmt, include_globals=True)
    if not affected:
        skip = B.BSkip()
        skip.source_sid = stmt.sid
        skip.comment = comment + " (extern, no effect on predicates)"
        return [skip]
    targets = [p.name for p in affected]
    values = [B.BUnknown() for _ in affected]
    havoc = B.BAssign(targets, values)
    havoc.source_sid = stmt.sid
    havoc.comment = comment + " (extern call havocs affected predicates)"
    return [havoc]


def _affected_predicates(proc_abs, stmt, include_globals):
    """E_u: predicates whose value may change across the call."""
    parent = proc_abs.parent
    pta = parent.points_to
    func_name = proc_abs.func.name
    global_names = set(parent.program.global_names())
    reachable = pta.reachable_from_values(stmt.args, func_name)

    local_predicates = [
        p for p in proc_abs.scope_predicates if getattr(p, "scope", None) is not None
    ]
    global_predicates = [
        p for p in proc_abs.scope_predicates if getattr(p, "scope", "x") is None
    ]
    pool = local_predicates + (global_predicates if include_globals else [])

    protected = frozenset(getattr(parent.program, "protected_globals", ()) or ())
    affected = []
    for predicate in pool:
        if _call_affects(
            predicate,
            stmt,
            pta,
            func_name,
            global_names,
            reachable,
            include_globals,
            protected,
        ):
            affected.append(predicate)
    return affected


def _call_affects(predicate, stmt, pta, func_name, global_names, reachable, extern, protected=frozenset()):
    mentioned = variables(predicate.expr)
    # Mentions a global: the callee can change it.  (For calls to defined
    # procedures the *global* predicate variables themselves are updated by
    # the callee's own abstraction; caller-local predicates over globals
    # still must be re-strengthened here.)  Protected globals (SLAM
    # instrumentation state) are invisible to extern callees.
    touchable_globals = mentioned & global_names
    if extern:
        touchable_globals -= protected
    if touchable_globals:
        return True
    predicate_locations = locations(predicate.expr)
    # Mentions v (the call target) or an alias of it.
    if stmt.lhs is not None:
        for loc in predicate_locations:
            if pta.may_alias(loc, stmt.lhs, func_name):
                return True
    # Mentions a (transitive) dereference of an actual, or an alias of one:
    # its cell is reachable from an argument value.  (This also catches a
    # caller variable passed by address, e.g. g(&x) affecting "x > 0".)
    for loc in predicate_locations:
        if pta.location_in(loc, reachable, func_name):
            return True
    if extern:
        # Extern callees may also write anything address-taken that has
        # escaped to the external world.
        for loc in predicate_locations:
            if pta.may_point_into_external(loc, func_name):
                return True
    return False
