"""Predicates and the predicate input file.

A predicate is a pure boolean C expression with no function calls
(Section 1).  Each predicate is annotated as *global* or *local to a
procedure* (Section 4.5.1), which determines the scope of its boolean
variable in ``BP(P, E)``.

The predicate input file format follows the paper's Section 2.1 example::

    partition
    curr == NULL, prev == NULL,
    curr->val > v, prev->val > v

    bar
    y >= 0, *q <= y

    global
    locked == 1

A section starts with a procedure name (or the word ``global``) alone on a
line; the following lines list comma-separated predicates until the next
section header or end of file.
"""

from repro.cfront import cast as C
from repro.cfront import parse_expression
from repro.cfront.errors import CFrontError
from repro.cfront.exprutils import is_pure_predicate, variables
from repro.cfront.pretty import pretty_expr
from repro.cfront.typecheck import TypeChecker


class PredicateParseError(Exception):
    pass


class Predicate:
    """One predicate: a boolean C expression with a scope annotation."""

    __slots__ = ("expr", "scope", "name")

    def __init__(self, expr, scope=None):
        if not is_pure_predicate(expr):
            raise PredicateParseError(
                "predicate %s is not pure (calls or nondeterminism)"
                % pretty_expr(expr)
            )
        self.expr = expr
        self.scope = scope  # procedure name, or None for global
        # The display name doubles as the boolean variable identifier in
        # the boolean program, e.g. "curr==NULL".
        self.name = pretty_expr(expr).replace(" ", "")

    @property
    def is_global(self):
        return self.scope is None

    def variables(self):
        return variables(self.expr)

    def __eq__(self, other):
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.expr == other.expr and self.scope == other.scope

    def __hash__(self):
        return hash((self.expr, self.scope))

    def __repr__(self):
        where = "global" if self.is_global else self.scope
        return "Predicate(%s @ %s)" % (self.name, where)


class PredicateSet:
    """The set ``E``, partitioned into ``E_G`` and per-procedure ``E_R``."""

    def __init__(self, predicates=()):
        self.globals = []  # E_G
        self.by_procedure = {}  # name -> [Predicate]  (E_R)
        for predicate in predicates:
            self.add(predicate)

    def add(self, predicate):
        """Add with cross-scope deduplication, returning the retained
        predicate.  A boolean variable is named after its expression, so a
        procedure-local predicate whose expression already exists globally
        would declare a second variable with the same name in that
        procedure's scope; the global one already tracks it everywhere, so
        the local is shadowed (and a newly added global absorbs identical
        locals)."""
        if predicate.is_global:
            for existing in self.globals:
                if existing.expr == predicate.expr:
                    return existing
            self.globals.append(predicate)
            for name, bucket in self.by_procedure.items():
                self.by_procedure[name] = [
                    p for p in bucket if p.expr != predicate.expr
                ]
            return predicate
        for existing in self.globals:
            if existing.expr == predicate.expr:
                return existing
        bucket = self.by_procedure.setdefault(predicate.scope, [])
        for existing in bucket:
            if existing == predicate:
                return existing
        bucket.append(predicate)
        return predicate

    def for_procedure(self, name):
        """``E_R``: the predicates local to procedure ``name``."""
        return list(self.by_procedure.get(name, []))

    def in_scope(self, name):
        """``E_G ∪ E_R``: every predicate visible inside ``name``."""
        return self.globals + self.for_procedure(name)

    def all_predicates(self):
        result = list(self.globals)
        for bucket in self.by_procedure.values():
            result.extend(bucket)
        return result

    def __len__(self):
        return len(self.all_predicates())

    def merged_with(self, other):
        merged = PredicateSet(self.all_predicates())
        for predicate in other.all_predicates():
            merged.add(predicate)
        return merged

    def __repr__(self):
        return "PredicateSet(%d predicates)" % len(self)


def _validate_against_program(predicate, program):
    """Type check the predicate in its declared scope."""
    checker = TypeChecker(program)
    if predicate.is_global:
        func = None
    else:
        func = program.functions.get(predicate.scope)
        if func is None:
            raise PredicateParseError(
                "predicate scope %r is not a function of the program"
                % predicate.scope
            )
    try:
        checker.check_expr(predicate.expr, func)
    except CFrontError as error:
        raise PredicateParseError(
            "ill-typed predicate %s: %s" % (predicate.name, error.message)
        ) from error
    if predicate.is_global:
        global_names = set(program.global_names())
        loose = predicate.variables() - global_names
        if loose:
            raise PredicateParseError(
                "global predicate %s mentions non-global variables %s"
                % (predicate.name, sorted(loose))
            )


def _split_top_level_commas(text):
    """Split on commas not nested in parentheses/brackets."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_predicate_file(text, program=None):
    """Parse a predicate input file into a :class:`PredicateSet`.

    When ``program`` is given, section names are checked against its
    functions and each predicate is type checked in its scope.
    """
    result = PredicateSet()
    scope = None
    have_section = False
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        is_header = (
            "," not in line
            and all(ch.isalnum() or ch == "_" for ch in line)
            and not line[0].isdigit()
        )
        if is_header and (
            line == "global"
            or program is None
            or line in program.functions
        ):
            # A bare identifier naming a function (or "global") starts a
            # section; a bare identifier that is not a function is treated
            # as a (single-variable) predicate below only if a section is
            # already open.
            if line == "global":
                scope = None
                have_section = True
                continue
            if program is None or line in program.functions:
                scope = line
                have_section = True
                continue
        if not have_section:
            raise PredicateParseError(
                "predicate %r appears before any section header" % line
            )
        for part in _split_top_level_commas(line):
            try:
                expr = parse_expression(part)
            except CFrontError as error:
                raise PredicateParseError(
                    "cannot parse predicate %r: %s" % (part, error.message)
                ) from error
            predicate = Predicate(expr, scope)
            if program is not None:
                _validate_against_program(predicate, program)
            result.add(predicate)
    return result


def predicates_for(program, scope, exprs):
    """Convenience: build typed predicates from C expression strings."""
    result = []
    for text in exprs:
        predicate = Predicate(parse_expression(text), scope)
        _validate_against_program(predicate, program)
        result.append(predicate)
    return result


def negate_predicate_expr(expr):
    """The C expression for the negation of a predicate."""
    return C.negate(expr)
