"""Hash-consed ROBDD manager.

Nodes are interned so that structural equality is identity, making set
operations memoizable by id.  Variables are small integers; the variable
order is the natural integer order.  The manager exposes:

- constants ``true``/``false`` and single-variable BDDs;
- ``ite`` and the derived boolean connectives;
- ``restrict`` (cofactor), ``exists``/``forall`` over variable sets;
- fused kernels for the model checker's hot path: ``and_exists`` (the
  relational product ``exists V (f and g)`` in one recursive pass),
  ``and_not`` (``f and not g``, the frontier difference), and
  ``exists_set`` (simultaneous quantification over a variable set);
- ``rename`` as a *simultaneous* substitution: order-compatible maps are
  applied as a direct level shift, arbitrary maps (including swaps such
  as ``{a: b, b: a}``) fall back to an ``ite``-based compose — the old
  pair-by-pair quantified-equivalence loop silently clobbered overlapping
  mappings;
- model extraction (``pick_assignment``), full model iteration
  (``assignments``), cube enumeration (``cubes``), and model counting;
- bounded op-caches (cleared wholesale past ``max_cache_entries``, with
  an eviction counter) and mark-and-sweep ``collect_garbage`` over caller
  -supplied roots, so a manager can live across many runs.

Operation counters are kept both per-manager (``stats_snapshot``) and in
the process-wide :data:`COUNTERS` dict so benchmarks can compare
configurations that construct many managers.
"""

import itertools

#: Process-wide operation counters (one BddManager per Bebop run means
#: per-manager counters vanish with the manager; benchmarks read these).
COUNTERS = {
    "ite": 0,
    "and_exists": 0,
    "and_not": 0,
    "exists_set": 0,
    "renames_shifted": 0,
    "renames_composed": 0,
    "cache_evictions": 0,
}


def reset_counters():
    for key in COUNTERS:
        COUNTERS[key] = 0


class BddNode:
    """An internal decision node: ``if var then high else low``."""

    __slots__ = ("var", "low", "high", "_id")

    def __init__(self, var, low, high, node_id):
        self.var = var
        self.low = low
        self.high = high
        self._id = node_id

    def __repr__(self):
        return "BddNode(x%d, id=%d)" % (self.var, self._id)


class _Terminal:
    __slots__ = ("value", "_id")

    def __init__(self, value, node_id):
        self.value = value
        self._id = node_id

    def __repr__(self):
        return "BddTerminal(%r)" % self.value


_EMPTY = frozenset()


class BddManager:
    #: Default bound on each op-cache; past it the cache is dropped
    #: wholesale (a generation flip, counted in ``cache_evictions``).
    DEFAULT_MAX_CACHE_ENTRIES = 1 << 20

    def __init__(self, max_cache_entries=None):
        self.false = _Terminal(False, 0)
        self.true = _Terminal(True, 1)
        self._next_id = 2
        self._unique = {}  # (var, low id, high id) -> node
        self._ite_cache = {}
        self._quant_cache = {}
        self._apply_cache = {}  # fused kernels: and_exists / and_not / exists_set
        self.max_cache_entries = (
            self.DEFAULT_MAX_CACHE_ENTRIES if max_cache_entries is None else max_cache_entries
        )
        self._varset_ids = {}  # frozenset -> (small id, max var)
        self.ite_calls = 0
        self.and_exists_steps = 0
        self.and_not_steps = 0
        self.exists_set_steps = 0
        self.renames_shifted = 0
        self.renames_composed = 0
        self.cache_hits = 0
        self.cache_lookups = 0
        self.cache_evictions = 0
        self.peak_nodes = 0
        self.gc_runs = 0
        self.nodes_collected = 0

    # -- construction ----------------------------------------------------------

    def _mk(self, var, low, high):
        if low is high:
            return low
        key = (var, low._id, high._id)
        node = self._unique.get(key)
        if node is None:
            node = BddNode(var, low, high, self._next_id)
            self._next_id += 1
            self._unique[key] = node
            if len(self._unique) > self.peak_nodes:
                self.peak_nodes = len(self._unique)
        return node

    def var(self, index):
        """The BDD of the single variable ``index``."""
        return self._mk(index, self.false, self.true)

    def nvar(self, index):
        return self._mk(index, self.true, self.false)

    def constant(self, value):
        return self.true if value else self.false

    def cube(self, literals):
        """The conjunction of ``(var, polarity)`` literals, built directly
        with the unique table — no ``ite`` traffic.  Returns false on
        contradictory literals; duplicates collapse."""
        by_var = {}
        for var, polarity in literals:
            polarity = bool(polarity)
            if by_var.setdefault(var, polarity) != polarity:
                return self.false
        node = self.true
        for var in sorted(by_var, reverse=True):
            if by_var[var]:
                node = self._mk(var, self.false, node)
            else:
                node = self._mk(var, node, self.false)
        return node

    # -- op-cache plumbing -------------------------------------------------------

    def _cache_put(self, cache, key, value):
        if len(cache) >= self.max_cache_entries:
            cache.clear()
            self.cache_evictions += 1
            COUNTERS["cache_evictions"] += 1
        cache[key] = value

    def _varset_id(self, variables):
        entry = self._varset_ids.get(variables)
        if entry is None:
            entry = (len(self._varset_ids), max(variables) if variables else -1)
            self._varset_ids[variables] = entry
        return entry

    # -- core: if-then-else -----------------------------------------------------

    def ite(self, f, g, h):
        """The BDD of ``(f and g) or (not f and h)``."""
        self.ite_calls += 1
        COUNTERS["ite"] += 1
        if f is self.true:
            return g
        if f is self.false:
            return h
        if g is h:
            return g
        if g is self.true and h is self.false:
            return f
        key = (f._id, g._id, h._id)
        self.cache_lookups += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        top = min(node.var for node in (f, g, h) if isinstance(node, BddNode))
        f_low, f_high = self._cofactors(f, top)
        g_low, g_high = self._cofactors(g, top)
        h_low, h_high = self._cofactors(h, top)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self._mk(top, low, high)
        self._cache_put(self._ite_cache, key, result)
        return result

    @staticmethod
    def _cofactors(node, var):
        if isinstance(node, BddNode) and node.var == var:
            return node.low, node.high
        return node, node

    # -- boolean connectives -----------------------------------------------------

    def land(self, f, g):
        return self.ite(f, g, self.false)

    def lor(self, f, g):
        return self.ite(f, self.true, g)

    def lnot(self, f):
        return self.ite(f, self.false, self.true)

    def implies(self, f, g):
        return self.ite(f, g, self.true)

    def iff(self, f, g):
        return self.ite(f, g, self.lnot(g))

    def xor(self, f, g):
        return self.ite(f, self.lnot(g), g)

    def conjoin(self, bdds):
        result = self.true
        for bdd in bdds:
            result = self.land(result, bdd)
        return result

    def disjoin(self, bdds):
        result = self.false
        for bdd in bdds:
            result = self.lor(result, bdd)
        return result

    # -- cofactor / quantification --------------------------------------------------

    def restrict(self, f, var, value):
        """Cofactor of ``f`` with ``var`` fixed to ``value``."""
        if isinstance(f, _Terminal):
            return f
        key = ("restrict", f._id, var, value)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if f.var == var:
            result = f.high if value else f.low
        elif f.var > var:
            result = f
        else:
            result = self._mk(
                f.var,
                self.restrict(f.low, var, value),
                self.restrict(f.high, var, value),
            )
        self._cache_put(self._quant_cache, key, result)
        return result

    def exists(self, f, variables):
        """Existential quantification over an iterable of variables."""
        for var in sorted(set(variables), reverse=True):
            f = self._exists_one(f, var)
        return f

    def _exists_one(self, f, var):
        if isinstance(f, _Terminal):
            return f
        key = ("exists", f._id, var)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if f.var == var:
            result = self.lor(f.low, f.high)
        elif f.var > var:
            result = f
        else:
            result = self._mk(
                f.var, self._exists_one(f.low, var), self._exists_one(f.high, var)
            )
        self._cache_put(self._quant_cache, key, result)
        return result

    def forall(self, f, variables):
        return self.lnot(self.exists(self.lnot(f), variables))

    # -- fused kernels -------------------------------------------------------------

    def exists_set(self, f, variables):
        """``exists variables . f`` in one pass over the whole set."""
        variables = frozenset(variables)
        if not variables or isinstance(f, _Terminal):
            return f
        vsid, vmax = self._varset_id(variables)
        return self._exists_set(f, variables, vsid, vmax)

    def _exists_set(self, f, vs, vsid, vmax):
        if isinstance(f, _Terminal) or f.var > vmax:
            return f
        self.exists_set_steps += 1
        COUNTERS["exists_set"] += 1
        key = ("eset", f._id, vsid)
        self.cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        low = self._exists_set(f.low, vs, vsid, vmax)
        high = self._exists_set(f.high, vs, vsid, vmax)
        if f.var in vs:
            result = self.lor(low, high)
        else:
            result = self._mk(f.var, low, high)
        self._cache_put(self._apply_cache, key, result)
        return result

    def and_exists(self, f, g, variables):
        """The relational product ``exists variables . (f and g)`` without
        materializing the conjunction (Bebop's transfer application)."""
        variables = frozenset(variables)
        vsid, vmax = self._varset_id(variables)
        return self._and_exists(f, g, variables, vsid, vmax)

    def _and_exists(self, f, g, vs, vsid, vmax):
        if f is self.false or g is self.false:
            return self.false
        if f is self.true:
            return self._exists_set(g, vs, vsid, vmax) if vs else g
        if g is self.true:
            return self._exists_set(f, vs, vsid, vmax) if vs else f
        self.and_exists_steps += 1
        COUNTERS["and_exists"] += 1
        if f._id > g._id:
            f, g = g, f
        key = ("aex", f._id, g._id, vsid)
        self.cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        top = min(f.var, g.var)
        f_low, f_high = self._cofactors(f, top)
        g_low, g_high = self._cofactors(g, top)
        if top in vs:
            low = self._and_exists(f_low, g_low, vs, vsid, vmax)
            if low is self.true:
                result = self.true
            else:
                high = self._and_exists(f_high, g_high, vs, vsid, vmax)
                result = self.lor(low, high)
        else:
            low = self._and_exists(f_low, g_low, vs, vsid, vmax)
            high = self._and_exists(f_high, g_high, vs, vsid, vmax)
            result = self._mk(top, low, high)
        self._cache_put(self._apply_cache, key, result)
        return result

    def equiv_vars(self, a, b):
        """``a <-> b`` for two variables, built directly — no ``ite``."""
        if a == b:
            return self.true
        if a > b:
            a, b = b, a
        return self._mk(a, self.nvar(b), self.var(b))

    def complement(self, f):
        """``not f`` by direct node rebuild — no ``ite`` traffic."""
        if f is self.true:
            return self.false
        if f is self.false:
            return self.true
        key = ("cmpl", f._id)
        self.cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = self._mk(f.var, self.complement(f.low), self.complement(f.high))
        self._cache_put(self._apply_cache, key, result)
        return result

    def and_not(self, f, g):
        """``f and not g`` — the frontier difference, fused so the
        negation is never materialized."""
        if f is self.false or g is self.true:
            return self.false
        if g is self.false:
            return f
        if f is g:
            return self.false
        if f is self.true:
            return self.lnot(g)
        self.and_not_steps += 1
        COUNTERS["and_not"] += 1
        key = ("anot", f._id, g._id)
        self.cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        top = min(f.var, g.var)
        f_low, f_high = self._cofactors(f, top)
        g_low, g_high = self._cofactors(g, top)
        result = self._mk(top, self.and_not(f_low, g_low), self.and_not(f_high, g_high))
        self._cache_put(self._apply_cache, key, result)
        return result

    # -- renaming -----------------------------------------------------------------

    def rename(self, f, mapping):
        """Rename variables per ``mapping`` (old -> new), *simultaneously*.

        Substitution semantics: every occurrence of an ``old`` variable is
        replaced by its ``new`` variable in one step, so overlapping maps
        such as the swap ``{a: b, b: a}`` are handled correctly (the
        historical pair-by-pair quantified-equivalence loop clobbered
        them).  Non-injective maps are rejected.  When the relabeled
        support keeps the variable order — the common case with the
        interleaved current/shadow numbering — the rename is a direct
        level shift; otherwise an ``ite``-based compose reorders levels.
        """
        mapping = {old: new for old, new in mapping.items() if old != new}
        if not mapping or isinstance(f, _Terminal):
            return f
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise ValueError("rename mapping is not injective: %r" % (mapping,))
        support = self.support(f)
        if not any(old in support for old in mapping):
            return f
        ordered = sorted(support)
        relabeled = [mapping.get(v, v) for v in ordered]
        if all(a < b for a, b in zip(relabeled, relabeled[1:])):
            self.renames_shifted += 1
            COUNTERS["renames_shifted"] += 1
            return self._shift(f, mapping, {})
        self.renames_composed += 1
        COUNTERS["renames_composed"] += 1
        return self._compose(f, mapping, {})

    def _shift(self, f, mapping, memo):
        """Order-preserving relabel: rebuild nodes with mapped indices."""
        if isinstance(f, _Terminal):
            return f
        cached = memo.get(f._id)
        if cached is not None:
            return cached
        result = self._mk(
            mapping.get(f.var, f.var),
            self._shift(f.low, mapping, memo),
            self._shift(f.high, mapping, memo),
        )
        memo[f._id] = result
        return result

    def _compose(self, f, mapping, memo):
        """General simultaneous substitution via ``ite`` recombination."""
        if isinstance(f, _Terminal):
            return f
        cached = memo.get(f._id)
        if cached is not None:
            return cached
        low = self._compose(f.low, mapping, memo)
        high = self._compose(f.high, mapping, memo)
        result = self.ite(self.var(mapping.get(f.var, f.var)), high, low)
        memo[f._id] = result
        return result

    # -- garbage collection ---------------------------------------------------------

    def collect_garbage(self, roots=()):
        """Drop unique-table entries unreachable from ``roots`` and clear
        every op-cache (a generation flip).

        Old BDD objects referencing collected nodes stay structurally
        valid for traversal, but lose hash-consing identity with nodes
        built afterwards — callers must not mix pre- and post-collection
        BDDs in ``is``-based comparisons.  Returns the number of nodes
        collected.
        """
        live = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if isinstance(node, _Terminal) or node._id in live:
                continue
            live.add(node._id)
            stack.append(node.low)
            stack.append(node.high)
        before = len(self._unique)
        self._unique = {
            key: node for key, node in self._unique.items() if node._id in live
        }
        collected = before - len(self._unique)
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._apply_cache.clear()
        self.gc_runs += 1
        self.nodes_collected += collected
        return collected

    @property
    def live_nodes(self):
        """Internal nodes currently interned (terminals excluded)."""
        return len(self._unique)

    def stats_snapshot(self):
        """Operation and cache counters as a JSON-ready dict."""
        lookups = self.cache_lookups
        return {
            "ite_calls": self.ite_calls,
            "and_exists_steps": self.and_exists_steps,
            "and_not_steps": self.and_not_steps,
            "exists_set_steps": self.exists_set_steps,
            "renames_shifted": self.renames_shifted,
            "renames_composed": self.renames_composed,
            "cache_hits": self.cache_hits,
            "cache_lookups": lookups,
            "cache_hit_rate": round(self.cache_hits / lookups, 4) if lookups else 0.0,
            "cache_evictions": self.cache_evictions,
            "allocated_nodes": self._next_id,
            "live_nodes": len(self._unique),
            "peak_nodes": self.peak_nodes,
            "gc_runs": self.gc_runs,
            "nodes_collected": self.nodes_collected,
        }

    # -- inspection ------------------------------------------------------------------

    def is_false(self, f):
        return f is self.false

    def is_true(self, f):
        return f is self.true

    def evaluate(self, f, assignment):
        """Evaluate under a {var: bool} assignment (must cover f's support)."""
        while isinstance(f, BddNode):
            f = f.high if assignment[f.var] else f.low
        return f.value

    def support(self, f):
        """The set of variables ``f`` depends on."""
        seen = set()
        result = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if isinstance(node, _Terminal) or node._id in seen:
                continue
            seen.add(node._id)
            result.add(node.var)
            stack.append(node.low)
            stack.append(node.high)
        return result

    def pick_assignment(self, f, variables=()):
        """One satisfying assignment as a dict, or None if unsatisfiable.

        Variables listed in ``variables`` but not in the BDD's support are
        assigned False.
        """
        if f is self.false:
            return None
        assignment = {}
        node = f
        while isinstance(node, BddNode):
            if node.low is not self.false:
                assignment[node.var] = False
                node = node.low
            else:
                assignment[node.var] = True
                node = node.high
        for var in variables:
            assignment.setdefault(var, False)
        return assignment

    def assignments(self, f, variables):
        """Iterate all satisfying assignments over exactly ``variables``."""
        variables = sorted(set(variables))
        for cube in self.cubes(f):
            free = [v for v in variables if v not in cube]
            missing = [v for v in cube if v not in variables]
            if missing:
                raise ValueError("cube mentions variables outside the domain")
            for values in itertools.product([False, True], repeat=len(free)):
                assignment = dict(cube)
                assignment.update(zip(free, values))
                yield assignment

    def cubes(self, f):
        """Iterate the cubes (partial assignments) of ``f``'s DNF, as dicts."""

        def walk(node, partial):
            if node is self.false:
                return
            if node is self.true:
                yield dict(partial)
                return
            partial[node.var] = False
            yield from walk(node.low, partial)
            partial[node.var] = True
            yield from walk(node.high, partial)
            del partial[node.var]

        yield from walk(f, {})

    def count_assignments(self, f, num_vars_domain):
        """Number of satisfying assignments over a domain of variables
        (given as an iterable)."""
        domain = sorted(set(num_vars_domain))
        index = {var: i for i, var in enumerate(domain)}
        cache = {}

        def count(node, depth):
            if node is self.false:
                return 0
            if node is self.true:
                return 2 ** (len(domain) - depth)
            key = (node._id, depth)
            if key in cache:
                return cache[key]
            node_depth = index[node.var]
            scale = 2 ** (node_depth - depth)
            result = scale * (count(node.low, node_depth + 1) + count(node.high, node_depth + 1))
            cache[key] = result
            return result

        return count(f, 0)

    def size(self, f):
        """Number of internal nodes in ``f``."""
        seen = set()
        stack = [f]
        total = 0
        while stack:
            node = stack.pop()
            if isinstance(node, _Terminal) or node._id in seen:
                continue
            seen.add(node._id)
            total += 1
            stack.append(node.low)
            stack.append(node.high)
        return total
