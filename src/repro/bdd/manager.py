"""Hash-consed ROBDD manager.

Nodes are interned so that structural equality is identity, making set
operations memoizable by id.  Variables are small integers; the variable
order is the natural integer order.  The manager exposes:

- constants ``true``/``false`` and single-variable BDDs;
- ``ite`` and the derived boolean connectives;
- ``restrict`` (cofactor), ``exists``/``forall`` over variable sets;
- ``rename`` via quantified equivalences (safe for any ordering);
- model extraction (``pick_assignment``), full model iteration
  (``assignments``), cube enumeration (``cubes``), and model counting.
"""

import itertools


class BddNode:
    """An internal decision node: ``if var then high else low``."""

    __slots__ = ("var", "low", "high", "_id")

    def __init__(self, var, low, high, node_id):
        self.var = var
        self.low = low
        self.high = high
        self._id = node_id

    def __repr__(self):
        return "BddNode(x%d, id=%d)" % (self.var, self._id)


class _Terminal:
    __slots__ = ("value", "_id")

    def __init__(self, value, node_id):
        self.value = value
        self._id = node_id

    def __repr__(self):
        return "BddTerminal(%r)" % self.value


class BddManager:
    def __init__(self):
        self.false = _Terminal(False, 0)
        self.true = _Terminal(True, 1)
        self._next_id = 2
        self._unique = {}  # (var, low id, high id) -> node
        self._ite_cache = {}
        self._quant_cache = {}

    # -- construction ----------------------------------------------------------

    def _mk(self, var, low, high):
        if low is high:
            return low
        key = (var, low._id, high._id)
        node = self._unique.get(key)
        if node is None:
            node = BddNode(var, low, high, self._next_id)
            self._next_id += 1
            self._unique[key] = node
        return node

    def var(self, index):
        """The BDD of the single variable ``index``."""
        return self._mk(index, self.false, self.true)

    def nvar(self, index):
        return self._mk(index, self.true, self.false)

    def constant(self, value):
        return self.true if value else self.false

    # -- core: if-then-else -----------------------------------------------------

    def ite(self, f, g, h):
        """The BDD of ``(f and g) or (not f and h)``."""
        if f is self.true:
            return g
        if f is self.false:
            return h
        if g is h:
            return g
        if g is self.true and h is self.false:
            return f
        key = (f._id, g._id, h._id)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(node.var for node in (f, g, h) if isinstance(node, BddNode))
        f_low, f_high = self._cofactors(f, top)
        g_low, g_high = self._cofactors(g, top)
        h_low, h_high = self._cofactors(h, top)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    @staticmethod
    def _cofactors(node, var):
        if isinstance(node, BddNode) and node.var == var:
            return node.low, node.high
        return node, node

    # -- boolean connectives -----------------------------------------------------

    def land(self, f, g):
        return self.ite(f, g, self.false)

    def lor(self, f, g):
        return self.ite(f, self.true, g)

    def lnot(self, f):
        return self.ite(f, self.false, self.true)

    def implies(self, f, g):
        return self.ite(f, g, self.true)

    def iff(self, f, g):
        return self.ite(f, g, self.lnot(g))

    def xor(self, f, g):
        return self.ite(f, self.lnot(g), g)

    def conjoin(self, bdds):
        result = self.true
        for bdd in bdds:
            result = self.land(result, bdd)
        return result

    def disjoin(self, bdds):
        result = self.false
        for bdd in bdds:
            result = self.lor(result, bdd)
        return result

    # -- cofactor / quantification --------------------------------------------------

    def restrict(self, f, var, value):
        """Cofactor of ``f`` with ``var`` fixed to ``value``."""
        if isinstance(f, _Terminal):
            return f
        key = ("restrict", f._id, var, value)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if f.var == var:
            result = f.high if value else f.low
        elif f.var > var:
            result = f
        else:
            result = self._mk(
                f.var,
                self.restrict(f.low, var, value),
                self.restrict(f.high, var, value),
            )
        self._quant_cache[key] = result
        return result

    def exists(self, f, variables):
        """Existential quantification over an iterable of variables."""
        for var in sorted(set(variables), reverse=True):
            f = self._exists_one(f, var)
        return f

    def _exists_one(self, f, var):
        if isinstance(f, _Terminal):
            return f
        key = ("exists", f._id, var)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if f.var == var:
            result = self.lor(f.low, f.high)
        elif f.var > var:
            result = f
        else:
            result = self._mk(
                f.var, self._exists_one(f.low, var), self._exists_one(f.high, var)
            )
        self._quant_cache[key] = result
        return result

    def forall(self, f, variables):
        return self.lnot(self.exists(self.lnot(f), variables))

    # -- renaming -----------------------------------------------------------------

    def rename(self, f, mapping):
        """Rename variables per ``mapping`` (old -> new).

        Implemented as ``exists old (f and (old <-> new))`` pair by pair,
        which is correct for any variable order provided each ``new`` is not
        constrained by ``f`` and the mapping is injective.
        """
        for old, new in mapping.items():
            if old == new:
                continue
            f = self._exists_one(self.land(f, self.iff(self.var(old), self.var(new))), old)
        return f

    # -- inspection ------------------------------------------------------------------

    def is_false(self, f):
        return f is self.false

    def is_true(self, f):
        return f is self.true

    def evaluate(self, f, assignment):
        """Evaluate under a {var: bool} assignment (must cover f's support)."""
        while isinstance(f, BddNode):
            f = f.high if assignment[f.var] else f.low
        return f.value

    def support(self, f):
        """The set of variables ``f`` depends on."""
        seen = set()
        result = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if isinstance(node, _Terminal) or node._id in seen:
                continue
            seen.add(node._id)
            result.add(node.var)
            stack.append(node.low)
            stack.append(node.high)
        return result

    def pick_assignment(self, f, variables=()):
        """One satisfying assignment as a dict, or None if unsatisfiable.

        Variables listed in ``variables`` but not in the BDD's support are
        assigned False.
        """
        if f is self.false:
            return None
        assignment = {}
        node = f
        while isinstance(node, BddNode):
            if node.low is not self.false:
                assignment[node.var] = False
                node = node.low
            else:
                assignment[node.var] = True
                node = node.high
        for var in variables:
            assignment.setdefault(var, False)
        return assignment

    def assignments(self, f, variables):
        """Iterate all satisfying assignments over exactly ``variables``."""
        variables = sorted(set(variables))
        for cube in self.cubes(f):
            free = [v for v in variables if v not in cube]
            missing = [v for v in cube if v not in variables]
            if missing:
                raise ValueError("cube mentions variables outside the domain")
            for values in itertools.product([False, True], repeat=len(free)):
                assignment = dict(cube)
                assignment.update(zip(free, values))
                yield assignment

    def cubes(self, f):
        """Iterate the cubes (partial assignments) of ``f``'s DNF, as dicts."""

        def walk(node, partial):
            if node is self.false:
                return
            if node is self.true:
                yield dict(partial)
                return
            partial[node.var] = False
            yield from walk(node.low, partial)
            partial[node.var] = True
            yield from walk(node.high, partial)
            del partial[node.var]

        yield from walk(f, {})

    def count_assignments(self, f, num_vars_domain):
        """Number of satisfying assignments over a domain of variables
        (given as an iterable)."""
        domain = sorted(set(num_vars_domain))
        index = {var: i for i, var in enumerate(domain)}
        cache = {}

        def count(node, depth):
            if node is self.false:
                return 0
            if node is self.true:
                return 2 ** (len(domain) - depth)
            key = (node._id, depth)
            if key in cache:
                return cache[key]
            node_depth = index[node.var]
            scale = 2 ** (node_depth - depth)
            result = scale * (count(node.low, node_depth + 1) + count(node.high, node_depth + 1))
            cache[key] = result
            return result

        return count(f, 0)

    def size(self, f):
        """Number of internal nodes in ``f``."""
        seen = set()
        stack = [f]
        total = 0
        while stack:
            node = stack.pop()
            if isinstance(node, _Terminal) or node._id in seen:
                continue
            seen.add(node._id)
            total += 1
            stack.append(node.low)
            stack.append(node.high)
        return total
