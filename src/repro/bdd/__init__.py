"""A reduced ordered binary decision diagram (ROBDD) package.

Bebop [5] represents sets of boolean-program states and statement transfer
functions implicitly with BDDs; this package is the stand-in for the BDD
library it builds on.  Hash-consed nodes, memoized ``ite``, quantification,
simultaneous renaming (level shift or compose), fused relational-product
kernels (``and_exists``/``and_not``/``exists_set``), bounded op-caches,
mark-and-sweep garbage collection, model iteration, and cube enumeration
are provided.
"""

from repro.bdd.manager import BddManager, BddNode, COUNTERS, reset_counters

__all__ = ["BddManager", "BddNode", "COUNTERS", "reset_counters"]
