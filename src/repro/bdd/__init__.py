"""A reduced ordered binary decision diagram (ROBDD) package.

Bebop [5] represents sets of boolean-program states and statement transfer
functions implicitly with BDDs; this package is the stand-in for the BDD
library it builds on.  Hash-consed nodes, memoized ``ite``, quantification,
order-safe renaming via quantified equivalences, model iteration, and cube
enumeration are provided.
"""

from repro.bdd.manager import BddManager, BddNode

__all__ = ["BddManager", "BddNode"]
