"""Explicit-state engine for boolean programs.

Serves two purposes:

1. **Counterexample extraction** — when the symbolic engine reports a
   reachable assertion failure (or a reachable error label), SLAM needs a
   concrete hierarchical path; an explicit breadth-first search over
   configurations (procedure, node, valuation, call stack) produces the
   shortest one, with every nondeterministic choice pinned.
2. **Differential testing** — on non-recursive programs the set of
   reachable valuations per node must agree with the BDD engine's.

Configurations carry the full call stack, so the search is exact; a config
budget bounds runaway exploration (recursion), returning "not found within
budget" rather than diverging.
"""

import itertools
from collections import deque

from repro.boolprog import ast as B
from repro.bebop.graph import BRANCH, ENTRY, EXIT, STMT, build_bool_graph


class PathStep:
    """One executed statement on a counterexample path."""

    __slots__ = ("proc_name", "stmt", "kind", "outcome")

    def __init__(self, proc_name, stmt, kind, outcome=None):
        self.proc_name = proc_name
        self.stmt = stmt
        self.kind = kind  # "stmt", "branch", "call", "return"
        self.outcome = outcome  # branch outcome (True/False) where relevant

    def __repr__(self):
        extra = "" if self.outcome is None else " %s" % self.outcome
        return "<PathStep %s %s%s>" % (self.proc_name, self.kind, extra)


class ExplicitEngine:
    def __init__(self, program, main="main", max_configs=500_000):
        self.program = program
        self.main = main
        self.max_configs = max_configs
        self.graphs = {
            name: build_bool_graph(proc) for name, proc in program.procedures.items()
        }
        self.configs_explored = 0

    # -- valuation helpers -------------------------------------------------------

    def _local_names(self, proc_name):
        proc = self.program.procedures[proc_name]
        return proc.formals + proc.locals

    def _lookup(self, proc_name, name, globals_vals, locals_vals):
        local_names = self._local_names(proc_name)
        if name in local_names:
            return locals_vals[local_names.index(name)]
        if name in self.program.globals:
            return globals_vals[self.program.globals.index(name)]
        raise KeyError("variable %r not in scope in %s" % (name, proc_name))

    def _store(self, proc_name, name, value, globals_vals, locals_vals):
        local_names = self._local_names(proc_name)
        if name in local_names:
            index = local_names.index(name)
            locals_vals = locals_vals[:index] + (value,) + locals_vals[index + 1 :]
        elif name in self.program.globals:
            index = self.program.globals.index(name)
            globals_vals = globals_vals[:index] + (value,) + globals_vals[index + 1 :]
        else:
            raise KeyError("variable %r not in scope in %s" % (name, proc_name))
        return globals_vals, locals_vals

    def eval_expr(self, expr, proc_name, globals_vals, locals_vals):
        """Evaluate a deterministic expression to a bool."""
        if isinstance(expr, B.BConst):
            return expr.value
        if isinstance(expr, B.BVar):
            return self._lookup(proc_name, expr.name, globals_vals, locals_vals)
        if isinstance(expr, B.BNot):
            return not self.eval_expr(expr.operand, proc_name, globals_vals, locals_vals)
        if isinstance(expr, B.BAnd):
            return self.eval_expr(
                expr.left, proc_name, globals_vals, locals_vals
            ) and self.eval_expr(expr.right, proc_name, globals_vals, locals_vals)
        if isinstance(expr, B.BOr):
            return self.eval_expr(
                expr.left, proc_name, globals_vals, locals_vals
            ) or self.eval_expr(expr.right, proc_name, globals_vals, locals_vals)
        if isinstance(expr, B.BImplies):
            return (
                not self.eval_expr(expr.left, proc_name, globals_vals, locals_vals)
            ) or self.eval_expr(expr.right, proc_name, globals_vals, locals_vals)
        raise ValueError("nondeterministic expression in deterministic position")

    def _rhs_values(self, value, proc_name, globals_vals, locals_vals):
        """Possible values of an assignment RHS / call argument."""
        if isinstance(value, (B.BUnknown, B.BNondet)):
            return (False, True)
        if isinstance(value, B.BChoose):
            if self.eval_expr(value.pos, proc_name, globals_vals, locals_vals):
                return (True,)
            if self.eval_expr(value.neg, proc_name, globals_vals, locals_vals):
                return (False,)
            return (False, True)
        return (self.eval_expr(value, proc_name, globals_vals, locals_vals),)

    def _enforce_ok(self, proc_name, globals_vals, locals_vals):
        proc = self.program.procedures[proc_name]
        if proc.enforce is None:
            return True
        return self.eval_expr(proc.enforce, proc_name, globals_vals, locals_vals)

    # -- the search -------------------------------------------------------------------

    def _initial_configs(self):
        """All initial configurations of main (unconstrained variables)."""
        num_globals = len(self.program.globals)
        local_names = self._local_names(self.main)
        entry = self.graphs[self.main].entry
        for globals_vals in itertools.product((False, True), repeat=num_globals):
            for locals_vals in itertools.product(
                (False, True), repeat=len(local_names)
            ):
                if self._enforce_ok(self.main, globals_vals, locals_vals):
                    yield (self.main, entry.uid, globals_vals, locals_vals, ())

    def search(self, goal):
        """BFS until ``goal(proc, node, globals, locals)`` holds; returns the
        list of PathSteps leading there, or None."""
        parents = {}
        queue = deque()
        for config in self._initial_configs():
            if config not in parents:
                parents[config] = None
                queue.append(config)
        self.configs_explored = 0
        while queue:
            config = queue.popleft()
            self.configs_explored += 1
            if self.configs_explored > self.max_configs:
                return None
            proc_name, node_uid, globals_vals, locals_vals, stack = config
            node = self.graphs[proc_name].nodes[node_uid]
            if goal(proc_name, node, globals_vals, locals_vals):
                return self._rebuild_path(parents, config)
            for successor, step in self._successors(config):
                if successor not in parents:
                    parents[successor] = (config, step)
                    queue.append(successor)
        return None

    def _rebuild_path(self, parents, config):
        steps = []
        while parents[config] is not None:
            config, step = parents[config]
            if step is not None:
                steps.append(step)
        steps.reverse()
        return steps

    def _successors(self, config):
        proc_name, node_uid, globals_vals, locals_vals, stack = config
        graph = self.graphs[proc_name]
        node = graph.nodes[node_uid]
        if node.kind == ENTRY:
            target = node.successor()
            yield (proc_name, target.uid, globals_vals, locals_vals, stack), None
            return
        if node.kind == EXIT:
            # Fell off the end (void procedure): return no values.
            yield from self._do_return(proc_name, [], globals_vals, locals_vals, stack)
            return
        if node.kind == BRANCH:
            cond = node.cond
            if isinstance(cond, B.BNondet):
                outcomes = (False, True)
            else:
                outcomes = (
                    self.eval_expr(cond, proc_name, globals_vals, locals_vals),
                )
            for outcome in outcomes:
                target = node.successor(assume=outcome)
                step = PathStep(proc_name, node.stmt, "branch", outcome)
                yield (proc_name, target.uid, globals_vals, locals_vals, stack), step
            return
        stmt = node.stmt
        step = PathStep(proc_name, stmt, "stmt")
        if isinstance(stmt, (B.BSkip, B.BGoto)):
            target = node.successor()
            yield (proc_name, target.uid, globals_vals, locals_vals, stack), step
            return
        if isinstance(stmt, B.BAssume):
            if self.eval_expr(stmt.cond, proc_name, globals_vals, locals_vals):
                target = node.successor()
                yield (proc_name, target.uid, globals_vals, locals_vals, stack), step
            return
        if isinstance(stmt, B.BAssert):
            # Failing asserts have no successors; callers look for them with
            # a goal predicate. Passing asserts continue.
            if self.eval_expr(stmt.cond, proc_name, globals_vals, locals_vals):
                target = node.successor()
                yield (proc_name, target.uid, globals_vals, locals_vals, stack), step
            return
        if isinstance(stmt, B.BAssign):
            choices = [
                self._rhs_values(value, proc_name, globals_vals, locals_vals)
                for value in stmt.values
            ]
            target = node.successor()
            for picked in itertools.product(*choices):
                new_globals, new_locals = globals_vals, locals_vals
                for name, value in zip(stmt.targets, picked):
                    new_globals, new_locals = self._store(
                        proc_name, name, value, new_globals, new_locals
                    )
                if self._enforce_ok(proc_name, new_globals, new_locals):
                    yield (proc_name, target.uid, new_globals, new_locals, stack), step
            return
        if isinstance(stmt, B.BReturn):
            values = [
                self.eval_expr(v, proc_name, globals_vals, locals_vals)
                for v in stmt.values
            ]
            yield from self._do_return(
                proc_name, values, globals_vals, locals_vals, stack
            )
            return
        if isinstance(stmt, B.BCall):
            yield from self._do_call(proc_name, node, stmt, globals_vals, locals_vals, stack)
            return
        raise AssertionError("unhandled statement %r" % type(stmt).__name__)

    def _do_return(self, proc_name, values, globals_vals, locals_vals, stack):
        if not stack:
            return  # main finished: terminal configuration
        caller_name, caller_node_uid, caller_locals, targets = stack[-1]
        rest = stack[:-1]
        new_globals = globals_vals
        new_caller_locals = caller_locals
        if targets:
            if len(values) != len(targets):
                raise ValueError("return arity mismatch from %s" % proc_name)
            for name, value in zip(targets, values):
                new_globals, new_caller_locals = self._store(
                    caller_name, name, value, new_globals, new_caller_locals
                )
        if not self._enforce_ok(caller_name, new_globals, new_caller_locals):
            return
        caller_graph = self.graphs[caller_name]
        resume = caller_graph.nodes[caller_node_uid].successor()
        step = PathStep(caller_name, caller_graph.nodes[caller_node_uid].stmt, "return")
        yield (
            caller_name,
            resume.uid,
            new_globals,
            new_caller_locals,
            rest,
        ), step

    def _do_call(self, proc_name, node, stmt, globals_vals, locals_vals, stack):
        callee = self.program.procedures[stmt.name]
        arg_choices = [
            self._rhs_values(arg, proc_name, globals_vals, locals_vals)
            for arg in stmt.args
        ]
        callee_entry = self.graphs[stmt.name].entry
        step = PathStep(proc_name, stmt, "call")
        frame = (proc_name, node.uid, locals_vals, tuple(stmt.targets))
        for args in itertools.product(*arg_choices):
            # Callee locals start unconstrained.
            for local_values in itertools.product(
                (False, True), repeat=len(callee.locals)
            ):
                callee_locals = tuple(args) + local_values
                if self._enforce_ok(stmt.name, globals_vals, callee_locals):
                    yield (
                        stmt.name,
                        callee_entry.uid,
                        globals_vals,
                        callee_locals,
                        stack + (frame,),
                    ), step

    # -- convenience goals --------------------------------------------------------------

    def find_assertion_failure(self):
        """Shortest path to a failing assert, or None.

        The failing ``assert`` itself is the path's final step: Newton
        needs it to constrain the claimed counterexample with the
        *negation* of the assert condition — without it, any error whose
        guarding control flow is feasible would be reported as genuine
        even when the asserted fact holds along the path."""
        failing = []

        def goal(proc_name, node, globals_vals, locals_vals):
            if node.kind != STMT or not isinstance(node.stmt, B.BAssert):
                return False
            if self.eval_expr(
                node.stmt.cond, proc_name, globals_vals, locals_vals
            ):
                return False
            failing[:] = [PathStep(proc_name, node.stmt, "stmt")]
            return True

        steps = self.search(goal)
        if steps is None:
            return None
        return steps + failing

    def find_label(self, target_proc, label):
        target_node = self.graphs[target_proc].node_for_label(label)
        if target_node is None:
            raise ValueError("no label %r in %s" % (label, target_proc))

        def goal(proc_name, node, globals_vals, locals_vals):
            return proc_name == target_proc and node is target_node

        return self.search(goal)

    def reachable_valuations(self, max_configs=None):
        """Exhaustive reachable (proc, node) -> set of valuations, for
        differential testing against the symbolic engine."""
        budget = max_configs or self.max_configs
        result = {}
        seen = set()
        queue = deque(self._initial_configs())
        seen.update(queue)
        explored = 0
        while queue:
            config = queue.popleft()
            explored += 1
            if explored > budget:
                raise RuntimeError("state budget exhausted")
            proc_name, node_uid, globals_vals, locals_vals, stack = config
            result.setdefault((proc_name, node_uid), set()).add(
                (globals_vals, locals_vals)
            )
            for successor, _ in self._successors(config):
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return result
