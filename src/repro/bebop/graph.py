"""Explicit control-flow graphs for boolean procedures.

Mirrors :mod:`repro.cfront.cfg` for the boolean program AST.  Node kinds:
``entry``, ``exit``, ``stmt`` (Skip/Assign/Assume/Assert/Call/Goto/Return)
and ``branch`` (If/While conditions, with True/False edge labels).
"""

from repro.boolprog import ast as B

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"


class BNode:
    __slots__ = ("uid", "kind", "stmt", "cond", "edges", "preds")

    def __init__(self, uid, kind, stmt=None, cond=None):
        self.uid = uid
        self.kind = kind
        self.stmt = stmt
        self.cond = cond
        self.edges = []  # list of (target, assume) with assume in {None, True, False}
        self.preds = []  # list of (source, assume)

    def successor(self, assume=None):
        for target, label in self.edges:
            if label == assume:
                return target
        return None

    def __repr__(self):
        return "BNode(%d, %s)" % (self.uid, self.kind)


class BGraph:
    def __init__(self, procedure):
        self.procedure = procedure
        self.nodes = []
        self.entry = None
        self.exit = None
        self.labels = {}

    def new_node(self, kind, stmt=None, cond=None):
        node = BNode(len(self.nodes), kind, stmt, cond)
        self.nodes.append(node)
        return node

    def add_edge(self, source, target, assume=None):
        source.edges.append((target, assume))
        target.preds.append((source, assume))

    def node_for_label(self, label):
        return self.labels.get(label)

    def statement_nodes(self):
        return [n for n in self.nodes if n.kind == STMT]


class _Builder:
    def __init__(self, procedure):
        self.graph = BGraph(procedure)
        self._pending_gotos = []

    def build(self):
        graph = self.graph
        graph.entry = graph.new_node(ENTRY)
        graph.exit = graph.new_node(EXIT)
        head = self._build_body(graph.procedure.body, graph.exit)
        graph.add_edge(graph.entry, head)
        for node, label in self._pending_gotos:
            target = graph.labels.get(label)
            if target is None:
                raise ValueError(
                    "goto to unknown label %r in %s" % (label, graph.procedure.name)
                )
            graph.add_edge(node, target)
        return graph

    def _register_labels(self, stmt, node):
        for label in stmt.labels:
            self.graph.labels[label] = node

    def _build_body(self, stmts, follow):
        head = follow
        for stmt in reversed(stmts):
            head = self._build_stmt(stmt, head)
        return head

    def _build_stmt(self, stmt, follow):
        graph = self.graph
        if isinstance(stmt, B.BIf):
            node = graph.new_node(BRANCH, stmt, stmt.cond)
            self._register_labels(stmt, node)
            then_head = self._build_body(stmt.then_body, follow)
            else_head = self._build_body(stmt.else_body, follow)
            graph.add_edge(node, then_head, assume=True)
            graph.add_edge(node, else_head, assume=False)
            return node
        if isinstance(stmt, B.BWhile):
            node = graph.new_node(BRANCH, stmt, stmt.cond)
            self._register_labels(stmt, node)
            body_head = self._build_body(stmt.body, node)
            graph.add_edge(node, body_head, assume=True)
            graph.add_edge(node, follow, assume=False)
            return node
        if isinstance(stmt, B.BGoto):
            node = graph.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            self._pending_gotos.append((node, stmt.label))
            return node
        if isinstance(stmt, B.BReturn):
            node = graph.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            graph.add_edge(node, graph.exit)
            return node
        if isinstance(stmt, (B.BSkip, B.BAssign, B.BAssume, B.BAssert, B.BCall)):
            node = graph.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            graph.add_edge(node, follow)
            return node
        raise AssertionError("unhandled boolean statement %r" % type(stmt).__name__)


def build_bool_graph(procedure):
    return _Builder(procedure).build()
