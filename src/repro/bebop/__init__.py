"""Bebop — the model checker for boolean programs [5].

Computes the set of reachable states for each statement of a boolean
program with an interprocedural dataflow algorithm in the spirit of
Sharir-Pnueli and Reps-Horwitz-Sagiv [31, 28]:

- sets of states (bit vectors over the variables in scope) are represented
  implicitly with binary decision diagrams (:mod:`repro.bdd`);
- control flow is an explicit graph, as in a compiler (unlike symbolic
  model checkers that encode control in the BDD);
- procedures are summarized by input/output relations over globals,
  formals, and return values, so recursion needs no extra machinery.

The package also contains an explicit-state engine used to extract concrete
counterexample paths (hierarchical traces) and to differentially test the
symbolic engine.
"""

from repro.bebop.checker import Bebop, BebopResult
from repro.bebop.explicit import ExplicitEngine
from repro.bebop.reuse import BebopReuse

__all__ = ["Bebop", "BebopResult", "BebopReuse", "ExplicitEngine"]
