"""Cross-iteration state for the Bebop fast path.

CEGAR re-checks a near-identical boolean program every iteration: one
refinement adds a few predicates, but most procedures — and therefore most
compiled transfer relations — are textually unchanged.  A
:class:`BebopReuse` carries one :class:`~repro.bdd.manager.BddManager`,
one slot table, and the compiled-transfer cache across
:class:`~repro.bebop.checker.Bebop` runs, so unchanged procedures skip
recompilation entirely and their transfer BDDs stay hash-consed in place.

Between iterations :meth:`end_iteration` garbage-collects the manager down
to the compiled tables (dropping the dead path edges and summaries of the
finished run) and flushes the op-caches, keeping memory bounded over long
refinement loops.  The driver must *not* call it after the final
iteration: the returned result still queries its path-edge BDDs, and
collecting them would break hash-consed identity for later queries.
"""

from repro.bdd import BddManager


class BebopReuse:
    """Persistent manager + compiled-transfer cache shared by Bebop runs."""

    def __init__(self, max_cache_entries=None, persistent=None):
        self.manager = BddManager(max_cache_entries=max_cache_entries)
        self.slots = {}
        self.compiled = {}  # proc name -> CompiledProc
        #: Optional :class:`repro.serve.BebopTableStore`: fingerprint
        #: misses then try the disk store before compiling, and fresh
        #: compilations are saved for later runs/processes.
        self.persistent = persistent
        self.iterations = 0
        self.transfers_compiled = 0
        self.transfers_reused = 0
        self.tables_loaded = 0
        self.nodes_collected = 0

    def roots(self):
        """Every BDD that must survive a between-iteration collection."""
        for table in self.compiled.values():
            for bdd in table.iter_bdds():
                if bdd is not None:
                    yield bdd

    def end_iteration(self):
        """Drop the finished run's state and reclaim dead nodes.

        Only call between iterations — never after the last one, whose
        result still holds live path-edge BDDs.
        """
        self.iterations += 1
        self.nodes_collected += self.manager.collect_garbage(self.roots())

    def snapshot(self):
        return {
            "iterations": self.iterations,
            "transfers_compiled": self.transfers_compiled,
            "transfers_reused": self.transfers_reused,
            "tables_loaded": self.tables_loaded,
            "nodes_collected": self.nodes_collected,
            "compiled_procedures": len(self.compiled),
            "live_nodes": self.manager.live_nodes,
        }
