"""The symbolic (BDD-based) interprocedural reachability engine.

For every node ``v`` of every procedure ``P`` the engine computes a *path
edge* relation ``PE(v)``: a BDD over ``entry-bank(P) ∪ current-vars``
relating the values of globals and formals at P's entry to the values of
the variables in scope at ``v`` (the Reps-Horwitz-Sagiv formulation of
Sharir-Pnueli's functional approach).  Procedure behaviour is captured by
*summaries*: relations over dedicated input slots (globals and formals at
entry) and output slots (globals at exit plus returned values).  Call sites
compose the caller's path edge with the callee's summary; newly reached
entry contexts seed the callee; summary growth re-triggers the call sites.

Variable banks are realized by giving every logical slot two BDD variables
(current = ``2*slot``, shadow = ``2*slot+1``); shadows carry post-state
values during assignment relations and are renamed back.
"""

from repro.boolprog import ast as B
from repro.bdd import BddManager
from repro.bebop.graph import BRANCH, ENTRY, EXIT, STMT, build_bool_graph


class BebopError(Exception):
    pass


class BebopResult:
    """Reachability facts computed by a run."""

    def __init__(self, checker):
        self._checker = checker
        self.assertion_failures = checker.assertion_failures
        self.steps = checker.steps

    def reachable_states(self, proc_name, label=None, node=None):
        """BDD of reachable states (over current vars) at a node or label."""
        return self._checker.reachable_states(proc_name, label=label, node=node)

    def is_label_reachable(self, proc_name, label):
        bdd = self.reachable_states(proc_name, label=label)
        return not self._checker.manager.is_false(bdd)

    def invariant_cubes(self, proc_name, label=None, node=None):
        """The reachable-state set at a program point as a list of cubes,
        each a dict mapping variable names to True/False."""
        return self._checker.invariant_cubes(proc_name, label=label, node=node)

    def invariant_string(self, proc_name, label=None, node=None):
        cubes = self.invariant_cubes(proc_name, label=label, node=node)
        if not cubes:
            return "false"
        parts = []
        for cube in cubes:
            lits = [
                ("" if value else "!") + "{%s}" % name
                for name, value in sorted(cube.items())
            ]
            parts.append(" && ".join(lits) if lits else "true")
        return " || ".join("(%s)" % p if len(parts) > 1 else p for p in parts)

    @property
    def error_reached(self):
        return bool(self.assertion_failures)

    def labels(self, proc_name):
        """All goto labels of a procedure's graph."""
        return sorted(self._checker.graphs[proc_name].labels)

    def all_invariants(self):
        """Mapping (procedure, label) -> invariant string, for every label
        of every procedure — Bebop "computes the set of reachable states
        for each statement"; labels are the addressable ones."""
        result = {}
        for proc_name in self._checker.graphs:
            for label in self.labels(proc_name):
                result[(proc_name, label)] = self.invariant_string(
                    proc_name, label=label
                )
        return result

    def statistics(self):
        """Engine statistics: worklist steps, BDD nodes allocated, summary
        sizes (in BDD nodes) per procedure."""
        manager = self._checker.manager
        return {
            "worklist_steps": self.steps,
            "bdd_nodes": manager._next_id,
            "procedures": len(self._checker.graphs),
            "summary_nodes": {
                name: manager.size(summary)
                for name, summary in self._checker.summaries.items()
            },
        }

    def format_report(self):
        """A human-readable dump of every labelled invariant."""
        lines = []
        for (proc_name, label), text in sorted(self.all_invariants().items()):
            lines.append("%s/%s:" % (proc_name, label))
            lines.append("    %s" % text)
        stats = self.statistics()
        lines.append(
            "(%d worklist steps, %d BDD nodes)"
            % (stats["worklist_steps"], stats["bdd_nodes"])
        )
        return "\n".join(lines)


class Bebop:
    """One model-checking run over a boolean program."""

    def __init__(self, program, main="main", context=None):
        if main not in program.procedures:
            raise BebopError("boolean program has no %r procedure" % main)
        self.program = program
        self.main = main
        self.context = context
        self.manager = BddManager()
        self.graphs = {
            name: build_bool_graph(proc) for name, proc in program.procedures.items()
        }
        self._slots = {}
        self._pe = {}  # (proc, node uid) -> BDD
        self.summaries = {}  # proc -> BDD over in/out slots
        self.call_sites = {}  # callee -> set of (caller proc, node)
        self.assertion_failures = []  # (proc, node, states bdd)
        self._enforce_bdd = {}
        self.steps = 0

    # -- slots and variables ---------------------------------------------------

    def _slot(self, key):
        if key not in self._slots:
            self._slots[key] = len(self._slots)
        return self._slots[key]

    def _cur(self, key):
        return 2 * self._slot(key)

    def _shadow(self, key):
        return 2 * self._slot(key) + 1

    def _var_key(self, proc_name, name):
        """The slot key for variable ``name`` in ``proc_name``'s scope."""
        proc = self.program.procedures[proc_name]
        if name in proc.formals or name in proc.locals:
            return ("l", proc_name, name)
        if name in self.program.globals:
            return ("g", name)
        raise BebopError("variable %r not in scope in %s" % (name, proc_name))

    def _entry_names(self, proc_name):
        """Names visible in a procedure's entry context: globals + formals."""
        proc = self.program.procedures[proc_name]
        return list(self.program.globals) + list(proc.formals)

    def _scope_keys(self, proc_name):
        proc = self.program.procedures[proc_name]
        keys = [("g", g) for g in self.program.globals]
        keys += [("l", proc_name, v) for v in proc.formals + proc.locals]
        return keys

    # -- expression compilation ----------------------------------------------------

    def expr_bdd(self, expr, proc_name):
        m = self.manager
        if isinstance(expr, B.BConst):
            return m.constant(expr.value)
        if isinstance(expr, B.BVar):
            return m.var(self._cur(self._var_key(proc_name, expr.name)))
        if isinstance(expr, B.BNot):
            return m.lnot(self.expr_bdd(expr.operand, proc_name))
        if isinstance(expr, B.BAnd):
            return m.land(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, B.BOr):
            return m.lor(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, B.BImplies):
            return m.implies(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, (B.BNondet, B.BUnknown, B.BChoose)):
            raise BebopError(
                "nondeterministic expression in a deterministic position"
            )
        raise AssertionError("unhandled expression %r" % type(expr).__name__)

    def _enforce(self, proc_name):
        if proc_name not in self._enforce_bdd:
            proc = self.program.procedures[proc_name]
            if proc.enforce is None:
                self._enforce_bdd[proc_name] = self.manager.true
            else:
                self._enforce_bdd[proc_name] = self.expr_bdd(proc.enforce, proc_name)
        return self._enforce_bdd[proc_name]

    # -- the fixpoint -----------------------------------------------------------

    def run(self):
        if self.context is not None:
            with self.context.phase("bebop"):
                result = self._run()
            self.context.stats.register("bebop", result.statistics)
            return result
        return self._run()

    def _run(self):
        m = self.manager
        # Seed main: identity between entry bank and current values, all
        # contexts allowed (initial values are unconstrained).
        main_graph = self.graphs[self.main]
        identity = m.true
        for name in self._entry_names(self.main):
            key = self._var_key(self.main, name)
            identity = m.land(
                identity,
                m.iff(m.var(self._cur(("ent", self.main, name))), m.var(self._cur(key))),
            )
        worklist = []
        self._join(self.main, main_graph.entry, identity, worklist)
        while worklist:
            proc_name, node = worklist.pop()
            self.steps += 1
            self._process(proc_name, node, worklist)
        return BebopResult(self)

    def _pe_at(self, proc_name, node):
        return self._pe.get((proc_name, node.uid), self.manager.false)

    def _join(self, proc_name, node, pe, worklist):
        pe = self.manager.land(pe, self._enforce(proc_name))
        old = self._pe_at(proc_name, node)
        new = self.manager.lor(old, pe)
        if new is not old:
            self._pe[(proc_name, node.uid)] = new
            worklist.append((proc_name, node))

    def _process(self, proc_name, node, worklist):
        m = self.manager
        pe = self._pe_at(proc_name, node)
        if m.is_false(pe):
            return
        graph = self.graphs[proc_name]
        if node.kind == ENTRY:
            for target, _ in node.edges:
                self._join(proc_name, target, pe, worklist)
            return
        if node.kind == EXIT:
            self._update_summary(proc_name, pe, worklist)
            return
        if node.kind == BRANCH:
            cond = node.cond
            if isinstance(cond, B.BNondet):
                for target, _ in node.edges:
                    self._join(proc_name, target, pe, worklist)
                return
            cond_bdd = self.expr_bdd(cond, proc_name)
            for target, assume in node.edges:
                guard = cond_bdd if assume else m.lnot(cond_bdd)
                self._join(proc_name, target, m.land(pe, guard), worklist)
            return
        stmt = node.stmt
        if isinstance(stmt, (B.BSkip, B.BGoto)):
            out = pe
        elif isinstance(stmt, B.BAssume):
            out = m.land(pe, self.expr_bdd(stmt.cond, proc_name))
        elif isinstance(stmt, B.BAssert):
            cond_bdd = self.expr_bdd(stmt.cond, proc_name)
            violating = m.land(pe, m.lnot(cond_bdd))
            if not m.is_false(violating):
                self._record_failure(proc_name, node, violating)
            out = m.land(pe, cond_bdd)
        elif isinstance(stmt, B.BAssign):
            out = self._apply_assign(proc_name, pe, stmt)
        elif isinstance(stmt, B.BReturn):
            out = self._apply_return(proc_name, pe, stmt)
        elif isinstance(stmt, B.BCall):
            out = self._apply_call(proc_name, node, pe, stmt, worklist)
        else:
            raise AssertionError("unhandled statement %r" % type(stmt).__name__)
        for target, _ in node.edges:
            self._join(proc_name, target, out, worklist)

    def _record_failure(self, proc_name, node, states):
        for i, (p, n, old) in enumerate(self.assertion_failures):
            if p == proc_name and n is node:
                self.assertion_failures[i] = (p, n, self.manager.lor(old, states))
                return
        self.assertion_failures.append((proc_name, node, states))

    # -- transfer functions ---------------------------------------------------------

    def _apply_assign(self, proc_name, pe, stmt):
        """Parallel assignment through shadow variables."""
        m = self.manager
        constraint = m.true
        target_keys = []
        for target, value in zip(stmt.targets, stmt.values):
            key = self._var_key(proc_name, target)
            target_keys.append(key)
            shadow = m.var(self._shadow(key))
            if isinstance(value, B.BUnknown) or isinstance(value, B.BNondet):
                continue  # unconstrained
            if isinstance(value, B.BChoose):
                # choose(pos, neg): true if pos, else false if neg, else
                # nondeterministic — pos takes priority when both hold.
                pos = self.expr_bdd(value.pos, proc_name)
                neg = self.expr_bdd(value.neg, proc_name)
                constraint = m.land(constraint, m.implies(pos, shadow))
                constraint = m.land(
                    constraint,
                    m.implies(m.land(m.lnot(pos), neg), m.lnot(shadow)),
                )
            else:
                constraint = m.land(
                    constraint, m.iff(shadow, self.expr_bdd(value, proc_name))
                )
        combined = m.land(pe, constraint)
        combined = m.exists(combined, [self._cur(k) for k in target_keys])
        return m.rename(
            combined, {self._shadow(k): self._cur(k) for k in target_keys}
        )

    def _apply_return(self, proc_name, pe, stmt):
        """Bind returned values to the procedure's output slots."""
        m = self.manager
        out = pe
        for index, value in enumerate(stmt.values):
            out_var = m.var(self._cur(("out", proc_name, ("r", index))))
            out = m.land(out, m.iff(out_var, self.expr_bdd(value, proc_name)))
        return out

    def _update_summary(self, proc_name, exit_pe, worklist):
        """Project the exit path edge onto the summary in/out slots."""
        m = self.manager
        proc = self.program.procedures[proc_name]
        # Rename entry bank -> in slots; current globals -> out slots.
        mapping = {}
        for name in self._entry_names(proc_name):
            mapping[self._cur(("ent", proc_name, name))] = self._cur(
                ("in", proc_name, name)
            )
        for g in self.program.globals:
            mapping[self._cur(("g", g))] = self._cur(("out", proc_name, ("g", g)))
        projected = m.exists(
            exit_pe,
            [self._cur(("l", proc_name, v)) for v in proc.formals + proc.locals],
        )
        summary_add = m.rename(projected, mapping)
        old = self.summaries.get(proc_name, m.false)
        new = m.lor(old, summary_add)
        if new is not old:
            self.summaries[proc_name] = new
            for caller, call_node in self.call_sites.get(proc_name, ()):
                worklist.append((caller, call_node))

    def _apply_call(self, proc_name, node, pe, stmt, worklist):
        m = self.manager
        callee = self.program.procedures.get(stmt.name)
        if callee is None:
            raise BebopError("call to undefined procedure %r" % stmt.name)
        self.call_sites.setdefault(stmt.name, set()).add((proc_name, node))
        if len(stmt.args) != len(callee.formals):
            raise BebopError("arity mismatch calling %r" % stmt.name)
        if len(stmt.targets) not in (0, callee.returns):
            raise BebopError(
                "call to %r uses %d results of %d"
                % (stmt.name, len(stmt.targets), callee.returns)
            )
        # Bind actuals (and globals) to the callee's input slots.
        bind = m.true
        for formal, arg in zip(callee.formals, stmt.args):
            in_var = m.var(self._cur(("in", stmt.name, formal)))
            if isinstance(arg, (B.BUnknown, B.BNondet)):
                continue  # unconstrained actual
            if isinstance(arg, B.BChoose):
                pos = self.expr_bdd(arg.pos, proc_name)
                neg = self.expr_bdd(arg.neg, proc_name)
                bind = m.land(bind, m.implies(pos, in_var))
                bind = m.land(
                    bind, m.implies(m.land(m.lnot(pos), neg), m.lnot(in_var))
                )
            else:
                bind = m.land(bind, m.iff(in_var, self.expr_bdd(arg, proc_name)))
        for g in self.program.globals:
            bind = m.land(
                bind,
                m.iff(m.var(self._cur(("in", stmt.name, g))), m.var(self._cur(("g", g)))),
            )
        bound = m.land(pe, bind)
        # Seed the callee's entry with the newly reached contexts.
        in_vars = [
            self._cur(("in", stmt.name, name)) for name in self._entry_names(stmt.name)
        ]
        everything_else = [
            v
            for v in m.support(bound)
            if v not in in_vars
        ]
        contexts = m.exists(bound, everything_else)
        entry_identity = m.true
        mapping = {}
        for name in self._entry_names(stmt.name):
            ent = self._cur(("ent", stmt.name, name))
            cur = self._cur(self._var_key(stmt.name, name))
            mapping[self._cur(("in", stmt.name, name))] = ent
            entry_identity = m.land(entry_identity, m.iff(m.var(ent), m.var(cur)))
        callee_entry_pe = m.land(m.rename(contexts, mapping), entry_identity)
        self._join(stmt.name, self.graphs[stmt.name].entry, callee_entry_pe, worklist)
        # Compose with the callee's summary, if any yet.
        summary = self.summaries.get(stmt.name, m.false)
        if m.is_false(summary):
            return m.false
        composed = m.land(bound, summary)
        # Old values of globals and call targets die; inputs are consumed.
        dead = set(in_vars)
        dead.update(self._cur(("g", g)) for g in self.program.globals)
        target_keys = [self._var_key(proc_name, t) for t in stmt.targets]
        dead.update(self._cur(k) for k in target_keys)
        composed = m.exists(composed, dead)
        # Rebind callee outputs to caller variables.
        out_mapping = {}
        for g in self.program.globals:
            out_mapping[self._cur(("out", stmt.name, ("g", g)))] = self._cur(("g", g))
        for index, key in enumerate(target_keys):
            out_mapping[self._cur(("out", stmt.name, ("r", index)))] = self._cur(key)
        composed = m.rename(composed, out_mapping)
        # Unused return values are dropped.
        if not stmt.targets and callee.returns:
            composed = m.exists(
                composed,
                [
                    self._cur(("out", stmt.name, ("r", i)))
                    for i in range(callee.returns)
                ],
            )
        return composed

    # -- queries ------------------------------------------------------------------

    def _node_for(self, proc_name, label=None, node=None):
        graph = self.graphs[proc_name]
        if node is not None:
            return node
        if label is not None:
            found = graph.node_for_label(label)
            if found is None:
                raise BebopError("no label %r in %s" % (label, proc_name))
            return found
        return graph.exit

    def reachable_states(self, proc_name, label=None, node=None):
        m = self.manager
        target = self._node_for(proc_name, label, node)
        pe = self._pe_at(proc_name, target)
        ent_vars = [
            self._cur(("ent", proc_name, name))
            for name in self._entry_names(proc_name)
        ]
        return m.exists(pe, ent_vars)

    def invariant_cubes(self, proc_name, label=None, node=None):
        m = self.manager
        states = self.reachable_states(proc_name, label=label, node=node)
        index_to_name = {}
        for key in self._scope_keys(proc_name):
            name = key[1] if key[0] == "g" else key[2]
            index_to_name[self._cur(key)] = name
        cubes = []
        for cube in m.cubes(states):
            named = {}
            for var, value in cube.items():
                if var in index_to_name:
                    named[index_to_name[var]] = value
            cubes.append(named)
        return cubes
