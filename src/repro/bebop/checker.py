"""The symbolic (BDD-based) interprocedural reachability engine.

For every node ``v`` of every procedure ``P`` the engine computes a *path
edge* relation ``PE(v)``: a BDD over ``entry-bank(P) ∪ current-vars``
relating the values of globals and formals at P's entry to the values of
the variables in scope at ``v`` (the Reps-Horwitz-Sagiv formulation of
Sharir-Pnueli's functional approach).  Procedure behaviour is captured by
*summaries*: relations over dedicated input slots (globals and formals at
entry) and output slots (globals at exit plus returned values).  Call sites
compose the caller's path edge with the callee's summary; newly reached
entry contexts seed the callee; summary growth re-triggers the call sites.

Variable banks are realized by giving every logical slot two BDD variables
(current = ``2*slot``, shadow = ``2*slot+1``); shadows carry post-state
values during assignment relations and are renamed back — with the
interleaved numbering the shadow→current rename is a level shift.

Two execution strategies share the data model:

- the **fast path** (default) compiles every statement/edge once into a
  cached transfer relation (constraint BDD + quantified variable set +
  rename map), applies it with the manager's fused ``and_exists``
  relational product, and propagates *frontiers* (only states not seen
  before flow through transfers).  Compiled procedures can be reused
  across CEGAR iterations via :class:`repro.bebop.reuse.BebopReuse`.
- the **legacy path** (``legacy=True`` / ``--bebop-legacy``) re-derives
  every transfer BDD at every worklist visit and propagates full path
  edges, kept for differential testing and as the benchmark baseline.

Both paths pre-allocate variable slots in one deterministic order, so
they build bit-identical BDDs and report identical invariants.
"""

import hashlib

from repro.boolprog import ast as B
from repro.boolprog.printer import print_bool_body, print_bool_expr
from repro.bdd import BddManager
from repro.bebop.graph import BRANCH, ENTRY, EXIT, STMT, build_bool_graph

_EMPTY = frozenset()


class BebopError(Exception):
    pass


def _called_procedures(stmts, found):
    for stmt in stmts:
        if isinstance(stmt, B.BCall):
            found.add(stmt.name)
        elif isinstance(stmt, B.BIf):
            _called_procedures(stmt.then_body, found)
            _called_procedures(stmt.else_body, found)
        elif isinstance(stmt, B.BWhile):
            _called_procedures(stmt.body, found)
    return found


def procedure_fingerprint(program, proc):
    """A digest of everything a compiled transfer table depends on: the
    global list (slot layout and call/summary maps), the procedure's own
    text, and the interface (formals/returns) of every callee."""
    called = sorted(_called_procedures(proc.body, set()))
    interfaces = tuple(
        (name,) + (
            (tuple(program.procedures[name].formals), program.procedures[name].returns)
            if name in program.procedures
            else ("?",)
        )
        for name in called
    )
    parts = (
        tuple(program.globals),
        tuple(proc.formals),
        tuple(proc.locals),
        proc.returns,
        print_bool_expr(proc.enforce) if proc.enforce is not None else "",
        print_bool_body(proc.body, 0),
        interfaces,
    )
    return hashlib.sha1(repr(parts).encode()).hexdigest()


class CompiledTransfer:
    """An assignment as a relation: ``exists targets (pe and constraint)``
    then shadow→current rename (a level shift)."""

    __slots__ = ("constraint", "quantified", "shift_map")

    def __init__(self, constraint, quantified, shift_map):
        self.constraint = constraint
        self.quantified = quantified
        self.shift_map = shift_map


class CompiledCall:
    """A call site's static part: the actual/global binding relation, the
    variables consumed by summary composition, and the output rebinding."""

    __slots__ = ("callee", "bind", "in_set", "dead", "out_map")

    def __init__(self, callee, bind, in_set, dead, out_map):
        self.callee = callee
        self.bind = bind
        self.in_set = in_set
        self.dead = dead
        self.out_map = out_map


class CompiledProc:
    """Everything derivable from a procedure's text alone, compiled once:
    per-node transfer relations plus the entry/summary plumbing."""

    __slots__ = (
        "fingerprint",
        "enforce",
        "entry_identity",
        "ent_vars",
        "in_to_ent",
        "summary_locals",
        "summary_map",
        "transfers",
    )

    def __init__(self, fingerprint):
        self.fingerprint = fingerprint
        self.enforce = None
        self.entry_identity = None
        self.ent_vars = []
        self.in_to_ent = {}
        self.summary_locals = _EMPTY
        self.summary_map = {}
        self.transfers = {}  # node uid -> (kind, payload)

    def iter_bdds(self):
        """Every BDD the table holds — the GC roots for manager reuse."""
        yield self.enforce
        yield self.entry_identity
        for kind, payload in self.transfers.values():
            if payload is None:
                continue
            if kind == "assign":
                yield payload.constraint
            elif kind == "call":
                yield payload.bind
            else:  # branch / assume / assert / return conditions
                yield payload


class BebopResult:
    """Reachability facts computed by a run."""

    def __init__(self, checker):
        self._checker = checker
        self.assertion_failures = checker.assertion_failures
        self.steps = checker.steps

    def reachable_states(self, proc_name, label=None, node=None):
        """BDD of reachable states (over current vars) at a node or label."""
        return self._checker.reachable_states(proc_name, label=label, node=node)

    def is_label_reachable(self, proc_name, label):
        bdd = self.reachable_states(proc_name, label=label)
        return not self._checker.manager.is_false(bdd)

    def invariant_cubes(self, proc_name, label=None, node=None):
        """The reachable-state set at a program point as a list of cubes,
        each a dict mapping variable names to True/False."""
        return self._checker.invariant_cubes(proc_name, label=label, node=node)

    def invariant_string(self, proc_name, label=None, node=None):
        cubes = self.invariant_cubes(proc_name, label=label, node=node)
        if not cubes:
            return "false"
        parts = []
        for cube in cubes:
            lits = [
                ("" if value else "!") + "{%s}" % name
                for name, value in sorted(cube.items())
            ]
            parts.append(" && ".join(lits) if lits else "true")
        return " || ".join("(%s)" % p if len(parts) > 1 else p for p in parts)

    @property
    def error_reached(self):
        return bool(self.assertion_failures)

    def labels(self, proc_name):
        """All goto labels of a procedure's graph."""
        return sorted(self._checker.graphs[proc_name].labels)

    def all_invariants(self):
        """Mapping (procedure, label) -> invariant string, for every label
        of every procedure — Bebop "computes the set of reachable states
        for each statement"; labels are the addressable ones."""
        result = {}
        for proc_name in self._checker.graphs:
            for label in self.labels(proc_name):
                result[(proc_name, label)] = self.invariant_string(
                    proc_name, label=label
                )
        return result

    def statistics(self):
        """Engine statistics: worklist steps, BDD/op counters, transfer
        compilation and reuse, summary sizes (in BDD nodes) per procedure."""
        checker = self._checker
        manager = checker.manager
        return {
            "worklist_steps": self.steps,
            "bdd_nodes": manager._next_id,
            "procedures": len(checker.graphs),
            "mode": "legacy" if checker.legacy else "fast",
            "transfers_compiled": checker.transfers_compiled,
            "transfers_reused": checker.transfers_reused,
            "tables_loaded": checker.tables_loaded,
            "tables_saved": checker.tables_saved,
            "frontier_joins": checker.frontier_joins,
            "bdd": manager.stats_snapshot(),
            "summary_nodes": {
                name: manager.size(summary)
                for name, summary in checker.summaries.items()
            },
        }

    def format_report(self):
        """A human-readable dump of every labelled invariant."""
        lines = []
        for (proc_name, label), text in sorted(self.all_invariants().items()):
            lines.append("%s/%s:" % (proc_name, label))
            lines.append("    %s" % text)
        stats = self.statistics()
        lines.append(
            "(%d worklist steps, %d BDD nodes)"
            % (stats["worklist_steps"], stats["bdd_nodes"])
        )
        return "\n".join(lines)


class Bebop:
    """One model-checking run over a boolean program.

    ``legacy`` selects the uncompiled full-set propagation engine (defaults
    to ``context.options.bebop_legacy``, else False).  ``reuse`` accepts a
    :class:`repro.bebop.reuse.BebopReuse` carrying a persistent manager,
    slot table, and compiled-transfer cache across runs (fast path only).
    """

    def __init__(self, program, main="main", context=None, legacy=None, reuse=None):
        if main not in program.procedures:
            raise BebopError("boolean program has no %r procedure" % main)
        self.program = program
        self.main = main
        self.context = context
        if legacy is None:
            options = getattr(context, "options", None)
            legacy = bool(getattr(options, "bebop_legacy", False))
        self.legacy = legacy
        self.reuse = reuse if not legacy else None
        if self.reuse is not None:
            self.manager = self.reuse.manager
            self._slots = self.reuse.slots
        else:
            self.manager = BddManager()
            self._slots = {}
        # Disk-backed compiled-table persistence: from the reuse carrier
        # when it has one, else straight off the context's store (the
        # plain `check` path without a CEGAR reuse object).
        self._table_store = None
        if not legacy:
            if self.reuse is not None and getattr(self.reuse, "persistent", None):
                self._table_store = self.reuse.persistent
            elif getattr(context, "store", None) is not None:
                from repro.serve import BebopTableStore

                self._table_store = BebopTableStore(context.store)
        self.tables_loaded = 0
        self.tables_saved = 0
        self.graphs = {
            name: build_bool_graph(proc) for name, proc in program.procedures.items()
        }
        self._pe = {}  # (proc, node uid) -> BDD
        self.summaries = {}  # proc -> BDD over in/out slots
        self.call_sites = {}  # callee -> set of (caller proc, node)
        self.assertion_failures = []  # (proc, node, states bdd)
        self._enforce_bdd = {}
        self.steps = 0
        self.transfers_compiled = 0
        self.transfers_reused = 0
        self.frontier_joins = 0
        self._expr_cache = {}
        self._preallocate_slots()
        self._compiled = None if legacy else self._compile_program()

    # -- slots and variables ---------------------------------------------------

    def _preallocate_slots(self):
        """Assign every slot the program can touch, in one deterministic
        order, before any BDD is built.

        Entry-bank and current variables interleave per name (the identity
        relations the engine builds between them stay linear-sized), and
        the order no longer depends on worklist visitation — the fast and
        legacy paths build bit-identical BDDs.
        """
        for proc_name, proc in self.program.procedures.items():
            for name in self._entry_names(proc_name):
                self._slot(("ent", proc_name, name))
                self._slot(self._var_key(proc_name, name))
            for v in proc.locals:
                self._slot(("l", proc_name, v))
            for name in self._entry_names(proc_name):
                self._slot(("in", proc_name, name))
            for g in self.program.globals:
                self._slot(("out", proc_name, ("g", g)))
            for index in range(proc.returns):
                self._slot(("out", proc_name, ("r", index)))

    def _slot(self, key):
        if key not in self._slots:
            self._slots[key] = len(self._slots)
        return self._slots[key]

    def _cur(self, key):
        return 2 * self._slot(key)

    def _shadow(self, key):
        return 2 * self._slot(key) + 1

    def _var_key(self, proc_name, name):
        """The slot key for variable ``name`` in ``proc_name``'s scope."""
        proc = self.program.procedures[proc_name]
        if name in proc.formals or name in proc.locals:
            return ("l", proc_name, name)
        if name in self.program.globals:
            return ("g", name)
        raise BebopError("variable %r not in scope in %s" % (name, proc_name))

    def _entry_names(self, proc_name):
        """Names visible in a procedure's entry context: globals + formals."""
        proc = self.program.procedures[proc_name]
        return list(self.program.globals) + list(proc.formals)

    def _scope_keys(self, proc_name):
        proc = self.program.procedures[proc_name]
        keys = [("g", g) for g in self.program.globals]
        keys += [("l", proc_name, v) for v in proc.formals + proc.locals]
        return keys

    # -- expression compilation ----------------------------------------------------

    def expr_bdd(self, expr, proc_name):
        m = self.manager
        if isinstance(expr, B.BConst):
            return m.constant(expr.value)
        if isinstance(expr, B.BVar):
            return m.var(self._cur(self._var_key(proc_name, expr.name)))
        if isinstance(expr, B.BNot):
            return m.lnot(self.expr_bdd(expr.operand, proc_name))
        if isinstance(expr, B.BAnd):
            return m.land(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, B.BOr):
            return m.lor(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, B.BImplies):
            return m.implies(
                self.expr_bdd(expr.left, proc_name), self.expr_bdd(expr.right, proc_name)
            )
        if isinstance(expr, (B.BNondet, B.BUnknown, B.BChoose)):
            raise BebopError(
                "nondeterministic expression in a deterministic position"
            )
        raise AssertionError("unhandled expression %r" % type(expr).__name__)

    def _enforce(self, proc_name):
        if proc_name not in self._enforce_bdd:
            proc = self.program.procedures[proc_name]
            if proc.enforce is None:
                self._enforce_bdd[proc_name] = self.manager.true
            else:
                self._enforce_bdd[proc_name] = self.expr_bdd(proc.enforce, proc_name)
        return self._enforce_bdd[proc_name]

    # -- transfer compilation ------------------------------------------------------

    def _equiv_conjunction(self, pairs):
        """``and(a <-> b for a, b in pairs)``, accumulated top-down (each
        conjunct sits above the accumulator in the order, so every ``land``
        is a shallow pass, not a product)."""
        m = self.manager
        result = m.true
        for a, b in sorted(pairs, key=lambda ab: min(ab)):
            result = m.land(m.equiv_vars(a, b), result)
        return result

    def _compile_expr(self, expr, proc_name):
        """Compile-time expression build: memoized on the printed text (the
        predicate-abstraction output repeats the same cube disjunctions
        across statements), with a direct DNF construction — cubes go
        straight into the unique table, bypassing ``ite`` entirely."""
        key = (proc_name, print_bool_expr(expr))
        cached = self._expr_cache.get(key)
        if cached is None:
            cached = self._build_expr(expr, proc_name)
            self._expr_cache[key] = cached
        return cached

    def _build_expr(self, expr, proc_name):
        m = self.manager
        dnf = self._dnf_bdd(expr, proc_name)
        if dnf is not None:
            return dnf
        if isinstance(expr, B.BNot):  # guards are negated cube covers
            return m.complement(self._compile_expr(expr.operand, proc_name))
        if isinstance(expr, B.BAnd):
            return m.land(
                self._compile_expr(expr.left, proc_name),
                self._compile_expr(expr.right, proc_name),
            )
        if isinstance(expr, B.BOr):
            return m.lor(
                self._compile_expr(expr.left, proc_name),
                self._compile_expr(expr.right, proc_name),
            )
        if isinstance(expr, B.BImplies):
            return m.implies(
                self._compile_expr(expr.left, proc_name),
                self._compile_expr(expr.right, proc_name),
            )
        return self.expr_bdd(expr, proc_name)

    def _as_cube(self, expr, proc_name):
        """``(var, polarity)`` literals if expr is a literal conjunction."""
        literals = []
        stack = [expr]
        while stack:
            e = stack.pop()
            if isinstance(e, B.BAnd):
                stack.append(e.left)
                stack.append(e.right)
            elif isinstance(e, B.BVar):
                literals.append((self._cur(self._var_key(proc_name, e.name)), True))
            elif isinstance(e, B.BNot) and isinstance(e.operand, B.BVar):
                literals.append(
                    (self._cur(self._var_key(proc_name, e.operand.name)), False)
                )
            else:
                return None
        return literals

    def _dnf_bdd(self, expr, proc_name):
        """Direct build for disjunctions of literal cubes, or None."""
        m = self.manager
        disjuncts = []
        stack = [expr]
        while stack:
            e = stack.pop()
            if isinstance(e, B.BOr):
                stack.append(e.left)
                stack.append(e.right)
            else:
                disjuncts.append(e)
        cubes = []
        for d in disjuncts:
            literals = self._as_cube(d, proc_name)
            if literals is None:
                return None
            cubes.append(m.cube(literals))
        while len(cubes) > 1:  # balanced merge keeps intermediates small
            cubes = [
                m.lor(cubes[i], cubes[i + 1]) if i + 1 < len(cubes) else cubes[i]
                for i in range(0, len(cubes), 2)
            ]
        return cubes[0] if cubes else m.false

    def _compile_program(self):
        compiled = {}
        for name, proc in self.program.procedures.items():
            fingerprint = procedure_fingerprint(self.program, proc)
            if self.reuse is not None:
                cached = self.reuse.compiled.get(name)
                if cached is not None and cached.fingerprint == fingerprint:
                    compiled[name] = cached
                    self.transfers_reused += len(cached.transfers)
                    continue
            table = None
            if self._table_store is not None:
                table = self._table_store.load(self, name, fingerprint)
                if table is not None:
                    self.tables_loaded += 1
                    self.transfers_reused += len(table.transfers)
            if table is None:
                table = self._compile_proc(name, proc, fingerprint)
                self.transfers_compiled += len(table.transfers)
                if self._table_store is not None:
                    self._table_store.save(self, name, table)
                    self.tables_saved += 1
            compiled[name] = table
            if self.reuse is not None:
                self.reuse.compiled[name] = table
        if self.reuse is not None:
            for name in list(self.reuse.compiled):
                if name not in self.program.procedures:
                    del self.reuse.compiled[name]
            self.reuse.transfers_compiled += self.transfers_compiled
            self.reuse.transfers_reused += self.transfers_reused
            self.reuse.tables_loaded += self.tables_loaded
        # Call sites are static under compilation: register them all up
        # front so summary growth can re-trigger them.
        for name, table in compiled.items():
            graph = self.graphs[name]
            for uid, (kind, payload) in table.transfers.items():
                if kind == "call":
                    self.call_sites.setdefault(payload.callee, set()).add(
                        (name, graph.nodes[uid])
                    )
        return compiled

    def _compile_proc(self, proc_name, proc, fingerprint):
        m = self.manager
        table = CompiledProc(fingerprint)
        table.enforce = (
            m.true
            if proc.enforce is None
            else self._compile_expr(proc.enforce, proc_name)
        )
        pairs = []
        for name in self._entry_names(proc_name):
            ent = self._cur(("ent", proc_name, name))
            cur = self._cur(self._var_key(proc_name, name))
            table.ent_vars.append(ent)
            table.in_to_ent[self._cur(("in", proc_name, name))] = ent
            pairs.append((ent, cur))
        table.entry_identity = self._equiv_conjunction(pairs)
        table.summary_locals = frozenset(
            self._cur(("l", proc_name, v)) for v in proc.formals + proc.locals
        )
        for name in self._entry_names(proc_name):
            table.summary_map[self._cur(("ent", proc_name, name))] = self._cur(
                ("in", proc_name, name)
            )
        for g in self.program.globals:
            table.summary_map[self._cur(("g", g))] = self._cur(
                ("out", proc_name, ("g", g))
            )
        for node in self.graphs[proc_name].nodes:
            entry = self._compile_node(proc_name, node)
            if entry is not None:
                table.transfers[node.uid] = entry
        return table

    def _compile_node(self, proc_name, node):
        m = self.manager
        if node.kind in (ENTRY, EXIT):
            return None
        if node.kind == BRANCH:
            if isinstance(node.cond, B.BNondet):
                return ("nondet", None)
            return ("branch", self._compile_expr(node.cond, proc_name))
        stmt = node.stmt
        if isinstance(stmt, (B.BSkip, B.BGoto)):
            return ("copy", None)
        if isinstance(stmt, B.BAssume):
            return ("assume", self._compile_expr(stmt.cond, proc_name))
        if isinstance(stmt, B.BAssert):
            return ("assert", self._compile_expr(stmt.cond, proc_name))
        if isinstance(stmt, B.BAssign):
            return ("assign", self._compile_assign(proc_name, stmt))
        if isinstance(stmt, B.BReturn):
            return ("return", self._compile_return(proc_name, stmt))
        if isinstance(stmt, B.BCall):
            return ("call", self._compile_call(proc_name, stmt))
        raise AssertionError("unhandled statement %r" % type(stmt).__name__)

    def _compile_assign(self, proc_name, stmt):
        m = self.manager
        constraint = m.true
        target_keys = []
        for target, value in zip(stmt.targets, stmt.values):
            key = self._var_key(proc_name, target)
            target_keys.append(key)
            shadow_index = self._shadow(key)
            shadow, shadow_neg = m.var(shadow_index), m.nvar(shadow_index)
            if isinstance(value, (B.BUnknown, B.BNondet)):
                continue  # unconstrained
            if isinstance(value, B.BChoose):
                # choose(pos, neg): true if pos, else false if neg, else
                # nondeterministic — pos takes priority when both hold.
                # One ite builds the whole per-target relation.
                pos = self._compile_expr(value.pos, proc_name)
                neg = self._compile_expr(value.neg, proc_name)
                relation = m.ite(pos, shadow, m.ite(neg, shadow_neg, m.true))
            else:
                relation = m.ite(
                    self._compile_expr(value, proc_name), shadow, shadow_neg
                )
            constraint = m.land(constraint, relation)
        return CompiledTransfer(
            constraint,
            frozenset(self._cur(k) for k in target_keys),
            {self._shadow(k): self._cur(k) for k in target_keys},
        )

    def _compile_return(self, proc_name, stmt):
        m = self.manager
        constraint = m.true
        for index, value in enumerate(stmt.values):
            out_index = self._cur(("out", proc_name, ("r", index)))
            constraint = m.land(
                constraint,
                m.ite(
                    self._compile_expr(value, proc_name),
                    m.var(out_index),
                    m.nvar(out_index),
                ),
            )
        return constraint

    def _compile_call(self, proc_name, stmt):
        m = self.manager
        callee = self.program.procedures.get(stmt.name)
        if callee is None:
            raise BebopError("call to undefined procedure %r" % stmt.name)
        if len(stmt.args) != len(callee.formals):
            raise BebopError("arity mismatch calling %r" % stmt.name)
        if len(stmt.targets) not in (0, callee.returns):
            raise BebopError(
                "call to %r uses %d results of %d"
                % (stmt.name, len(stmt.targets), callee.returns)
            )
        bind = self._equiv_conjunction(
            [
                (self._cur(("in", stmt.name, g)), self._cur(("g", g)))
                for g in self.program.globals
            ]
        )
        for formal, arg in zip(callee.formals, stmt.args):
            in_index = self._cur(("in", stmt.name, formal))
            in_var, in_neg = m.var(in_index), m.nvar(in_index)
            if isinstance(arg, (B.BUnknown, B.BNondet)):
                continue  # unconstrained actual
            if isinstance(arg, B.BChoose):
                pos = self._compile_expr(arg.pos, proc_name)
                neg = self._compile_expr(arg.neg, proc_name)
                relation = m.ite(pos, in_var, m.ite(neg, in_neg, m.true))
            else:
                relation = m.ite(self._compile_expr(arg, proc_name), in_var, in_neg)
            bind = m.land(bind, relation)
        in_vars = [
            self._cur(("in", stmt.name, name)) for name in self._entry_names(stmt.name)
        ]
        dead = set(in_vars)
        dead.update(self._cur(("g", g)) for g in self.program.globals)
        target_keys = [self._var_key(proc_name, t) for t in stmt.targets]
        dead.update(self._cur(k) for k in target_keys)
        out_map = {}
        for g in self.program.globals:
            out_map[self._cur(("out", stmt.name, ("g", g)))] = self._cur(("g", g))
        for index, key in enumerate(target_keys):
            cur_target = self._cur(key)
            for out_var, mapped in list(out_map.items()):
                if mapped == cur_target:
                    # The call target is a global: the return binding wins
                    # and the callee's exit value of the global dies.
                    del out_map[out_var]
                    dead.add(out_var)
            out_map[self._cur(("out", stmt.name, ("r", index)))] = cur_target
        if not stmt.targets and callee.returns:
            # Unused return values die with the summary composition.
            dead.update(
                self._cur(("out", stmt.name, ("r", i))) for i in range(callee.returns)
            )
        return CompiledCall(
            stmt.name, bind, frozenset(in_vars), frozenset(dead), out_map
        )

    # -- the fixpoint -----------------------------------------------------------

    def run(self):
        if self.context is not None:
            with self.context.phase("bebop"):
                result = self._run_legacy() if self.legacy else self._run_fast()
            self.context.stats.register("bebop", result.statistics)
            return result
        return self._run_legacy() if self.legacy else self._run_fast()

    def _pe_at(self, proc_name, node):
        return self._pe.get((proc_name, node.uid), self.manager.false)

    # -- the fast path: frontier propagation over compiled transfers --------------

    def _run_fast(self):
        self._frontier = {}
        self._on_worklist = set()
        self._pending_summary = set()
        self._call_bound = {}
        self._summary_done = {}
        worklist = []
        main_graph = self.graphs[self.main]
        self._join_fast(
            self.main, main_graph.entry, self._compiled[self.main].entry_identity,
            worklist,
        )
        while worklist:
            proc_name, node = worklist.pop()
            self._on_worklist.discard((proc_name, node.uid))
            self.steps += 1
            self._process_fast(proc_name, node, worklist)
        return BebopResult(self)

    def _push(self, proc_name, node, worklist):
        key = (proc_name, node.uid)
        if key not in self._on_worklist:
            self._on_worklist.add(key)
            worklist.append((proc_name, node))

    def _join_fast(self, proc_name, node, pe, worklist):
        m = self.manager
        enforce = self._compiled[proc_name].enforce
        if enforce is not m.true:
            pe = m.and_exists(pe, enforce, _EMPTY)
        if m.is_false(pe):
            return
        key = (proc_name, node.uid)
        old = self._pe.get(key, m.false)
        delta = m.and_not(pe, old)
        if m.is_false(delta):
            return
        self.frontier_joins += 1
        self._pe[key] = m.lor(old, delta)
        front = self._frontier.get(key, m.false)
        self._frontier[key] = m.lor(front, delta)
        self._push(proc_name, node, worklist)

    def _process_fast(self, proc_name, node, worklist):
        m = self.manager
        key = (proc_name, node.uid)
        delta = self._frontier.pop(key, m.false)
        if node.kind == ENTRY:
            for target, _ in node.edges:
                self._join_fast(proc_name, target, delta, worklist)
            return
        if node.kind == EXIT:
            if not m.is_false(delta):
                self._update_summary_fast(proc_name, delta, worklist)
            return
        kind, payload = self._compiled[proc_name].transfers[node.uid]
        if kind == "nondet":
            for target, _ in node.edges:
                self._join_fast(proc_name, target, delta, worklist)
            return
        if kind == "branch":
            for target, assume in node.edges:
                out = (
                    m.and_exists(delta, payload, _EMPTY)
                    if assume
                    else m.and_not(delta, payload)
                )
                self._join_fast(proc_name, target, out, worklist)
            return
        if kind == "copy":
            out = delta
        elif kind == "assume":
            out = m.and_exists(delta, payload, _EMPTY)
        elif kind == "assert":
            violating = m.and_not(delta, payload)
            if not m.is_false(violating):
                self._record_failure(proc_name, node, violating)
            out = m.and_exists(delta, payload, _EMPTY)
        elif kind == "assign":
            combined = m.and_exists(delta, payload.constraint, payload.quantified)
            out = m.rename(combined, payload.shift_map)
        elif kind == "return":
            out = m.and_exists(delta, payload, _EMPTY)
        elif kind == "call":
            out = self._apply_call_fast(proc_name, key, delta, payload, worklist)
        else:
            raise AssertionError("unhandled transfer kind %r" % kind)
        for target, _ in node.edges:
            self._join_fast(proc_name, target, out, worklist)

    def _apply_call_fast(self, proc_name, key, delta, cc, worklist):
        """One call-site visit: push new caller states through the binding
        relation (seeding the callee), compose them with the callee's full
        summary, and compose previously bound states with any summary
        growth since the last visit — each piece flows exactly once."""
        m = self.manager
        pending = key in self._pending_summary
        self._pending_summary.discard(key)
        summary = self.summaries.get(cc.callee, m.false)
        prev_bound = self._call_bound.get(key, m.false)
        out = m.false
        if not m.is_false(delta):
            bound_new = m.and_exists(delta, cc.bind, _EMPTY)
            if not m.is_false(bound_new):
                callee_table = self._compiled[cc.callee]
                others = frozenset(m.support(bound_new) - cc.in_set)
                contexts = m.exists_set(bound_new, others)
                entry_pe = m.and_exists(
                    m.rename(contexts, callee_table.in_to_ent),
                    callee_table.entry_identity,
                    _EMPTY,
                )
                self._join_fast(
                    cc.callee, self.graphs[cc.callee].entry, entry_pe, worklist
                )
                if not m.is_false(summary):
                    composed = m.and_exists(bound_new, summary, cc.dead)
                    out = m.lor(out, m.rename(composed, cc.out_map))
                self._call_bound[key] = m.lor(prev_bound, bound_new)
        if pending and not m.is_false(prev_bound):
            grown = m.and_not(summary, self._summary_done.get(key, m.false))
            if not m.is_false(grown):
                composed = m.and_exists(prev_bound, grown, cc.dead)
                out = m.lor(out, m.rename(composed, cc.out_map))
        self._summary_done[key] = summary
        return out

    def _update_summary_fast(self, proc_name, exit_delta, worklist):
        m = self.manager
        table = self._compiled[proc_name]
        projected = m.exists_set(exit_delta, table.summary_locals)
        summary_add = m.rename(projected, table.summary_map)
        old = self.summaries.get(proc_name, m.false)
        new = m.lor(old, summary_add)
        if new is not old:
            self.summaries[proc_name] = new
            for caller, call_node in self.call_sites.get(proc_name, ()):
                self._pending_summary.add((caller, call_node.uid))
                self._push(caller, call_node, worklist)

    # -- the legacy path: full path edges, transfers re-derived per visit ----------

    def _run_legacy(self):
        m = self.manager
        # Seed main: identity between entry bank and current values, all
        # contexts allowed (initial values are unconstrained).
        main_graph = self.graphs[self.main]
        identity = m.true
        for name in self._entry_names(self.main):
            key = self._var_key(self.main, name)
            identity = m.land(
                identity,
                m.iff(m.var(self._cur(("ent", self.main, name))), m.var(self._cur(key))),
            )
        worklist = []
        self._join(self.main, main_graph.entry, identity, worklist)
        while worklist:
            proc_name, node = worklist.pop()
            self.steps += 1
            self._process(proc_name, node, worklist)
        return BebopResult(self)

    def _join(self, proc_name, node, pe, worklist):
        pe = self.manager.land(pe, self._enforce(proc_name))
        old = self._pe_at(proc_name, node)
        new = self.manager.lor(old, pe)
        if new is not old:
            self._pe[(proc_name, node.uid)] = new
            worklist.append((proc_name, node))

    def _process(self, proc_name, node, worklist):
        m = self.manager
        pe = self._pe_at(proc_name, node)
        if m.is_false(pe):
            return
        if node.kind == ENTRY:
            for target, _ in node.edges:
                self._join(proc_name, target, pe, worklist)
            return
        if node.kind == EXIT:
            self._update_summary(proc_name, pe, worklist)
            return
        if node.kind == BRANCH:
            cond = node.cond
            if isinstance(cond, B.BNondet):
                for target, _ in node.edges:
                    self._join(proc_name, target, pe, worklist)
                return
            cond_bdd = self.expr_bdd(cond, proc_name)
            for target, assume in node.edges:
                guard = cond_bdd if assume else m.lnot(cond_bdd)
                self._join(proc_name, target, m.land(pe, guard), worklist)
            return
        stmt = node.stmt
        if isinstance(stmt, (B.BSkip, B.BGoto)):
            out = pe
        elif isinstance(stmt, B.BAssume):
            out = m.land(pe, self.expr_bdd(stmt.cond, proc_name))
        elif isinstance(stmt, B.BAssert):
            cond_bdd = self.expr_bdd(stmt.cond, proc_name)
            violating = m.land(pe, m.lnot(cond_bdd))
            if not m.is_false(violating):
                self._record_failure(proc_name, node, violating)
            out = m.land(pe, cond_bdd)
        elif isinstance(stmt, B.BAssign):
            out = self._apply_assign(proc_name, pe, stmt)
        elif isinstance(stmt, B.BReturn):
            out = self._apply_return(proc_name, pe, stmt)
        elif isinstance(stmt, B.BCall):
            out = self._apply_call(proc_name, node, pe, stmt, worklist)
        else:
            raise AssertionError("unhandled statement %r" % type(stmt).__name__)
        for target, _ in node.edges:
            self._join(proc_name, target, out, worklist)

    def _record_failure(self, proc_name, node, states):
        for i, (p, n, old) in enumerate(self.assertion_failures):
            if p == proc_name and n is node:
                self.assertion_failures[i] = (p, n, self.manager.lor(old, states))
                return
        self.assertion_failures.append((proc_name, node, states))

    # -- legacy transfer functions ---------------------------------------------------

    def _apply_assign(self, proc_name, pe, stmt):
        """Parallel assignment through shadow variables."""
        m = self.manager
        constraint = m.true
        target_keys = []
        for target, value in zip(stmt.targets, stmt.values):
            key = self._var_key(proc_name, target)
            target_keys.append(key)
            shadow = m.var(self._shadow(key))
            if isinstance(value, B.BUnknown) or isinstance(value, B.BNondet):
                continue  # unconstrained
            if isinstance(value, B.BChoose):
                # choose(pos, neg): true if pos, else false if neg, else
                # nondeterministic — pos takes priority when both hold.
                pos = self.expr_bdd(value.pos, proc_name)
                neg = self.expr_bdd(value.neg, proc_name)
                constraint = m.land(constraint, m.implies(pos, shadow))
                constraint = m.land(
                    constraint,
                    m.implies(m.land(m.lnot(pos), neg), m.lnot(shadow)),
                )
            else:
                constraint = m.land(
                    constraint, m.iff(shadow, self.expr_bdd(value, proc_name))
                )
        combined = m.land(pe, constraint)
        combined = m.exists(combined, [self._cur(k) for k in target_keys])
        return m.rename(
            combined, {self._shadow(k): self._cur(k) for k in target_keys}
        )

    def _apply_return(self, proc_name, pe, stmt):
        """Bind returned values to the procedure's output slots."""
        m = self.manager
        out = pe
        for index, value in enumerate(stmt.values):
            out_var = m.var(self._cur(("out", proc_name, ("r", index))))
            out = m.land(out, m.iff(out_var, self.expr_bdd(value, proc_name)))
        return out

    def _update_summary(self, proc_name, exit_pe, worklist):
        """Project the exit path edge onto the summary in/out slots."""
        m = self.manager
        proc = self.program.procedures[proc_name]
        # Rename entry bank -> in slots; current globals -> out slots.
        mapping = {}
        for name in self._entry_names(proc_name):
            mapping[self._cur(("ent", proc_name, name))] = self._cur(
                ("in", proc_name, name)
            )
        for g in self.program.globals:
            mapping[self._cur(("g", g))] = self._cur(("out", proc_name, ("g", g)))
        projected = m.exists(
            exit_pe,
            [self._cur(("l", proc_name, v)) for v in proc.formals + proc.locals],
        )
        summary_add = m.rename(projected, mapping)
        old = self.summaries.get(proc_name, m.false)
        new = m.lor(old, summary_add)
        if new is not old:
            self.summaries[proc_name] = new
            for caller, call_node in self.call_sites.get(proc_name, ()):
                worklist.append((caller, call_node))

    def _apply_call(self, proc_name, node, pe, stmt, worklist):
        m = self.manager
        callee = self.program.procedures.get(stmt.name)
        if callee is None:
            raise BebopError("call to undefined procedure %r" % stmt.name)
        self.call_sites.setdefault(stmt.name, set()).add((proc_name, node))
        if len(stmt.args) != len(callee.formals):
            raise BebopError("arity mismatch calling %r" % stmt.name)
        if len(stmt.targets) not in (0, callee.returns):
            raise BebopError(
                "call to %r uses %d results of %d"
                % (stmt.name, len(stmt.targets), callee.returns)
            )
        # Bind actuals (and globals) to the callee's input slots.
        bind = m.true
        for formal, arg in zip(callee.formals, stmt.args):
            in_var = m.var(self._cur(("in", stmt.name, formal)))
            if isinstance(arg, (B.BUnknown, B.BNondet)):
                continue  # unconstrained actual
            if isinstance(arg, B.BChoose):
                pos = self.expr_bdd(arg.pos, proc_name)
                neg = self.expr_bdd(arg.neg, proc_name)
                bind = m.land(bind, m.implies(pos, in_var))
                bind = m.land(
                    bind, m.implies(m.land(m.lnot(pos), neg), m.lnot(in_var))
                )
            else:
                bind = m.land(bind, m.iff(in_var, self.expr_bdd(arg, proc_name)))
        for g in self.program.globals:
            bind = m.land(
                bind,
                m.iff(m.var(self._cur(("in", stmt.name, g))), m.var(self._cur(("g", g)))),
            )
        bound = m.land(pe, bind)
        # Seed the callee's entry with the newly reached contexts.
        in_vars = [
            self._cur(("in", stmt.name, name)) for name in self._entry_names(stmt.name)
        ]
        everything_else = [
            v
            for v in m.support(bound)
            if v not in in_vars
        ]
        contexts = m.exists(bound, everything_else)
        entry_identity = m.true
        mapping = {}
        for name in self._entry_names(stmt.name):
            ent = self._cur(("ent", stmt.name, name))
            cur = self._cur(self._var_key(stmt.name, name))
            mapping[self._cur(("in", stmt.name, name))] = ent
            entry_identity = m.land(entry_identity, m.iff(m.var(ent), m.var(cur)))
        callee_entry_pe = m.land(m.rename(contexts, mapping), entry_identity)
        self._join(stmt.name, self.graphs[stmt.name].entry, callee_entry_pe, worklist)
        # Compose with the callee's summary, if any yet.
        summary = self.summaries.get(stmt.name, m.false)
        if m.is_false(summary):
            return m.false
        composed = m.land(bound, summary)
        # Old values of globals and call targets die; inputs are consumed.
        dead = set(in_vars)
        dead.update(self._cur(("g", g)) for g in self.program.globals)
        target_keys = [self._var_key(proc_name, t) for t in stmt.targets]
        dead.update(self._cur(k) for k in target_keys)
        # Rebind callee outputs to caller variables.  A return bound to a
        # global displaces that global's exit-value propagation (the
        # assignment happens after the callee's exit).
        out_mapping = {}
        for g in self.program.globals:
            out_mapping[self._cur(("out", stmt.name, ("g", g)))] = self._cur(("g", g))
        for index, key in enumerate(target_keys):
            cur_target = self._cur(key)
            for out_var, mapped in list(out_mapping.items()):
                if mapped == cur_target:
                    del out_mapping[out_var]
                    dead.add(out_var)
            out_mapping[self._cur(("out", stmt.name, ("r", index)))] = cur_target
        composed = m.exists(composed, dead)
        composed = m.rename(composed, out_mapping)
        # Unused return values are dropped.
        if not stmt.targets and callee.returns:
            composed = m.exists(
                composed,
                [
                    self._cur(("out", stmt.name, ("r", i)))
                    for i in range(callee.returns)
                ],
            )
        return composed

    # -- queries ------------------------------------------------------------------

    def _node_for(self, proc_name, label=None, node=None):
        graph = self.graphs[proc_name]
        if node is not None:
            return node
        if label is not None:
            found = graph.node_for_label(label)
            if found is None:
                raise BebopError("no label %r in %s" % (label, proc_name))
            return found
        return graph.exit

    def reachable_states(self, proc_name, label=None, node=None):
        m = self.manager
        target = self._node_for(proc_name, label, node)
        pe = self._pe_at(proc_name, target)
        ent_vars = [
            self._cur(("ent", proc_name, name))
            for name in self._entry_names(proc_name)
        ]
        return m.exists(pe, ent_vars)

    def invariant_cubes(self, proc_name, label=None, node=None):
        m = self.manager
        states = self.reachable_states(proc_name, label=label, node=node)
        index_to_name = {}
        for key in self._scope_keys(proc_name):
            name = key[1] if key[0] == "g" else key[2]
            index_to_name[self._cur(key)] = name
        cubes = []
        for cube in m.cubes(states):
            named = {}
            for var, value in cube.items():
                if var in index_to_name:
                    named[index_to_name[var]] = value
            cubes.append(named)
        return cubes
