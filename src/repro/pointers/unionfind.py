"""Union-find with path compression and union by rank."""


class UnionFind:
    """Disjoint sets over arbitrary hashable elements.

    Elements are added implicitly on first use.  ``union`` returns the
    representative that survived, which callers use to migrate satellite
    data from the absorbed representative.
    """

    def __init__(self):
        self._parent = {}
        self._rank = {}

    def find(self, item):
        """The canonical representative of ``item``'s set."""
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._rank[item] = 0
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b):
        """Merge the sets of ``a`` and ``b``; returns (survivor, absorbed).

        If the two are already in the same set, returns (root, None).
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a, None
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a, root_b

    def same(self, a, b):
        return self.find(a) == self.find(b)

    def __contains__(self, item):
        return item in self._parent

    def __len__(self):
        return len(self._parent)
