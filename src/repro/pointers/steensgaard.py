"""Unification-based flow-insensitive points-to analysis.

The analysis assigns every abstract memory cell an equivalence-class
representative (ECR).  Each ECR carries:

- ``pt``: the ECR of the cell(s) its contents may point to (created
  lazily), and
- ``fields``: a map from struct field names to the ECRs of the field cells
  of the object(s) this cell holds.

Assignments unify the *pointees* of the two sides; taking an address makes
the variable's own cell a pointee.  Two lvalue expressions may alias exactly
when their cells' ECRs coincide, so a variable whose address is never taken
can never alias a dereference — the fact the paper's Section 2 example
relies on.

Calls to defined functions unify arguments with formals and the call result
with the callee's return variable.  Calls to externs conservatively collapse
everything reachable from pointer arguments into a single self-referential
"external world" ECR.
"""

from repro.cfront import cast as C
from repro.cfront.exprutils import walk
from repro.pointers.unionfind import UnionFind

_EXTERNAL = ("<external>",)


class PointsToAnalysis:
    """Run on a lowered program; then answer may-alias queries."""

    def __init__(self, program):
        self.program = program
        self._uf = UnionFind()
        self._pt = {}  # root -> ECR it points to
        self._fields = {}  # root -> {field name -> ECR}
        self._next_ecr = 0
        self._cell_of_var = {}  # (func_name or None, var) -> ECR
        self._worklist = []  # deferred unifications during merges
        self._external = self._fresh()
        # The external world points to itself and its fields are itself.
        self._pt[self._uf.find(self._external)] = self._external
        self._analyze()

    # -- ECR plumbing -------------------------------------------------------

    def _fresh(self):
        ecr = ("ecr", self._next_ecr)
        self._next_ecr += 1
        self._uf.find(ecr)
        return ecr

    def _find(self, ecr):
        return self._uf.find(ecr)

    def _points_to(self, ecr):
        """The pointee ECR of ``ecr``, created on demand."""
        root = self._find(ecr)
        if root not in self._pt:
            self._pt[root] = self._fresh()
        return self._find(self._pt[root])

    def _field(self, ecr, name):
        """The ECR of field ``name`` of the object in cell ``ecr``."""
        root = self._find(ecr)
        if self._is_external(root):
            return root
        fields = self._fields.setdefault(root, {})
        if name not in fields:
            fields[name] = self._fresh()
        return self._find(fields[name])

    def _is_external(self, ecr):
        return self._find(ecr) == self._find(self._external)

    def _unify(self, a, b):
        """Merge two ECRs, recursively unifying pointees and fields."""
        self._worklist.append((a, b))
        while self._worklist:
            x, y = self._worklist.pop()
            root_x, root_y = self._find(x), self._find(y)
            if root_x == root_y:
                continue
            survivor, absorbed = self._uf.union(root_x, root_y)
            # Migrate pointee.
            pt_s = self._pt.pop(survivor, None)
            pt_a = self._pt.pop(absorbed, None)
            if pt_s is not None and pt_a is not None:
                self._pt[self._find(survivor)] = pt_s
                self._worklist.append((pt_s, pt_a))
            elif pt_s is not None or pt_a is not None:
                self._pt[self._find(survivor)] = pt_s if pt_s is not None else pt_a
            # Migrate fields.
            fields_s = self._fields.pop(survivor, {})
            fields_a = self._fields.pop(absorbed, {})
            for name, ecr in fields_a.items():
                if name in fields_s:
                    self._worklist.append((fields_s[name], ecr))
                else:
                    fields_s[name] = ecr
            if fields_s:
                self._fields[self._find(survivor)] = fields_s
            # The external world absorbs everything reachable from it.
            if self._is_external(survivor):
                ext = self._find(self._external)
                leftover_pt = self._pt.get(ext)
                if leftover_pt is not None and self._find(leftover_pt) != ext:
                    self._worklist.append((leftover_pt, self._external))
                for ecr in self._fields.pop(ext, {}).values():
                    self._worklist.append((ecr, self._external))
                self._pt[ext] = self._external

    # -- cells for program entities ---------------------------------------------

    def var_cell(self, func_name, var_name):
        """The cell ECR of a variable (locals shadow globals)."""
        if func_name is not None:
            func = self.program.functions.get(func_name)
            if func is not None and func.lookup_var(var_name) is not None:
                key = (func_name, var_name)
            else:
                key = (None, var_name)
        else:
            key = (None, var_name)
        if key not in self._cell_of_var:
            self._cell_of_var[key] = self._fresh()
        return self._find(self._cell_of_var[key])

    def _cell(self, expr, func_name):
        """The cell ECR denoted by an lvalue expression."""
        if isinstance(expr, C.Id):
            return self.var_cell(func_name, expr.name)
        if isinstance(expr, C.Deref):
            # ``*e`` is exactly the cell that e's value points to.
            return self._value(expr.pointer, func_name)
        if isinstance(expr, C.FieldAccess):
            return self._field(self._cell(expr.base, func_name), expr.field)
        if isinstance(expr, C.Index):
            # All elements of an array object share one cell, which is what
            # the (decayed) base value points to.
            return self._value(expr.base, func_name)
        if isinstance(expr, C.Cast):
            return self._cell(expr.operand, func_name)
        raise ValueError("not an lvalue: %r" % (expr,))

    def _value(self, expr, func_name):
        """An ECR for the cell(s) the *value* of ``expr`` may point to."""
        if isinstance(expr, (C.Id, C.Deref, C.FieldAccess, C.Index)):
            return self._points_to(self._cell(expr, func_name))
        if isinstance(expr, C.AddrOf):
            return self._cell(expr.operand, func_name)
        if isinstance(expr, C.Cast):
            return self._value(expr.operand, func_name)
        if isinstance(expr, C.BinOp) and expr.op in ("+", "-"):
            # Pointer arithmetic stays within the object (logical model):
            # unify both sides' value ECRs.
            left = self._value(expr.left, func_name)
            right = self._value(expr.right, func_name)
            self._unify(left, right)
            return self._find(left)
        if isinstance(expr, C.Cond):
            left = self._value(expr.then_expr, func_name)
            right = self._value(expr.else_expr, func_name)
            self._unify(left, right)
            return self._find(left)
        # Integer-valued expressions carry no pointer information; give them
        # a fresh unconstrained ECR.
        return self._fresh()

    # -- constraint generation --------------------------------------------------

    def _analyze(self):
        for decl in self.program.globals:
            if decl.init is not None:
                self._process_assign(C.Id(decl.name), decl.init, None)
        for func in self.program.defined_functions():
            self._analyze_function(func)
        self._escape_root_formals()
        self._mark_address_taken()

    def _escape_root_formals(self):
        """Pointer formals of *root* procedures (never called inside the
        program) receive their values from an unknown environment: their
        pointees may be any external memory, mutually aliased.  Without
        this, two formals ``p`` and ``q`` would be judged never-aliasing,
        which is unsound for an entry point the environment calls."""
        called = set()
        for func in self.program.defined_functions():

            def visit(stmts):
                for stmt in stmts:
                    if isinstance(stmt, C.CallStmt):
                        called.add(stmt.name)
                    for sub in stmt.substatements():
                        visit(sub)

            visit(func.body)
        for func in self.program.defined_functions():
            if func.name in called:
                continue
            for param in func.params:
                if param.type.is_pointer():
                    cell = self.var_cell(func.name, param.name)
                    self._unify(self._points_to(cell), self._external)

    def _analyze_function(self, func):
        def visit(stmts):
            for stmt in stmts:
                if isinstance(stmt, C.Assign):
                    self._process_assign(stmt.lhs, stmt.rhs, func.name)
                elif isinstance(stmt, C.CallStmt):
                    self._process_call(stmt, func.name)
                elif isinstance(stmt, (C.Assert, C.Assume, C.If, C.While)):
                    cond = stmt.cond
                    self._touch(cond, func.name)
                for sub in stmt.substatements():
                    visit(sub)

        visit(func.body)

    def _touch(self, expr, func_name):
        """Visit an expression for its address-taking sub-expressions."""
        for node in walk(expr):
            if isinstance(node, C.AddrOf):
                self._cell(node.operand, func_name)

    def _process_assign(self, lhs, rhs, func_name):
        self._touch(rhs, func_name)
        lhs_cell = self._cell(lhs, func_name)
        rhs_value = self._value(rhs, func_name)
        self._unify(self._points_to(lhs_cell), rhs_value)

    def _process_call(self, stmt, func_name):
        callee = self.program.functions.get(stmt.name)
        for arg in stmt.args:
            self._touch(arg, func_name)
        if callee is not None and callee.is_defined:
            for param, arg in zip(callee.params, stmt.args):
                param_cell = self.var_cell(callee.name, param.name)
                self._unify(self._points_to(param_cell), self._value(arg, func_name))
            if stmt.lhs is not None and callee.return_var is not None:
                ret_cell = self.var_cell(callee.name, callee.return_var)
                lhs_cell = self._cell(stmt.lhs, func_name)
                self._unify(self._points_to(lhs_cell), self._points_to(ret_cell))
        else:
            # Extern: everything reachable from pointer arguments escapes to
            # (and may be rewritten by) the external world.
            for arg in stmt.args:
                arg_type = getattr(arg, "type", None)
                value = self._value(arg, func_name)
                if arg_type is not None and not arg_type.is_pointer():
                    continue
                self._unify(value, self._external)
            if stmt.lhs is not None:
                lhs_type = getattr(stmt.lhs, "type", None)
                if lhs_type is None or lhs_type.is_pointer():
                    lhs_cell = self._cell(stmt.lhs, func_name)
                    self._unify(self._points_to(lhs_cell), self._external)

    def _mark_address_taken(self):
        """Stamp VarDecl.address_taken for variables whose cell became a
        pointee (reachable through some pointer)."""
        pointees = {self._find(ecr) for ecr in self._pt.values()}
        for (func_name, var_name), ecr in self._cell_of_var.items():
            if self._find(ecr) in pointees or self._is_external(ecr):
                decl = self.program.lookup_var(func_name, var_name)
                if decl is not None:
                    decl.address_taken = True

    # -- queries ---------------------------------------------------------------

    def may_alias(self, lhs, rhs, func_name=None):
        """May the lvalue expressions ``lhs`` and ``rhs`` denote the same
        cell?  Syntactically identical lvalues trivially alias."""
        if lhs == rhs:
            return True
        # Two distinct named variables never denote the same cell, no matter
        # what the unification lattice says.
        if isinstance(lhs, C.Id) and isinstance(rhs, C.Id):
            return lhs.name == rhs.name
        try:
            cell_l = self._cell(lhs, func_name)
            cell_r = self._cell(rhs, func_name)
        except ValueError:
            return True  # not lvalues; be conservative
        if self._find(cell_l) != self._find(cell_r):
            return False
        # Field-based refinement: distinct fields of any object never alias.
        field_l = self._outer_field(lhs)
        field_r = self._outer_field(rhs)
        if field_l is not None and field_r is not None and field_l != field_r:
            return False
        # Type-based refinement (the logical memory model is typed): an
        # integer cell and a pointer cell are never the same location.
        if self._types_incompatible(getattr(lhs, "type", None), getattr(rhs, "type", None)):
            return False
        return True

    @staticmethod
    def _outer_field(expr):
        if isinstance(expr, C.FieldAccess):
            return expr.field
        return None

    @staticmethod
    def _types_incompatible(type_l, type_r):
        if type_l is None or type_r is None:
            return False
        if type_l.is_integer() and type_r.is_pointer():
            return True
        if type_l.is_pointer() and type_r.is_integer():
            return True
        return False

    def may_point_into_external(self, expr, func_name=None):
        """Whether ``expr``'s cell has escaped to the external world."""
        try:
            return self._is_external(self._cell(expr, func_name))
        except ValueError:
            return True

    def ecr_of(self, expr, func_name=None):
        """The (representative of the) cell ECR for testing/debugging."""
        return self._find(self._cell(expr, func_name))

    def reachable_from_values(self, exprs, func_name=None):
        """All cell ECRs transitively reachable from the *values* of the
        given expressions (through pointees and fields).

        Used to over-approximate what a callee can modify through its
        actual parameters (Section 4.5.3's side-effect approximation).
        """
        seeds = []
        for expr in exprs:
            expr_type = getattr(expr, "type", None)
            if expr_type is not None and not (
                expr_type.is_pointer() or expr_type.is_array()
            ):
                continue
            try:
                seeds.append(self._value(expr, func_name))
            except ValueError:
                continue
        closure = set()
        stack = [self._find(s) for s in seeds]
        while stack:
            ecr = stack.pop()
            if ecr in closure:
                continue
            closure.add(ecr)
            pointee = self._pt.get(ecr)
            if pointee is not None:
                stack.append(self._find(pointee))
            for field_ecr in self._fields.get(ecr, {}).values():
                stack.append(self._find(field_ecr))
        return closure

    def location_in(self, loc_expr, ecr_set, func_name=None):
        """Whether the cell of ``loc_expr`` is one of ``ecr_set``."""
        try:
            return self._find(self._cell(loc_expr, func_name)) in ecr_set
        except ValueError:
            return True  # conservative
