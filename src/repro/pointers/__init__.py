"""Flow-insensitive may-alias analysis.

The paper uses Das's one-level-flow points-to analysis [12] as a black-box
may-alias oracle to (a) prune the alias disjuncts of Morris' axiom in the
weakest-precondition computation and (b) bound the side effects of procedure
calls.  We provide the same oracle interface backed by a unification-based
(Steensgaard-style) analysis with field sensitivity; see DESIGN.md for why
this substitution preserves the behaviour C2bp depends on.
"""

from repro.pointers.steensgaard import PointsToAnalysis
from repro.pointers.unionfind import UnionFind

__all__ = ["PointsToAnalysis", "UnionFind"]
