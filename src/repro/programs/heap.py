"""Heap-manipulating case studies (Table 2: partition, listfind, reverse).

``partition`` is the paper's Figure 1; ``reverse`` is Figure 3's
mark-and-sweep style pointer-reversal traversal, checked for the Section
6.2 shape property (every node's ``next`` is restored); ``listfind`` is a
list search whose found-label invariant refines aliasing like Section 2.2.
"""

from repro.programs.registry import CaseStudy

PARTITION = CaseStudy(
    name="partition",
    description=(
        "Figure 1: destructively partition a list around a pivot; the "
        "invariant at L separates *curr from *prev"
    ),
    source=r"""
typedef struct cell {
    int val;
    struct cell* next;
} *list;

list partition(list *l, int v) {
    list curr, prev, newl, nextcurr;
    curr = *l;
    prev = NULL;
    newl = NULL;
    while (curr != NULL) {
        nextcurr = curr->next;
        if (curr->val > v) {
            if (prev != NULL) {
                prev->next = nextcurr;
            }
            if (curr == *l) {
                *l = nextcurr;
            }
            curr->next = newl;
L:          newl = curr;
        } else {
            prev = curr;
        }
        curr = nextcurr;
    }
    return newl;
}
""",
    predicate_text="""
partition
curr == NULL, prev == NULL,
curr->val > v, prev->val > v
""",
    entry="partition",
    labels=["L"],
)


LISTFIND = CaseStudy(
    name="listfind",
    description="search a list for a value; at FOUND the cell holds v",
    source=r"""
typedef struct cell {
    int val;
    struct cell* next;
} *list;

int listfind(list head, int v) {
    list curr;
    int found;
    curr = head;
    found = 0;
    while (curr != NULL) {
        if (curr->val == v) {
            found = 1;
FOUND:      goto done;
        }
        curr = curr->next;
    }
done:
    return found;
}
""",
    predicate_text="""
listfind
curr == NULL, found == 1, curr->val == v
""",
    entry="listfind",
    labels=["FOUND", "done"],
)


REVERSE = CaseStudy(
    name="reverse",
    description=(
        "Figure 3: traverse a list with pointer reversal and restore it; "
        "Section 6.2 checks h->next == hnext is re-established"
    ),
    source=r"""
struct node {
    int mark;
    struct node *next;
};

void mark(struct node *list, struct node *h) {
    struct node *this, *tmp, *prev, *hnext;
    assume(h != NULL);
    hnext = h->next;
    prev = NULL;
    this = list;
    /* traverse list and mark, setting back pointers */
    while (this != NULL) {
        if (this->mark == 1) {
            break;
        }
        this->mark = 1;
        tmp = prev;
        prev = this;
        this = this->next;
        prev->next = tmp;
    }
    /* traverse back, resetting the pointers */
    while (prev != NULL) {
        tmp = this;
        this = prev;
        prev = prev->next;
        this->next = tmp;
    }
END:
    return;
}
""",
    predicate_text="""
mark
h == NULL, prev == h, this == h,
this->next == hnext, prev == this,
h->next == hnext, hnext->next == h
""",
    entry="mark",
    labels=["END"],
)
