"""Synthetic NT-style device drivers (the Table 1 corpus).

The paper ran SLAM over four exemplar drivers from the Windows 2000 Driver
Development Kit plus an internally developed floppy driver, checking
"proper usage of locks and proper handling of interrupt request packets".
The DDK sources cannot be shipped, so these five drivers reproduce the
*shapes* that matter: dispatch routines selected by a nondeterministic
harness (the OS), spin-lock discipline around shared state, and IRP
completion protocols.  As in the paper, the four exemplar drivers validate
for both properties, and the in-development ``floppy`` driver contains a
genuine IRP-handling error (a path that completes the same request twice).

Interface functions (``KeAcquireSpinLock``, ``KeReleaseSpinLock``,
``IoCompleteRequest``, ``IoMarkIrpPending`` and friends) are externs; SLAM
instruments them with the property automata.
"""

from repro.programs.registry import DriverStudy

# The paper's SLAM runs link drivers against *models* of the kernel APIs
# rather than havocking them as unknown externs; these stubs are our OS
# model (see DESIGN.md).  SLAM's instrumentation keeps calls to defined
# functions and inserts the property-automaton probe in front of them.
OS_MODEL = r"""
/* --- OS model stubs --- */
void KeAcquireSpinLock(void) {
}

void KeReleaseSpinLock(void) {
}

int IoCompleteRequest(void) {
    int r;
    r = *;
    return r;
}

void HalWritePort(int port, int value) {
}
"""

FLOPPY = DriverStudy(
    name="floppy",
    description=(
        "in-development floppy driver; read path completes the IRP and the "
        "shared error path completes it again (the bug SLAM found)"
    ),
    source=OS_MODEL + r"""
int pending_count;
int motor_on;

void floppy_start_motor(void) {
    motor_on = 1;
    HalWritePort(42, 1);
}

int floppy_read(int length) {
    int status;
    status = 0;
    KeAcquireSpinLock();
    if (motor_on == 0) {
        floppy_start_motor();
    }
    pending_count = pending_count + 1;
    KeReleaseSpinLock();
    if (length < 0) {
        status = -1;
    }
    if (status < 0) {
        /* error path: complete with failure... */
        IoCompleteRequest();
        goto finish;
    }
    IoCompleteRequest();
finish:
    /* BUG: the error path falls through here and completes again. */
    if (status < 0) {
        IoCompleteRequest();
    }
    return status;
}

int floppy_dispatch(int major, int length) {
    int status;
    if (major == 3) {
        status = floppy_read(length);
    } else {
        status = 0;
        IoCompleteRequest();
    }
    return status;
}

void main(void) {
    int major, length, status;
    major = *;
    length = *;
    pending_count = 0;
    motor_on = 0;
    status = floppy_dispatch(major, length);
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "unsafe"},
)


IOCTL = DriverStudy(
    name="ioctl",
    description=(
        "device-control dispatch: an if-chain over IOCTL codes, each arm "
        "acquiring and releasing the device lock correctly"
    ),
    source=OS_MODEL + r"""
int device_state;
int query_count;

int ioctl_get_state(void) {
    int snapshot;
    KeAcquireSpinLock();
    snapshot = device_state;
    query_count = query_count + 1;
    KeReleaseSpinLock();
    return snapshot;
}

int ioctl_set_state(int value) {
    KeAcquireSpinLock();
    if (value >= 0) {
        device_state = value;
    }
    KeReleaseSpinLock();
    return 0;
}

int ioctl_reset(void) {
    KeAcquireSpinLock();
    device_state = 0;
    query_count = 0;
    KeReleaseSpinLock();
    return 0;
}

int ioctl_dispatch(int code, int value) {
    int status;
    if (code == 1) {
        status = ioctl_get_state();
    } else if (code == 2) {
        status = ioctl_set_state(value);
    } else if (code == 3) {
        status = ioctl_reset();
    } else {
        status = -1;
    }
    IoCompleteRequest();
    return status;
}

void main(void) {
    int code, value, status;
    code = *;
    value = *;
    device_state = 0;
    query_count = 0;
    status = ioctl_dispatch(code, value);
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)


OPENCLOS = DriverStudy(
    name="openclos",
    description=(
        "open/close reference counting under a spin lock; create and close "
        "dispatch routines complete their IRPs exactly once"
    ),
    source=OS_MODEL + r"""
int open_count;
int accepting;

int do_create(void) {
    int status;
    KeAcquireSpinLock();
    if (accepting == 1) {
        open_count = open_count + 1;
        status = 0;
    } else {
        status = -1;
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int do_close(void) {
    int status;
    KeAcquireSpinLock();
    if (open_count > 0) {
        open_count = open_count - 1;
        status = 0;
    } else {
        status = -1;
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int do_cleanup(void) {
    KeAcquireSpinLock();
    open_count = 0;
    KeReleaseSpinLock();
    IoCompleteRequest();
    return 0;
}

void main(void) {
    int op, status;
    op = *;
    open_count = 0;
    accepting = 1;
    if (op == 0) {
        status = do_create();
    } else if (op == 1) {
        status = do_close();
    } else {
        status = do_cleanup();
    }
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)


SRDRIVER = DriverStudy(
    name="srdriver",
    description=(
        "start/reset controller: nested helpers share the lock correctly "
        "by splitting locked and unlocked entry points"
    ),
    source=OS_MODEL + r"""
int hw_ready;
int resets;

void reset_hardware_locked(void) {
    /* caller holds the lock */
    HalWritePort(7, 0);
    resets = resets + 1;
    hw_ready = 0;
}

int sr_start(void) {
    int status;
    KeAcquireSpinLock();
    if (hw_ready == 0) {
        HalWritePort(7, 1);
        hw_ready = 1;
    }
    status = 0;
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int sr_reset(int force) {
    int status;
    status = 0;
    KeAcquireSpinLock();
    if (force > 0) {
        reset_hardware_locked();
    } else {
        if (hw_ready == 1) {
            reset_hardware_locked();
        } else {
            status = -1;
        }
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

void main(void) {
    int op, force, status;
    op = *;
    force = *;
    hw_ready = 0;
    resets = 0;
    if (op == 0) {
        status = sr_start();
    } else {
        status = sr_reset(force);
    }
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)


LOG = DriverStudy(
    name="log",
    description=(
        "logging driver: a ring buffer guarded by the lock; flush loops "
        "while holding the lock and releases on every exit path"
    ),
    source=OS_MODEL + r"""
int buffer[64];
int head;
int count;

void log_append(int value) {
    KeAcquireSpinLock();
    if (count < 64) {
        buffer[head] = value;
        head = head + 1;
        if (head == 64) {
            head = 0;
        }
        count = count + 1;
    }
    KeReleaseSpinLock();
}

int log_flush(void) {
    int flushed;
    flushed = 0;
    KeAcquireSpinLock();
    while (count > 0) {
        HalWritePort(9, buffer[head]);
        count = count - 1;
        flushed = flushed + 1;
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return flushed;
}

void main(void) {
    int op, value, status;
    op = *;
    value = *;
    head = 0;
    count = 0;
    if (op == 0) {
        log_append(value);
        IoCompleteRequest();
        status = 0;
    } else {
        status = log_flush();
    }
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)

SERIAL = DriverStudy(
    name="serial",
    description=(
        "serial port driver: transmit loop under the lock, status-dependent "
        "completion paths that each complete the IRP exactly once (needs "
        "data refinement to validate)"
    ),
    source=OS_MODEL + r"""
int tx_busy;
int tx_count;
int line_errors;

void serial_enable_fifo(void) {
    HalWritePort(11, 1);
}

int serial_write(int count) {
    int status, sent;
    status = 0;
    if (count < 0) {
        status = -1;
    }
    if (count > 4096) {
        status = -2;
    }
    if (status == 0) {
        KeAcquireSpinLock();
        if (tx_busy == 1) {
            status = -3;
        } else {
            tx_busy = 1;
            sent = 0;
            while (sent < count) {
                HalWritePort(12, sent);
                sent = sent + 1;
            }
            tx_count = tx_count + sent;
            tx_busy = 0;
        }
        KeReleaseSpinLock();
    }
    if (status == 0) {
        IoCompleteRequest();
        return 0;
    }
    IoCompleteRequest();
    return status;
}

int serial_read(int max) {
    int status, got;
    status = 0;
    got = 0;
    KeAcquireSpinLock();
    while (got < max && status == 0) {
        got = got + 1;
        if (got > 4096) {
            status = -1;
        }
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    if (status == 0) {
        return got;
    }
    return status;
}

void main(void) {
    int op, amount, status;
    op = *;
    amount = *;
    tx_busy = 0;
    tx_count = 0;
    line_errors = 0;
    serial_enable_fifo();
    if (op == 0) {
        status = serial_write(amount);
    } else {
        status = serial_read(amount);
    }
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)


KBFILTR = DriverStudy(
    name="kbfiltr",
    description=(
        "keyboard filter driver: every request is either completed locally "
        "or forwarded down the stack, never both and never neither"
    ),
    source=OS_MODEL + r"""
/* OS model: forwarding an IRP to the lower driver. */
int IoCallDriver(void) {
    int r;
    r = *;
    return r;
}

int key_count;
int filter_enabled;

int kb_filter_key(int scancode) {
    /* Drop the key if filtering is on and it matches the filter. */
    if (filter_enabled == 1 && scancode == 42) {
        return 1;
    }
    return 0;
}

int kb_dispatch_read(int scancode) {
    int status, drop;
    drop = kb_filter_key(scancode);
    if (drop == 1) {
        /* handled here: complete with success, do not forward */
        key_count = key_count + 1;
        IoCompleteRequest();
        return 0;
    }
    /* pass through to the class driver below us */
    status = IoCallDriver();
    return status;
}

int kb_dispatch_ioctl(int code) {
    int status;
    status = 0;
    KeAcquireSpinLock();
    if (code == 1) {
        filter_enabled = 1;
    } else if (code == 2) {
        filter_enabled = 0;
    } else {
        status = -1;
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

void main(void) {
    int major, arg, status;
    major = *;
    arg = *;
    key_count = 0;
    filter_enabled = *;
    if (major == 3) {
        status = kb_dispatch_read(arg);
    } else {
        status = kb_dispatch_ioctl(arg);
    }
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe", "handoff": "safe"},
)

TOASTER = DriverStudy(
    name="toaster",
    description=(
        "WDM sample-style function driver with a device-extension struct: "
        "PnP start/stop/remove plus read dispatch, lock-guarded state "
        "transitions, every IRP completed exactly once"
    ),
    source=OS_MODEL + r"""
struct device_extension {
    int started;
    int removed;
    int pending_io;
    int power_state;
};

struct device_extension the_device;

int toaster_start(struct device_extension *ext) {
    int status;
    status = 0;
    KeAcquireSpinLock();
    if (ext->removed == 1) {
        status = -1;
    } else {
        if (ext->started == 1) {
            status = -2;
        } else {
            ext->started = 1;
            ext->power_state = 1;
        }
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int toaster_stop(struct device_extension *ext) {
    int status;
    status = 0;
    KeAcquireSpinLock();
    if (ext->started == 1) {
        ext->started = 0;
        ext->power_state = 0;
    } else {
        status = -1;
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int toaster_remove(struct device_extension *ext) {
    KeAcquireSpinLock();
    ext->removed = 1;
    ext->started = 0;
    ext->power_state = 0;
    KeReleaseSpinLock();
    IoCompleteRequest();
    return 0;
}

int toaster_read(struct device_extension *ext, int length) {
    int status, chunk;
    status = 0;
    KeAcquireSpinLock();
    if (ext->started != 1) {
        status = -1;
    } else {
        if (length < 0) {
            status = -2;
        } else {
            ext->pending_io = ext->pending_io + 1;
            chunk = 0;
            while (chunk < length) {
                HalWritePort(3, chunk);
                chunk = chunk + 1;
            }
            ext->pending_io = ext->pending_io - 1;
        }
    }
    KeReleaseSpinLock();
    IoCompleteRequest();
    return status;
}

int toaster_dispatch(int minor, int length) {
    int status;
    if (minor == 0) {
        status = toaster_start(&the_device);
    } else if (minor == 1) {
        status = toaster_stop(&the_device);
    } else if (minor == 2) {
        status = toaster_remove(&the_device);
    } else {
        status = toaster_read(&the_device, length);
    }
    return status;
}

void main(void) {
    int minor, length, status;
    minor = *;
    length = *;
    the_device.started = 0;
    the_device.removed = 0;
    the_device.pending_io = 0;
    the_device.power_state = 0;
    status = toaster_dispatch(minor, length);
}
""",
    entry="main",
    expected={"lock": "safe", "irp": "safe"},
)
