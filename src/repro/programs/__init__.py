"""The experiment corpus.

Two families, matching the paper's Section 6:

- :mod:`repro.programs.heap` and :mod:`repro.programs.arrays` — the array
  bounds checking and heap-invariant programs of Table 2 (kmp, qsort,
  partition, listfind, reverse);
- :mod:`repro.programs.drivers` — five synthetic Windows-NT-style device
  drivers standing in for the (closed-source) DDK drivers of Table 1:
  ``floppy`` (in development, containing a genuine IRP-handling bug),
  ``ioctl``, ``openclos``, ``srdriver``, and ``log``.

Every case study carries its C source, the predicate input file used for
the C2bp runs, and (for drivers) the safety properties checked by SLAM.
"""

from repro.programs.registry import (
    CaseStudy,
    DriverStudy,
    all_drivers,
    all_table2_programs,
    get_driver,
    get_program,
)

__all__ = [
    "CaseStudy",
    "DriverStudy",
    "all_drivers",
    "all_table2_programs",
    "get_driver",
    "get_program",
]
