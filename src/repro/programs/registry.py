"""Case-study descriptors and the lookup registry."""


class CaseStudy:
    """One Table 2 program: source + predicate input file + entry point."""

    def __init__(self, name, description, source, predicate_text, entry, labels=()):
        self.name = name
        self.description = description
        self.source = source
        self.predicate_text = predicate_text
        self.entry = entry
        # (procedure, label) pairs whose Bebop invariants the experiments
        # inspect.
        self.labels = [
            (entry, spot) if isinstance(spot, str) else spot for spot in labels
        ]

    def __repr__(self):
        return "CaseStudy(%r)" % self.name


class DriverStudy:
    """One Table 1 driver: source + the property verdicts it should get."""

    def __init__(self, name, description, source, entry, expected):
        self.name = name
        self.description = description
        self.source = source
        self.entry = entry
        # property key ("lock" | "irp") -> expected verdict string.
        self.expected = dict(expected)

    def __repr__(self):
        return "DriverStudy(%r)" % self.name


def all_table2_programs():
    from repro.programs import arrays, heap

    return [
        arrays.KMP,
        arrays.QSORT,
        heap.PARTITION,
        heap.LISTFIND,
        heap.REVERSE,
    ]


def get_program(name):
    for study in all_table2_programs():
        if study.name == name:
            return study
    raise KeyError("no case study named %r" % name)


def all_drivers():
    from repro.programs import drivers

    return [
        drivers.FLOPPY,
        drivers.IOCTL,
        drivers.OPENCLOS,
        drivers.SRDRIVER,
        drivers.LOG,
        drivers.SERIAL,
        drivers.KBFILTR,
        drivers.TOASTER,
    ]


def get_driver(name):
    for study in all_drivers():
        if study.name == name:
            return study
    raise KeyError("no driver named %r" % name)
