"""Array-bounds case studies (Table 2: kmp, qsort).

These follow Necula's proof-carrying-code examples [26]: the predicates are
the array-index bounds (``index >= 0`` and ``index <= length``) whose
conjunction is the loop invariant the PCC compiler had to generate; C2bp +
Bebop discover it automatically (Section 6.2: "we simply had to model the
bounds ... to produce the appropriate loop invariant").
"""

from repro.programs.registry import CaseStudy

KMP = CaseStudy(
    name="kmp",
    description=(
        "Knuth-Morris-Pratt string matcher over int arrays; bounds "
        "invariants for the pattern index j and text index i"
    ),
    source=r"""
int fail[100];

/* The failure function satisfies 0 <= fail[x] < x for 1 <= x <= m; that
   data-structure invariant (established by kmp_failure and proved by
   Necula's PCC separately) is modeled with an assume after each read. */

void kmp_failure(int p[], int m) {
    int k, q;
    fail[1] = 0;
    k = 0;
    q = 2;
    while (q <= m) {
INV_F:  ;
        assert(k >= 0);
        assert(k < m);
        while (k > 0 && p[k + 1] != p[q]) {
            k = fail[k];
            assume(k >= 0 && k < q);
        }
        if (p[k + 1] == p[q]) {
            k = k + 1;
        }
        fail[q] = k;
        q = q + 1;
    }
}

int kmp_match(int t[], int n, int p[], int m) {
    int i, q, found;
    assume(m >= 1);
    kmp_failure(p, m);
    q = 0;
    i = 1;
    found = 0;
    while (i <= n) {
INV_M:  ;
        assert(q >= 0);
        assert(q <= m);
        while (q > 0 && p[q + 1] != t[i]) {
            q = fail[q];
            assume(q >= 0 && q < m);
        }
        if (p[q + 1] == t[i]) {
            q = q + 1;
        }
        if (q == m) {
            found = 1;
            q = fail[q];
            assume(q >= 0 && q < m);
        }
        i = i + 1;
    }
    return found;
}
""",
    predicate_text="""
kmp_failure
k >= 0, k == 0, k < m, k < q, k <= q, q >= 2, q <= m

kmp_match
m >= 1, q >= 0, q < m, q <= m, i >= 1, i <= n
""",
    entry="kmp_match",
    labels=[("kmp_match", "INV_M"), ("kmp_failure", "INV_F")],
)


QSORT = CaseStudy(
    name="qsort",
    description=(
        "array quicksort (Necula's PCC example): partition indices stay "
        "inside [lo, hi] and the recursive calls narrow the range"
    ),
    source=r"""
int data[100];

int split(int lo, int hi) {
    int pivot, i, j, tmp;
    pivot = data[lo];
    i = lo;
    j = hi + 1;
    while (i < j) {
INV_S:  ;
        assert(i >= lo);
        assert(j <= hi + 1);
        i = i + 1;
        while (i < hi && data[i] < pivot) {
            i = i + 1;
        }
        j = j - 1;
        while (j > lo && data[j] > pivot) {
            j = j - 1;
        }
        if (i < j) {
            tmp = data[i];
            data[i] = data[j];
            data[j] = tmp;
        }
    }
    tmp = data[lo];
    data[lo] = data[j];
    data[j] = tmp;
    return j;
}

void qsort_range(int lo, int hi) {
    int mid;
    if (lo < hi) {
        mid = split(lo, hi);
        qsort_range(lo, mid - 1);
        qsort_range(mid + 1, hi);
    }
}
""",
    predicate_text="""
split
i >= lo, i <= hi + 1, j <= hi + 1, j >= lo, i < j, lo < hi

qsort_range
lo < hi
""",
    entry="qsort_range",
    labels=[("split", "INV_S")],
)
