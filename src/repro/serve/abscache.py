"""A store-backed :class:`repro.analysis.reuse.AbstractionReuse`.

The statement-abstraction cache is the big cross-run lever: a warm
re-verification fetches every unchanged top-level statement's translated
parts (and every procedure's enforce invariant) from disk and runs zero
cube searches for them.  The in-memory dict from the base class remains
the first level (CEGAR iterations inside one process never touch disk
twice for the same key); disk keys add the semantic options fingerprint
on top of the mod/ref statement key, so ablation configurations that can
legitimately translate differently never share entries.

Byte identity is inherited from the reuse assembly path: cached parts are
produced with per-statement temp prefixes and merged with the pinned
first-use renumbering, so a disk hit and a fresh translation print the
same bytes (the fuzz oracle's ``cache-divergence`` check holds the line).
"""

from repro.analysis.reuse import AbstractionReuse, clone_stmts
from repro.serve.keys import enforce_store_key, statement_store_key


class PersistentAbstractionReuse(AbstractionReuse):
    """Statement/enforce reuse with a disk second level."""

    def __init__(self, disk, options, stats=None):
        super().__init__(stats=stats)
        self.disk = disk
        self.options = options
        self.disk_hits = 0
        self.disk_misses = 0

    # -- statements -------------------------------------------------------------

    def fetch(self, key):
        payload = super().fetch(key)
        if payload is not None:
            return payload
        hit, stored = self.disk.get(statement_store_key(key, self.options))
        if not hit:
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        # Undo the base class's retranslated count for this key: the
        # statement is served, not retranslated.
        if self.stats is not None:
            self.stats.c2bp_stmts_retranslated -= 1
            self.stats.c2bp_stmts_reused += 1
        # Promote to memory (cloned on both ends by the base class).
        super().store(
            key,
            stored["stmts"],
            stored["temps"],
            stored["temp_meanings"],
            stored["c2bp"],
        )
        return {
            "stmts": clone_stmts(stored["stmts"]),
            "temps": list(stored["temps"]),
            "temp_meanings": list(stored["temp_meanings"]),
            "c2bp": dict(stored["c2bp"]),
        }

    def store(self, key, stmts, temps, temp_meanings, c2bp_counters):
        super().store(key, stmts, temps, temp_meanings, c2bp_counters)
        self.disk.put(
            statement_store_key(key, self.options),
            {
                "stmts": clone_stmts(stmts),
                "temps": list(temps),
                "temp_meanings": list(temp_meanings),
                "c2bp": dict(c2bp_counters),
            },
        )

    # -- enforce invariants -----------------------------------------------------

    def fetch_enforce(self, key):
        hit, enforce = super().fetch_enforce(key)
        if hit:
            return True, enforce
        disk_hit, stored = self.disk.get(enforce_store_key(key, self.options))
        if not disk_hit:
            return False, None
        # ``stored`` wraps the expression so a legitimate None enforce
        # (no inconsistent cubes) still reads as a hit.
        enforce = stored["enforce"]
        super().store_enforce(key, enforce)
        return True, enforce

    def store_enforce(self, key, enforce):
        super().store_enforce(key, enforce)
        self.disk.put(enforce_store_key(key, self.options), {"enforce": enforce})

    def snapshot(self):
        return {
            "statements": len(self._statements),
            "enforce": len(self._enforce),
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
        }
