"""The content-addressed persistent store.

Layout: ``<root>/<shard>/<digest>.rec`` where ``digest`` is the SHA-256
of the record's canonical key text and ``shard`` its first two hex
digits.  Each record is self-verifying::

    MAGIC (4 bytes) | version (1 byte) | SHA-256 payload checksum (32)
    | payload = pickle((key_text, value))

Writes go to a same-directory temp file then ``os.replace`` — readers
never observe a torn record; concurrent writers of the same key race
benignly (both write the same deterministic answer).  A checksum or
unpickling failure is *detection, not propagation*: the record is deleted,
counted under ``cache_corrupt_records``, and reported as a miss, so a
flipped bit on disk can cost wall-clock but never an answer.

The store enforces an LRU byte cap (``max_bytes``): record files carry
their access recency in mtime (touched on hit), and a put that pushes the
total past the cap evicts oldest-first down to 90% of the cap.  Workers
open the store ``readonly``: gets work, puts are silently dropped (their
entries reach disk through the parent's write-through absorb — the same
watermark/delta discipline the in-memory prover cache already uses).
"""

import hashlib
import os
import pickle
import tempfile

_MAGIC = b"RPCS"
_RECORD_VERSION = 1
_HEADER_LEN = len(_MAGIC) + 1 + 32

#: Fraction of ``max_bytes`` eviction shrinks to (hysteresis, so one
#: oversized put does not trigger an eviction scan per subsequent put).
_EVICT_TARGET = 0.9


class StoreRecordError(Exception):
    """A record failed verification (bad magic/version/checksum/pickle)."""


def encode_record(key_text, value):
    """The on-disk bytes for one record."""
    payload = pickle.dumps((key_text, value), protocol=pickle.HIGHEST_PROTOCOL)
    checksum = hashlib.sha256(payload).digest()
    return _MAGIC + bytes([_RECORD_VERSION]) + checksum + payload


def decode_record(blob):
    """``(key_text, value)`` from record bytes; :class:`StoreRecordError`
    on any verification failure."""
    if len(blob) < _HEADER_LEN or not blob.startswith(_MAGIC):
        raise StoreRecordError("bad magic or truncated header")
    if blob[len(_MAGIC)] != _RECORD_VERSION:
        raise StoreRecordError("unsupported record version %d" % blob[len(_MAGIC)])
    checksum = blob[len(_MAGIC) + 1 : _HEADER_LEN]
    payload = blob[_HEADER_LEN:]
    if hashlib.sha256(payload).digest() != checksum:
        raise StoreRecordError("payload checksum mismatch")
    try:
        key_text, value = pickle.loads(payload)
    except Exception as error:
        raise StoreRecordError("payload does not unpickle: %s" % error)
    return key_text, value


class PersistentStore:
    """A sharded, size-capped, self-verifying record store."""

    #: Counter names surfaced by :meth:`snapshot` and merged from worker
    #: deltas by :meth:`merge_counters`.
    COUNTER_FIELDS = (
        "hits",
        "misses",
        "writes",
        "write_skips",
        "evictions",
        "bytes_read",
        "bytes_written",
        "bytes_evicted",
        "cache_corrupt_records",
    )

    def __init__(self, root, max_bytes=None, readonly=False):
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        self.readonly = readonly
        self._total_bytes = None  # lazy: scanned on first capped put
        self._namespace_counts = {}  # namespace -> {"hits": n, "misses": n}
        for name in self.COUNTER_FIELDS:
            setattr(self, name, 0)
        if not readonly:
            os.makedirs(self.root, exist_ok=True)

    # -- paths -----------------------------------------------------------------

    @staticmethod
    def digest(key_text):
        return hashlib.sha256(key_text.encode("utf-8")).hexdigest()

    def _path(self, key_text):
        digest = self.digest(key_text)
        return os.path.join(self.root, digest[:2], digest + ".rec")

    @staticmethod
    def _namespace(key_text):
        return key_text.split("|", 1)[0]

    def _count_namespace(self, key_text, field):
        entry = self._namespace_counts.setdefault(
            self._namespace(key_text), {"hits": 0, "misses": 0}
        )
        entry[field] += 1

    # -- record access ---------------------------------------------------------

    def get(self, key_text):
        """``(hit, value)``; corrupt records are deleted and miss."""
        path = self._path(key_text)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            self.misses += 1
            self._count_namespace(key_text, "misses")
            return False, None
        except OSError:
            self.misses += 1
            self._count_namespace(key_text, "misses")
            return False, None
        try:
            stored_key, value = decode_record(blob)
            if stored_key != key_text:
                raise StoreRecordError("key text mismatch (digest collision?)")
        except StoreRecordError:
            self.cache_corrupt_records += 1
            self.misses += 1
            self._count_namespace(key_text, "misses")
            self._remove(path)
            return False, None
        self.hits += 1
        self.bytes_read += len(blob)
        self._count_namespace(key_text, "hits")
        try:  # refresh LRU recency; best-effort (readonly mounts etc.)
            os.utime(path)
        except OSError:
            pass
        return True, value

    def contains(self, key_text):
        return os.path.exists(self._path(key_text))

    def put(self, key_text, value, overwrite=False):
        """Write one record atomically; no-op when readonly, and (unless
        ``overwrite``) when the record already exists — answers are
        deterministic, so the first write wins and rewrites are waste."""
        if self.readonly:
            self.write_skips += 1
            return False
        path = self._path(key_text)
        if not overwrite and os.path.exists(path):
            self.write_skips += 1
            return False
        blob = encode_record(key_text, value)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.writes += 1
        self.bytes_written += len(blob)
        if self._total_bytes is not None:
            self._total_bytes += len(blob)
        if self.max_bytes is not None:
            self._maybe_evict()
        return True

    def _remove(self, path):
        try:
            size = os.path.getsize(path)
            os.unlink(path)
        except OSError:
            return 0
        if self._total_bytes is not None:
            self._total_bytes = max(0, self._total_bytes - size)
        return size

    # -- size accounting and LRU eviction --------------------------------------

    def _scan(self):
        """``[(mtime, size, path)]`` for every record file."""
        records = []
        try:
            shards = os.scandir(self.root)
        except OSError:
            return records
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    entries = os.scandir(shard.path)
                except OSError:
                    continue
                with entries:
                    for entry in entries:
                        if not entry.name.endswith(".rec"):
                            continue
                        try:
                            stat = entry.stat()
                        except OSError:
                            continue
                        records.append((stat.st_mtime, stat.st_size, entry.path))
        return records

    def total_bytes(self):
        if self._total_bytes is None:
            self._total_bytes = sum(size for _, size, _ in self._scan())
        return self._total_bytes

    def _maybe_evict(self):
        if self.total_bytes() <= self.max_bytes:
            return
        target = int(self.max_bytes * _EVICT_TARGET)
        for _, size, path in sorted(self._scan()):
            if self._total_bytes <= target:
                break
            removed = self._remove(path)
            if removed:
                self.evictions += 1
                self.bytes_evicted += removed

    def clear(self):
        """Delete every record (``flush`` with ``disk=true``)."""
        if self.readonly:
            return 0
        removed = 0
        for _, _, path in self._scan():
            if self._remove(path):
                removed += 1
        self._total_bytes = 0
        return removed

    def file_count(self):
        return len(self._scan())

    # -- stats -----------------------------------------------------------------

    def counters(self):
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def merge_counters(self, delta):
        """Fold a worker's counter delta into this store's counters (the
        ``namespaces`` sub-dict included, when present)."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + delta.get(name, 0))
        for namespace, counts in delta.get("namespaces", {}).items():
            entry = self._namespace_counts.setdefault(
                namespace, {"hits": 0, "misses": 0}
            )
            for field, value in counts.items():
                entry[field] = entry.get(field, 0) + value

    def counters_with_namespaces(self):
        out = self.counters()
        out["namespaces"] = {
            name: dict(entry) for name, entry in self._namespace_counts.items()
        }
        return out

    def snapshot(self):
        out = self.counters()
        out["namespaces"] = {
            name: dict(entry)
            for name, entry in sorted(self._namespace_counts.items())
        }
        out["root"] = self.root
        out["readonly"] = self.readonly
        out["max_bytes"] = self.max_bytes
        return out

    def close(self):
        """Nothing buffered — provided for symmetric lifecycle wiring."""

    def __repr__(self):
        return "PersistentStore(%r, hits=%d, misses=%d, writes=%d)" % (
            self.root,
            self.hits,
            self.misses,
            self.writes,
        )
