"""Blocking client for the ``repro serve`` daemon.

A :class:`ServeClient` holds one connection and exchanges the framed
JSON messages of :mod:`repro.serve.protocol`.  :meth:`request` sends one
request object; :meth:`batch` pipelines a list of requests in a single
frame and returns the positional list of responses — the cheap way to
push many verification queries through the daemon's warm caches.

Addresses: a filesystem path is a unix socket; ``tcp:HOST:PORT`` dials
TCP (the same syntax the CLI's ``--remote`` flag takes).
"""

import socket

from repro.serve.protocol import ProtocolError, recv_message, send_message


class ServeClient:
    def __init__(self, sock):
        self._sock = sock

    @classmethod
    def connect_unix(cls, path, timeout=None):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        return cls(sock)

    @classmethod
    def connect_tcp(cls, host, port, timeout=None):
        sock = socket.create_connection((host, int(port)), timeout=timeout)
        return cls(sock)

    @classmethod
    def from_address(cls, address, timeout=None):
        """``tcp:HOST:PORT`` or a unix socket path."""
        if address.startswith("tcp:"):
            host, _, port = address[len("tcp:"):].rpartition(":")
            return cls.connect_tcp(host or "127.0.0.1", port, timeout=timeout)
        return cls.connect_unix(address, timeout=timeout)

    def request(self, message):
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection without replying")
        return response

    def batch(self, messages):
        """Pipeline ``messages`` in one frame; responses are positional."""
        responses = self.request(list(messages))
        if not isinstance(responses, list) or len(responses) != len(messages):
            raise ProtocolError("batch reply shape does not match the request")
        return responses

    # -- control-op conveniences --------------------------------------------

    def ping(self):
        return self.request({"op": "ping"})

    def stats(self):
        return self.request({"op": "stats"})

    def flush(self):
        return self.request({"op": "flush"})

    def shutdown(self):
        return self.request({"op": "shutdown"})

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()
