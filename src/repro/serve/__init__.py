"""Verification-as-a-service: persistent caches and the ``repro serve``
daemon.

The in-process reuse machinery — the canonical-form prover query cache
(:mod:`repro.prover.cache`), the fingerprint-keyed Bebop compiled-transfer
tables (:mod:`repro.bebop.reuse`), and the mod/ref-keyed statement
abstraction cache (:mod:`repro.analysis.reuse`) — dies with the process.
This package makes all three content-addressed and disk-backed, turning
per-iteration reuse into cross-run and cross-client reuse:

- :mod:`repro.serve.store` — the content-addressed disk store (SHA-256
  keys, sharded directories, atomic renames, versioned checksummed
  records, LRU size cap);
- :mod:`repro.serve.keys` — canonical key texts (alpha-normalized
  temporaries, order-insensitive antecedents) and the semantic options
  fingerprint;
- :mod:`repro.serve.provercache` / :mod:`repro.serve.abscache` /
  :mod:`repro.serve.bebopcache` — store-backed drop-ins for the three
  in-memory caches;
- :mod:`repro.serve.protocol` / :mod:`repro.serve.server` /
  :mod:`repro.serve.client` — the length-prefixed JSON protocol, the
  asyncio ``repro serve`` daemon, and the ``--remote`` client.

The store is strictly an answer cache: every wired layer is pinned (by
the fuzz oracle's ``cache-divergence`` check and the serve test tier) to
produce byte-identical boolean programs and verdicts with the cache off,
cold, or warm.
"""

from repro.serve.abscache import PersistentAbstractionReuse
from repro.serve.bebopcache import BebopTableStore
from repro.serve.keys import (
    canonical_query_text,
    enforce_store_key,
    options_fingerprint,
    query_store_key,
    statement_store_key,
)
from repro.serve.provercache import PersistentQueryCache
from repro.serve.store import PersistentStore, StoreRecordError

__all__ = [
    "BebopTableStore",
    "PersistentAbstractionReuse",
    "PersistentQueryCache",
    "PersistentStore",
    "StoreRecordError",
    "canonical_query_text",
    "enforce_store_key",
    "options_fingerprint",
    "query_store_key",
    "statement_store_key",
]
