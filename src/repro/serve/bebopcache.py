"""Disk persistence for Bebop's compiled procedure tables.

A :class:`repro.bebop.checker.CompiledProc` is everything derivable from
a procedure's text alone: per-node transfer relations (BDDs) plus the
entry/summary plumbing (variable index lists and maps).  Its fingerprint
(:func:`repro.bebop.checker.procedure_fingerprint`) digests the whole
dependency set — global list, procedure text, callee interfaces — so a
record keyed by fingerprint can be rehydrated into *any* later run whose
procedure text matches, even across processes and across programs that
merely share the procedure.

BDD node indices are manager-relative (``2 * slot (+1 for shadow)``), so
records store every variable as a neutral ``(slot_key, shadow)`` symbol
and every BDD as a postorder node list over those symbols.  Rehydration
maps symbols through the *loading* checker's slot table (deterministically
preallocated from the program text) and rebuilds nodes bottom-up with
``manager.ite`` — hash-consing makes the result canonical in the new
manager regardless of slot renumbering.
"""

from repro.serve.keys import bebop_store_key


def _serialize_bdds(checker, roots):
    """Encode ``roots`` (BDDs, possibly None) into one shared node
    environment.  Returns ``(syms, nodes, refs)`` where refs[i] is the
    encoded root of roots[i] (0=false, 1=true, n>=2 -> nodes[n-2]) or
    None."""
    manager = checker.manager
    slot_names = {slot: key for key, slot in checker._slots.items()}
    syms = []
    sym_index = {}
    nodes = []
    node_refs = {manager.false._id: 0, manager.true._id: 1}

    def var_sym(var):
        sym = (slot_names[var // 2], var & 1)
        index = sym_index.get(sym)
        if index is None:
            index = sym_index[sym] = len(syms)
            syms.append(sym)
        return index

    def encode(root):
        if root is None:
            return None
        stack = [root]
        while stack:
            node = stack[-1]
            if node._id in node_refs:
                stack.pop()
                continue
            low_ref = node_refs.get(node.low._id)
            high_ref = node_refs.get(node.high._id)
            if low_ref is None or high_ref is None:
                if high_ref is None:
                    stack.append(node.high)
                if low_ref is None:
                    stack.append(node.low)
                continue
            nodes.append((var_sym(node.var), low_ref, high_ref))
            node_refs[node._id] = len(nodes) + 1
            stack.pop()
        return node_refs[root._id]

    return syms, nodes, [encode(root) for root in roots], var_sym


def serialize_table(checker, table):
    """A :class:`CompiledProc` as a plain, picklable, manager-neutral
    structure."""
    from repro.bebop.checker import CompiledCall, CompiledTransfer

    bdd_roots = [table.enforce, table.entry_identity]
    transfer_specs = []
    for uid, (kind, payload) in sorted(table.transfers.items()):
        if payload is None:
            transfer_specs.append((uid, kind, None))
        elif isinstance(payload, CompiledTransfer):
            transfer_specs.append((uid, kind, ("transfer", len(bdd_roots))))
            bdd_roots.append(payload.constraint)
        elif isinstance(payload, CompiledCall):
            transfer_specs.append((uid, kind, ("call", len(bdd_roots))))
            bdd_roots.append(payload.bind)
        else:  # branch / assume / assert / return: a bare BDD
            transfer_specs.append((uid, kind, ("bdd", len(bdd_roots))))
            bdd_roots.append(payload)
    syms, nodes, refs, var_sym = _serialize_bdds(checker, bdd_roots)

    transfers = []
    for uid, kind, spec in transfer_specs:
        payload = table.transfers[uid][1]
        if spec is None:
            transfers.append((uid, kind, None))
        elif spec[0] == "transfer":
            transfers.append(
                (
                    uid,
                    kind,
                    {
                        "constraint": refs[spec[1]],
                        "quantified": sorted(
                            var_sym(v) for v in payload.quantified
                        ),
                        "shift_map": sorted(
                            (var_sym(s), var_sym(c))
                            for s, c in payload.shift_map.items()
                        ),
                    },
                )
            )
        elif spec[0] == "call":
            transfers.append(
                (
                    uid,
                    kind,
                    {
                        "callee": payload.callee,
                        "bind": refs[spec[1]],
                        "in_set": sorted(var_sym(v) for v in payload.in_set),
                        "dead": sorted(var_sym(v) for v in payload.dead),
                        "out_map": sorted(
                            (var_sym(o), var_sym(c))
                            for o, c in payload.out_map.items()
                        ),
                    },
                )
            )
        else:
            transfers.append((uid, kind, {"bdd": refs[spec[1]]}))
    return {
        "fingerprint": table.fingerprint,
        "syms": syms,
        "nodes": nodes,
        "enforce": refs[0],
        "entry_identity": refs[1],
        "ent_vars": [var_sym(v) for v in table.ent_vars],
        "in_to_ent": sorted(
            (var_sym(a), var_sym(b)) for a, b in table.in_to_ent.items()
        ),
        "summary_locals": sorted(var_sym(v) for v in table.summary_locals),
        "summary_map": sorted(
            (var_sym(a), var_sym(b)) for a, b in table.summary_map.items()
        ),
        "transfers": transfers,
    }


def deserialize_table(checker, data):
    """Rebuild a :class:`CompiledProc` inside ``checker``'s manager."""
    from repro.bebop.checker import CompiledCall, CompiledProc, CompiledTransfer

    manager = checker.manager
    var_of = [
        2 * checker._slot(tuple_key(key)) + shadow for key, shadow in data["syms"]
    ]
    refs = [manager.false, manager.true]
    for sym, low_ref, high_ref in data["nodes"]:
        refs.append(
            manager.ite(manager.var(var_of[sym]), refs[high_ref], refs[low_ref])
        )

    def bdd(ref):
        return None if ref is None else refs[ref]

    table = CompiledProc(data["fingerprint"])
    table.enforce = bdd(data["enforce"])
    table.entry_identity = bdd(data["entry_identity"])
    table.ent_vars = [var_of[s] for s in data["ent_vars"]]
    table.in_to_ent = {var_of[a]: var_of[b] for a, b in data["in_to_ent"]}
    table.summary_locals = frozenset(var_of[s] for s in data["summary_locals"])
    table.summary_map = {var_of[a]: var_of[b] for a, b in data["summary_map"]}
    for uid, kind, spec in data["transfers"]:
        if spec is None:
            table.transfers[uid] = (kind, None)
        elif kind == "assign":
            table.transfers[uid] = (
                kind,
                CompiledTransfer(
                    bdd(spec["constraint"]),
                    frozenset(var_of[s] for s in spec["quantified"]),
                    {var_of[a]: var_of[b] for a, b in spec["shift_map"]},
                ),
            )
        elif kind == "call":
            table.transfers[uid] = (
                kind,
                CompiledCall(
                    spec["callee"],
                    bdd(spec["bind"]),
                    frozenset(var_of[s] for s in spec["in_set"]),
                    frozenset(var_of[s] for s in spec["dead"]),
                    {var_of[a]: var_of[b] for a, b in spec["out_map"]},
                ),
            )
        else:
            table.transfers[uid] = (kind, bdd(spec["bdd"]))
    return table


def tuple_key(key):
    """Slot keys are (nested) tuples; pickle preserves them, but be
    defensive about lists arriving from older/foreign records."""
    if isinstance(key, list):
        return tuple(tuple_key(part) for part in key)
    if isinstance(key, tuple):
        return tuple(tuple_key(part) for part in key)
    return key


class BebopTableStore:
    """Load/save compiled procedure tables from/to a persistent store."""

    def __init__(self, disk):
        self.disk = disk
        self.tables_loaded = 0
        self.tables_saved = 0

    def load(self, checker, proc_name, fingerprint):
        hit, data = self.disk.get(bebop_store_key(proc_name, fingerprint))
        if not hit:
            return None
        if data.get("fingerprint") != fingerprint:
            return None
        try:
            table = deserialize_table(checker, data)
        except Exception:
            # A malformed (but checksum-valid) record — e.g. produced by
            # an incompatible build — must degrade to a recompile, never
            # a crash.
            return None
        self.tables_loaded += 1
        return table

    def save(self, checker, proc_name, table):
        self.disk.put(
            bebop_store_key(proc_name, table.fingerprint),
            serialize_table(checker, table),
        )
        self.tables_saved += 1

    def snapshot(self):
        return {
            "tables_loaded": self.tables_loaded,
            "tables_saved": self.tables_saved,
        }
