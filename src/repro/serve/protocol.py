"""Wire protocol for the ``repro serve`` daemon.

A connection carries a sequence of *frames*; each frame is a 4-byte
big-endian payload length followed by that many bytes of UTF-8 JSON.
One frame holds either a single request/response object or a JSON list
of them (a *batch*): the server answers a batched frame with one frame
whose list matches the requests positionally, so a client can pipeline
many verification queries over one round trip.

Requests are ``{"op": <name>, ...}``; responses always carry ``"ok"``
(bool) and ``"op"``, plus either the op's payload or ``"error"``.  The
framing itself is transport-neutral — the same helpers back the
blocking client sockets and the server's asyncio streams.
"""

import json
import struct

#: Bump when request/response shapes change incompatibly.  The server
#: states its version in every response; clients may check it.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame (64 MiB).  A frame length beyond this
#: is a corrupt or hostile stream, not a big program.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame: bad length, truncated stream, or invalid JSON."""


def encode_frame(message):
    """``message`` (any JSON-serializable value) as one wire frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds limit" % len(payload))
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload):
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("invalid frame payload: %s" % exc)


def _check_length(length):
    if length > MAX_FRAME_BYTES:
        raise ProtocolError("announced frame of %d bytes exceeds limit" % length)


# -- blocking sockets (client side) -----------------------------------------


def _recv_exactly(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def send_message(sock, message):
    sock.sendall(encode_frame(message))


def recv_message(sock):
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    header = b""
    while len(header) < _LENGTH.size:
        chunk = sock.recv(_LENGTH.size - len(header))
        if not chunk:
            if header:
                raise ProtocolError("connection closed mid-header")
            return None
        header += chunk
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length))


# -- asyncio streams (server side) ------------------------------------------


async def read_message(reader):
    """Read one frame from an asyncio reader; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header")
    (length,) = _LENGTH.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)


async def write_message(writer, message):
    writer.write(encode_frame(message))
    await writer.drain()
