"""A store-backed :class:`repro.prover.cache.QueryCache`.

Drop-in for the in-memory cache on the :class:`repro.engine.EngineContext`
spine: lookups fall through to the disk store on an in-memory miss, and
every store/absorb writes through, so answers survive the process and are
shared across runs, configurations, and serve clients.

The in-memory dict stays authoritative for the export/absorb watermark
discipline the worker pool uses: a disk hit is *inserted* into the dict
(so it ships to workers like any other entry), and entries absorbed from
workers are written through by the parent — workers themselves run with a
``readonly`` store, never contending on writes.
"""

from repro.prover.cache import QueryCache
from repro.serve.keys import query_store_key


class PersistentQueryCache(QueryCache):
    """The canonical-form query cache with a disk second level.

    The disk store rides on ``self.disk`` (``store`` would shadow the
    inherited :meth:`QueryCache.store` mutator every caller uses).
    """

    def __init__(self, disk):
        super().__init__()
        self.disk = disk
        self.disk_hits = 0
        self._key_texts = {}  # in-memory key -> canonical store key text

    def _key_text(self, key):
        text = self._key_texts.get(key)
        if text is None:
            text = query_store_key(key)
            self._key_texts[key] = text
        return text

    def lookup(self, key):
        value = self._entries.get(key, self._MISSING)
        if value is not self._MISSING:
            self.hits += 1
            return True, value
        hit, value = self.disk.get(self._key_text(key))
        if hit:
            # Promote to memory so the watermark/export discipline (and
            # future lookups) see it like any locally computed answer.
            self._entries[key] = value
            self.hits += 1
            self.disk_hits += 1
            return True, value
        self.misses += 1
        return False, None

    def store(self, key, value):
        self._entries[key] = value
        self.disk.put(self._key_text(key), value)

    def absorb(self, items):
        for key, value in items:
            if key not in self._entries:
                self._entries[key] = value
            # Parent-side write-through for worker-computed answers (the
            # store skips keys already on disk).
            self.disk.put(self._key_text(key), value)

    def snapshot(self):
        out = super().snapshot()
        out["disk_hits"] = self.disk_hits
        return out
