"""Canonical key texts for the content-addressed store.

A disk key must be stable across *processes*, which is stricter than the
in-memory caches need: ``QueryCache`` keys contain a ``frozenset`` whose
iteration order depends on ``PYTHONHASHSEED``, and prover queries mention
compiler-generated temporaries (the ``__t<N>`` names
:mod:`repro.cfront.simplify` introduces) whose numbering shifts when an
unrelated earlier statement is edited.  This module renders such keys to
deterministic text:

- antecedents are constant-folded, pretty-printed, and *sorted* (order
  and duplication are forgotten, matching the in-memory frozenset);
- generated temporaries are alpha-normalized to ``__c<N>`` in a
  content-derived order, so a near-identical submission whose lowering
  happened to number its temps differently still hits;
- the result is hashed with SHA-256 together with a namespace tag and a
  format-version salt.

Soundness: validity is invariant under *injective* renaming of free
variables, and the normalization below is a bijection from the query's
temp names onto ``__c0..__c<k>`` (fresh names — normalization is skipped
entirely if any expression already mentions a ``__c`` identifier).  Two
queries rendering to the same canonical text are therefore related by a
temp bijection and have the same answer; hash-equal keys are sound.  The
only cost of the deterministic tie-breaking is pathological: structurally
identical antecedents differing just in temp identity may order either
way across processes, causing a spurious miss, never a wrong hit.
"""

import hashlib
import re

from repro.cfront.exprutils import fold_constants
from repro.cfront.pretty import pretty_expr

#: Bump when any record layout or key scheme changes: old entries then
#: simply stop matching (a cold run repopulates the store).
FORMAT_VERSION = 1

#: Compiler-generated temporaries subject to alpha-normalization: the
#: ``__t<N>`` simplifier temps that reach prover queries, plus the
#: ``__r...`` boolean-program temps should their meanings ever be queried.
_TEMP_PATTERN = re.compile(r"\b__(?:t|r[cw]?)\d+(?:_\d+)?\b")

#: The canonical replacement names (must never collide with real program
#: identifiers; normalization is skipped when the guard below trips).
_CANON_GUARD = "__c"


def _local_normal_form(text):
    """``text`` with its temps renumbered by first occurrence *within this
    expression* — deterministic per expression, used as the sort key."""
    seen = {}

    def rename(match):
        name = match.group(0)
        if name not in seen:
            seen[name] = "%s%d" % (_CANON_GUARD, len(seen))
        return seen[name]

    return _TEMP_PATTERN.sub(rename, text)


def _substitute(text, mapping):
    return _TEMP_PATTERN.sub(lambda m: mapping.get(m.group(0), m.group(0)), text)


def canonical_query_text(kind, exprs, consequent=None):
    """Deterministic text for a prover query, stable across processes and
    across temp renumbering.  ``kind``/``exprs``/``consequent`` are as in
    :meth:`repro.prover.cache.QueryCache.key`."""
    folded = sorted({pretty_expr(fold_constants(e)) for e in exprs})
    goal = (
        pretty_expr(fold_constants(consequent)) if consequent is not None else ""
    )
    texts = ([goal] if goal else []) + folded
    if not any(_TEMP_PATTERN.search(t) for t in texts):
        return "%s|%s|%s" % (kind, goal, "\x1f".join(folded))
    if any(_CANON_GUARD in t for t in texts):
        # A real identifier shadows the canonical namespace: renaming
        # could break injectivity, so fall back to the raw (sorted) text.
        return "%s|%s|%s" % (kind, goal, "\x1f".join(folded))
    # Order antecedents by their temp-erased local normal form, then
    # assign global numbers by first occurrence over (goal, antecedents).
    ordered = sorted(folded, key=_local_normal_form)
    mapping = {}
    for text in [goal] + ordered:
        for match in _TEMP_PATTERN.finditer(text):
            name = match.group(0)
            if name not in mapping:
                mapping[name] = "%s%d" % (_CANON_GUARD, len(mapping))
    goal = _substitute(goal, mapping)
    normalized = sorted(_substitute(text, mapping) for text in ordered)
    return "%s|%s|%s" % (kind, goal, "\x1f".join(normalized))


def _digest_text(namespace, text):
    return "%s|v%d|%s" % (namespace, FORMAT_VERSION, text)


def query_store_key(key):
    """The store key text for an in-memory :class:`QueryCache` key.

    Prover answers depend only on the query (every strengthening /
    theory / analysis configuration is pinned answer-invisible), so the
    options fingerprint is deliberately absent: runs under different
    ablation configurations share prover entries.
    """
    kind, exprs, consequent = key
    return _digest_text("prover", canonical_query_text(kind, exprs, consequent))


#: The :class:`repro.core.options.C2bpOptions` fields a statement's
#: translation (and enforce invariant) can read.  Deliberately excludes
#: the answer-invisible knobs — ``strengthen``, ``incremental_cubes``,
#: ``theory_incremental``, ``cache_prover``, ``jobs``, the Bebop engine
#: selection, ``bp_dce`` (a post-pass), ``validate_output``, and the
#: cache wiring itself — so configurations that provably print the same
#: bytes share statement entries.
SEMANTIC_OPTION_FIELDS = (
    "max_cube_length",
    "cone_of_influence",
    "skip_unchanged",
    "syntactic_heuristics",
    "distribute_f",
    "compute_enforce",
    "enforce_cube_length",
    "use_alias_analysis",
    "invalidate_constant_derefs",
    "use_analysis",
    "live_predicates",
    "intervals",
)


def options_fingerprint(options):
    """A short digest of the semantically relevant option fields."""
    parts = tuple(
        (name, getattr(options, name, None)) for name in SEMANTIC_OPTION_FIELDS
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()[:16]


def statement_store_key(stmt_key, options):
    """The store key text for a statement-abstraction cache entry.

    ``stmt_key`` is :meth:`repro.analysis.ProgramAnalyses.statement_key`
    output — a nested tuple of strings/ints whose ``repr`` is process
    stable (predicate names are content-derived, liveness fact tuples are
    sorted)."""
    return _digest_text(
        "c2bp-stmt", "%s|%s" % (options_fingerprint(options), repr(stmt_key))
    )


def enforce_store_key(enforce_key, options):
    """The store key text for a per-procedure enforce invariant."""
    return _digest_text(
        "c2bp-enforce", "%s|%s" % (options_fingerprint(options), repr(enforce_key))
    )


def bebop_store_key(proc_name, fingerprint):
    """The store key text for a compiled Bebop procedure table.

    The fingerprint (:func:`repro.bebop.checker.procedure_fingerprint`)
    digests everything the table depends on *except the procedure's own
    name* — yet the serialized slot keys mention that name (``("l",
    proc, v)`` etc.), so two textually identical procedures (stub pairs
    are common) must not share a record."""
    return _digest_text("bebop", "%s|%s" % (proc_name, fingerprint))
