"""The ``repro serve`` daemon: verification as a service.

One long-lived process holds the expensive state every one-shot CLI run
rebuilds from scratch — the warm in-memory prover cache and, with
``--cache-dir``, the content-addressed :class:`PersistentStore` — and
answers ``abstract``/``check``/``slam`` requests over a unix socket
(optionally also TCP).  Requests arrive as length-prefixed JSON frames
(:mod:`repro.serve.protocol`); a frame holding a JSON list is a batch
answered positionally in one reply frame.

Each verification request runs the *same* subcommand core the CLI runs
(:func:`repro.cli.run_abstract` and friends) into a string buffer, inside
a per-request :class:`~repro.engine.EngineContext` that shares the
daemon's caches — so ``--remote`` output is byte-identical to a local
run, warm caches aside.  Compute is serialized through a single worker
thread: concurrent clients multiplex on the event loop (connects, frame
parsing, control ops stay responsive) while verification jobs queue.

Control ops: ``ping``, ``stats`` (server counters + cache snapshots),
``flush`` (drop the warm in-memory caches, keep the disk store), and
``shutdown`` (reply, then exit cleanly).
"""

import asyncio
import concurrent.futures
import dataclasses
import io
import json
import os

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)

#: Ops answered inline on the event loop.
_CONTROL_OPS = ("ping", "stats", "flush", "shutdown")

#: Ops that run a verification pipeline (on the compute thread).
_COMPUTE_OPS = ("abstract", "c2bp", "check", "slam")


def _error(op, message):
    return {"ok": False, "op": op, "protocol": PROTOCOL_VERSION, "error": message}


class ReproServer:
    """State and request handlers for one daemon instance."""

    def __init__(
        self, socket_path=None, tcp=None, cache_dir=None, cache_max_bytes=None
    ):
        self.socket_path = socket_path
        self.tcp = tcp  # "HOST:PORT" or None
        self.cache_dir = cache_dir
        self.store = None
        if cache_dir:
            from repro.serve.store import PersistentStore

            self.store = PersistentStore(cache_dir, max_bytes=cache_max_bytes)
        self.cache = self._fresh_cache()
        self.requests = 0
        self.op_counts = {}
        self.flushes = 0
        self._executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
        self._stop = None  # asyncio.Event, created inside the loop

    def _fresh_cache(self):
        if self.store is not None:
            from repro.serve.provercache import PersistentQueryCache

            return PersistentQueryCache(self.store)
        from repro.prover.cache import QueryCache

        return QueryCache()

    # -- request dispatch ---------------------------------------------------

    async def respond(self, message):
        """One frame in, one frame out (a list request gets a list reply)."""
        if isinstance(message, list):
            return [await self._respond_one(item) for item in message]
        return await self._respond_one(message)

    async def _respond_one(self, request):
        if not isinstance(request, dict) or "op" not in request:
            return _error("?", "request must be an object with an 'op'")
        op = request["op"]
        self.requests += 1
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if op in _CONTROL_OPS:
            return getattr(self, "_op_" + op)(request)
        if op in _COMPUTE_OPS:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._executor, self._run_job, request)
        return _error(op, "unknown op %r" % op)

    # -- control ops --------------------------------------------------------

    def _op_ping(self, request):
        return {"ok": True, "op": "ping", "protocol": PROTOCOL_VERSION}

    def _op_stats(self, request):
        return {
            "ok": True,
            "op": "stats",
            "protocol": PROTOCOL_VERSION,
            "requests": self.requests,
            "ops": dict(self.op_counts),
            "flushes": self.flushes,
            "prover_cache": self.cache.snapshot(),
            "persistent_cache": (
                self.store.snapshot() if self.store is not None else None
            ),
        }

    def _op_flush(self, request):
        """Drop the warm in-memory caches; the disk store stays intact (a
        later request re-promotes from it)."""
        dropped = self.cache.snapshot().get("entries", 0)
        self.cache = self._fresh_cache()
        self.flushes += 1
        return {"ok": True, "op": "flush", "entries_dropped": dropped}

    def _op_shutdown(self, request):
        if self._stop is not None:
            self._stop.set()
        return {"ok": True, "op": "shutdown"}

    # -- compute ops (single worker thread) ---------------------------------

    def _request_options(self, fields):
        """Client option fields -> this request's :class:`C2bpOptions`.

        Unknown keys are dropped (newer clients degrade gracefully); the
        cache wiring is forced to the daemon's own store, and ``jobs=0``
        resolves to 1 — a daemon answers many small requests, where a
        per-request worker-pool fork costs more than it saves.
        """
        from repro.core.options import C2bpOptions

        known = {field.name for field in dataclasses.fields(C2bpOptions)}
        kwargs = {k: v for k, v in dict(fields or {}).items() if k in known}
        options = C2bpOptions(**kwargs)
        options.cache_dir = None
        options.cache_max_bytes = None
        if not options.jobs:
            options.jobs = 1
        return options

    def _run_job(self, request):
        op = request["op"]
        try:
            return self._run_job_inner(op, request)
        except Exception as exc:  # a bad program must not kill the daemon
            return _error(op, "%s: %s" % (type(exc).__name__, exc))

    def _run_job_inner(self, op, request):
        from repro.cli import run_abstract, run_check, run_slam
        from repro.engine import EngineContext

        options = self._request_options(request.get("options"))
        out = io.StringIO()
        context = EngineContext(options=options, cache=self.cache)
        try:
            name = request.get("name", "<remote>")
            if op in ("abstract", "c2bp"):
                code = run_abstract(
                    context, request["source"], request["predicates"], out,
                    name=name,
                )
            elif op == "check":
                code = run_check(
                    context, request["source"], request["predicates"], out,
                    name=name,
                    entry=request.get("entry", "main"),
                    labels=request.get("labels") or (),
                    bp_dce=request.get("bp_dce", True),
                )
            else:  # slam
                spec = self._slam_spec(request)
                code = run_slam(
                    context, request["source"], spec, out,
                    entry=request.get("entry", "main"),
                    max_iterations=request.get("max_iterations", 10),
                )
            response = {
                "ok": True,
                "op": op,
                "protocol": PROTOCOL_VERSION,
                "exit_code": code,
                "output": out.getvalue(),
            }
            # Round-trip through the registries' own JSON encoders so the
            # remote files match local --stats-json/--trace-json output.
            if request.get("want_stats"):
                response["stats"] = json.loads(context.stats.to_json())
            if request.get("want_trace"):
                response["trace"] = json.loads(context.events.to_json())
            return response
        finally:
            context.close()

    def _slam_spec(self, request):
        from repro.slam import SafetySpec

        if request.get("lock"):
            acquire, release = request["lock"]
            return SafetySpec.lock_discipline(acquire, release)
        if request.get("complete_once"):
            return SafetySpec.complete_exactly_once(request["complete_once"])
        raise ValueError("slam request needs 'lock' or 'complete_once'")

    # -- connection + lifecycle ---------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(writer, _error("?", str(exc)))
                    break
                if message is None:
                    break
                await write_message(writer, await self.respond(message))
                if self._stop is not None and self._stop.is_set():
                    break
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def serve(self, ready=None):
        """Listen until a ``shutdown`` request (or cancellation)."""
        self._stop = asyncio.Event()
        servers = []
        endpoints = []
        try:
            if self.socket_path:
                servers.append(
                    await asyncio.start_unix_server(
                        self._handle_connection, path=self.socket_path
                    )
                )
                endpoints.append("unix:%s" % self.socket_path)
            if self.tcp:
                host, _, port = self.tcp.rpartition(":")
                servers.append(
                    await asyncio.start_server(
                        self._handle_connection, host=host or "127.0.0.1",
                        port=int(port),
                    )
                )
                endpoints.append("tcp:%s" % self.tcp)
            if not servers:
                raise ValueError("serve needs a --socket path or --tcp address")
            if ready is not None:
                ready(endpoints)
            await self._stop.wait()
        finally:
            for server in servers:
                server.close()
                await server.wait_closed()
            self._executor.shutdown(wait=True)
            if self.socket_path and os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            if self.store is not None:
                self.store.close()


def run_server(server, out=None):
    """Blocking entry point for the ``repro serve`` subcommand."""

    def ready(endpoints):
        if out is not None:
            out.write("repro serve: listening on %s\n" % ", ".join(endpoints))
            try:
                out.flush()
            except (AttributeError, ValueError):
                pass

    try:
        asyncio.run(server.serve(ready=ready))
    except KeyboardInterrupt:
        pass
    if out is not None:
        out.write("repro serve: stopped after %d request(s)\n" % server.requests)
    return 0
