"""repro — a from-scratch reproduction of

    Ball, Majumdar, Millstein, Rajamani.
    "Automatic Predicate Abstraction of C Programs", PLDI 2001.

The package implements the paper's full toolchain:

- a C front end producing the paper's intermediate form (:mod:`repro.cfront`);
- a flow-insensitive points-to analysis (:mod:`repro.pointers`);
- a theorem prover for the quantifier-free predicate logic
  (:mod:`repro.prover`);
- **C2bp**, the predicate abstractor (:mod:`repro.core`);
- boolean programs (:mod:`repro.boolprog`) and a BDD package
  (:mod:`repro.bdd`);
- **Bebop**, the boolean-program model checker (:mod:`repro.bebop`);
- **Newton**, predicate discovery from spurious paths (:mod:`repro.newton`);
- the **SLAM** toolkit for temporal safety properties (:mod:`repro.slam`);
- the unified engine spine — context, events, stats, prover backends
  (:mod:`repro.engine`);
- the experiment corpus (:mod:`repro.programs`).

Typical use::

    from repro import parse_c_program, parse_predicate_file, C2bp, Bebop

    program = parse_c_program(source)
    predicates = parse_predicate_file(predicate_text, program)
    boolean_program = C2bp(program, predicates).run()
    result = Bebop(boolean_program, main="main").run()
    print(result.invariant_string("main", label="L"))

or, for property checking::

    from repro import SafetySpec, check_property

    spec = SafetySpec.lock_discipline("KeAcquireSpinLock",
                                      "KeReleaseSpinLock")
    verdict = check_property(driver_source, spec)
"""

from repro.cfront import parse_c_program, parse_expression, pretty_program
from repro.pointers import PointsToAnalysis
from repro.prover import Prover, Satisfiability
from repro.boolprog import parse_bool_program, print_bool_program
from repro.bebop import Bebop, ExplicitEngine
from repro.core import (
    C2bp,
    C2bpOptions,
    Predicate,
    PredicateSet,
    abstract_program,
    parse_predicate_file,
)
from repro.core.replay import TraceReplayer
from repro.engine import EngineContext, EventBus, StatsRegistry
from repro.newton import analyze_path, path_from_boolean_steps
from repro.slam import SafetySpec, SlamToolkit, cegar_loop, check_property

__version__ = "0.1.0"

__all__ = [
    "Bebop",
    "C2bp",
    "C2bpOptions",
    "EngineContext",
    "EventBus",
    "ExplicitEngine",
    "PointsToAnalysis",
    "Predicate",
    "PredicateSet",
    "Prover",
    "SafetySpec",
    "Satisfiability",
    "SlamToolkit",
    "StatsRegistry",
    "TraceReplayer",
    "abstract_program",
    "analyze_path",
    "cegar_loop",
    "check_property",
    "parse_bool_program",
    "parse_c_program",
    "parse_expression",
    "parse_predicate_file",
    "path_from_boolean_steps",
    "pretty_program",
    "print_bool_program",
]
