"""Command-line interface: the toolkit as the paper's users saw it.

Subcommands mirror the SLAM components:

- ``abstract``  — run C2bp: C program + predicate file -> boolean program;
- ``check``     — abstract then model check with Bebop; print invariants;
- ``slam``      — check a temporal safety property with the CEGAR loop;
- ``replay``    — soundness replay of a concrete run inside BP(P, E);
- ``bebop``     — model check an existing boolean program (.bp) file.

Examples::

    python -m repro abstract partition.c partition.preds
    python -m repro check partition.c partition.preds --entry partition --label L
    python -m repro slam driver.c --lock KeAcquireSpinLock KeReleaseSpinLock
    python -m repro bebop program.bp --entry main

Every subcommand accepts ``--stats-json PATH`` (the unified
:class:`repro.engine.StatsRegistry` snapshot) and ``--trace-json PATH``
(the recorded event stream) for offline analysis.
"""

import argparse
import sys

from repro.bebop import Bebop
from repro.boolprog import parse_bool_program, print_bool_program
from repro.cfront import parse_c_program
from repro.core import C2bp, C2bpOptions, parse_predicate_file
from repro.core.replay import TraceReplayer
from repro.engine import EngineContext
from repro.slam import SafetySpec, check_property


def _read(path):
    with open(path) as handle:
        return handle.read()


def _add_option_flags(parser):
    """One CLI flag per :class:`C2bpOptions` knob (ablation switches)."""
    parser.add_argument(
        "--max-cube-length",
        type=int,
        default=3,
        help="cube length bound k (default 3; 0 means unbounded)",
    )
    parser.add_argument(
        "--no-cone", action="store_true", help="disable the cone of influence"
    )
    parser.add_argument(
        "--no-skip-unchanged",
        action="store_true",
        help="translate assignments even when the WP is syntactically unchanged",
    )
    parser.add_argument(
        "--no-syntactic-heuristics",
        action="store_true",
        help="disable the syntactic F/G shortcuts (always call the prover)",
    )
    parser.add_argument(
        "--no-prover-cache",
        action="store_true",
        help="disable theorem prover query caching",
    )
    parser.add_argument(
        "--distribute-f",
        action="store_true",
        help="distribute F through && and || (faster, may lose precision)",
    )
    parser.add_argument(
        "--no-enforce", action="store_true", help="skip the enforce invariant"
    )
    parser.add_argument(
        "--enforce-cube-length",
        type=int,
        default=3,
        help="cube length bound for the enforce computation (default 3)",
    )
    parser.add_argument(
        "--no-alias", action="store_true", help="ignore the points-to analysis"
    )
    parser.add_argument(
        "--no-invalidate-derefs",
        action="store_true",
        help="keep (rather than invalidate) predicates whose WP dereferences a constant",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="fresh prover state per cube instead of the incremental "
        "assumption-based session (the pre-session baseline)",
    )
    parser.add_argument(
        "--strengthen",
        choices=("allsat", "cubes"),
        default="allsat",
        help="strengthening strategy for the F/G cube searches: 'allsat' "
        "answers the SAT-side cube queries from an incremental model "
        "sweep (default, fastest measured); 'cubes' decides every cube "
        "with the prover (the baseline); the boolean program is "
        "byte-identical either way",
    )
    parser.add_argument(
        "--no-theory-incremental",
        action="store_true",
        help="stateless theory consistency check per query instead of the "
        "per-session incremental engine (delta-closure difference bounds "
        "+ cached reference fallback); verdicts and boolean programs are "
        "identical either way",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for statement abstraction (default 0: pick "
        "from os.cpu_count(), staying serial on single-core hosts; the "
        "translated program is identical for any N)",
    )
    parser.add_argument(
        "--validate-bp",
        action="store_true",
        help="run the boolean-program validator on BP(P, E) before using it "
        "(debug aid: malformed output fails at generation time)",
    )
    parser.add_argument(
        "--no-analysis",
        action="store_true",
        help="disable the whole static-analysis subsystem (liveness "
        "pruning, interval discharge, BP dead-variable elimination, "
        "cross-iteration abstraction reuse)",
    )
    parser.add_argument(
        "--no-live-predicates",
        action="store_true",
        help="disable live-predicate pruning (always run the cube search "
        "for every (statement, predicate) slot)",
    )
    parser.add_argument(
        "--no-intervals",
        action="store_true",
        help="disable the interval abstract interpreter (no pre-prover "
        "query discharge, no Newton-stall candidate predicates)",
    )
    parser.add_argument(
        "--no-bp-dce",
        action="store_true",
        help="model check the full boolean program instead of the "
        "dead-variable-eliminated one",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="content-addressed persistent cache root: prover answers, "
        "statement abstractions, and compiled Bebop tables survive the "
        "process (created on first use; output is byte-identical with "
        "or without it)",
    )
    parser.add_argument(
        "--no-persistent-cache",
        action="store_true",
        help="ignore --cache-dir (keep every cache in-process)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        metavar="N",
        help="LRU byte cap for the persistent cache (default: uncapped)",
    )
    parser.add_argument(
        "--bmc-confirm",
        action="store_true",
        help="bit-precisely confirm Newton's feasible counterexample paths "
        "(concrete witness on SAT, flagged disagreement on UNSAT)",
    )
    parser.add_argument(
        "--no-bmc-fallback",
        action="store_true",
        help="return a bare 'unknown' when CEGAR diverges instead of "
        "falling back to a bounded BMC verdict",
    )
    parser.add_argument(
        "--bmc-depth",
        type=int,
        default=16,
        metavar="K",
        help="unwinding depth for pipeline-internal BMC runs (default 16)",
    )
    parser.add_argument(
        "--bmc-width",
        type=int,
        default=16,
        metavar="W",
        help="bit width for pipeline-internal BMC runs (default 16)",
    )
    _add_bebop_flags(parser)


def _add_bebop_flags(parser):
    parser.add_argument(
        "--bebop-legacy",
        action="store_true",
        help="model check with the legacy Bebop engine (per-visit transfer "
        "BDDs, full path-edge propagation) instead of the compiled fast path",
    )
    parser.add_argument(
        "--no-bebop-reuse",
        action="store_true",
        help="fresh BDD manager and transfer compilation every CEGAR "
        "iteration instead of cross-iteration reuse",
    )


def _options_from(args):
    return C2bpOptions(
        max_cube_length=(args.max_cube_length or None),
        cone_of_influence=not args.no_cone,
        skip_unchanged=not args.no_skip_unchanged,
        syntactic_heuristics=not args.no_syntactic_heuristics,
        cache_prover=not args.no_prover_cache,
        distribute_f=args.distribute_f,
        compute_enforce=not args.no_enforce,
        enforce_cube_length=args.enforce_cube_length,
        use_alias_analysis=not args.no_alias,
        invalidate_constant_derefs=not args.no_invalidate_derefs,
        incremental_cubes=not args.no_incremental,
        theory_incremental=not args.no_theory_incremental,
        strengthen=args.strengthen,
        jobs=max(args.jobs, 0),
        bebop_legacy=args.bebop_legacy,
        bebop_reuse=not args.no_bebop_reuse,
        use_analysis=not args.no_analysis,
        live_predicates=not args.no_live_predicates,
        intervals=not args.no_intervals,
        bp_dce=not args.no_bp_dce,
        cache_dir=args.cache_dir,
        persistent_cache=not args.no_persistent_cache,
        cache_max_bytes=args.cache_max_bytes,
        validate_output=args.validate_bp,
        bmc_confirm=args.bmc_confirm,
        bmc_fallback=not args.no_bmc_fallback,
        bmc_depth=args.bmc_depth,
        bmc_width=args.bmc_width,
    )


def _add_instrument_flags(parser):
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write the unified stats registry snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the recorded engine event stream to PATH as JSON",
    )


def _write_instrumentation(args, context):
    if getattr(args, "stats_json", None):
        with open(args.stats_json, "w") as handle:
            handle.write(context.stats.to_json())
            handle.write("\n")
    if getattr(args, "trace_json", None):
        with open(args.trace_json, "w") as handle:
            handle.write(context.events.to_json())
            handle.write("\n")


# The subcommand cores below take (context, texts, out) so the same code
# path serves two callers: the local handlers and the ``repro serve``
# daemon (whose warm context carries the shared persistent cache).  The
# ``--remote`` output is byte-identical to a local run *because* both run
# exactly these functions.


def run_abstract(context, source, predicates_text, out, name="<input>"):
    program = parse_c_program(source, name=name)
    predicates = parse_predicate_file(predicates_text, program)
    tool = C2bp(program, predicates, context=context)
    boolean_program = tool.run()
    out.write(print_bool_program(boolean_program))
    out.write(
        "\n// %d predicates, %d theorem prover calls, %.2fs\n"
        % (len(predicates), tool.stats.prover_calls, tool.stats.seconds)
    )
    return 0


def run_check(
    context, source, predicates_text, out, name="<input>", entry="main",
    labels=(), bp_dce=True,
):
    program = parse_c_program(source, name=name)
    predicates = parse_predicate_file(predicates_text, program)
    tool = C2bp(program, predicates, context=context)
    boolean_program = tool.run()
    # Labeled invariant queries observe every predicate, so DCE only
    # applies to plain reachability checks.
    if tool.analysis is not None and bp_dce and not labels:
        from repro.analysis import eliminate_dead_variables

        boolean_program, _ = eliminate_dead_variables(
            boolean_program, stats=context.analysis_stats
        )
    result = Bebop(boolean_program, main=entry, context=context).run()
    for label in labels or ():
        proc, _, label_name = label.rpartition(":")
        proc = proc or entry
        out.write(
            "%s/%s: %s\n"
            % (proc, label_name, result.invariant_string(proc, label=label_name))
        )
    if result.assertion_failures:
        out.write(
            "%d assert(s) not discharged:\n" % len(result.assertion_failures)
        )
        for proc, node, _ in result.assertion_failures:
            out.write("  %s: %s\n" % (proc, node.stmt.comment or "assert"))
        return 1
    out.write("all asserts discharged.\n")
    return 0


def run_bmc_cmd(
    context, source, out, name="<input>", entry="main", depth=16, width=32
):
    """Bounded model checking as a standalone verdict: unroll to ``depth``,
    bit-blast at ``width``, report the verdict and any concrete witness."""
    from repro.bmc import (
        VERDICT_UNSAFE,
        VERDICT_UNSUPPORTED,
        replay_witness,
        run_bmc,
    )

    program = parse_c_program(source, name=name)
    result = run_bmc(
        program, entry=entry, depth=depth, width=width, context=context
    )
    out.write(
        "verdict: %s (depth %d, width %d)\n"
        % (result.verdict, result.depth, result.width)
    )
    out.write(
        "formula: %d vars, %d gates, %d clauses, %d assert site(s), "
        "%d unwinding cut(s)\n"
        % (result.vars, result.gates, result.clauses, result.errors, result.cuts)
    )
    out.write(
        "time: %.3fs encode, %.3fs solve\n"
        % (result.encode_seconds, result.solve_seconds)
    )
    if result.verdict == VERDICT_UNSUPPORTED:
        out.write("unsupported: %s\n" % result.reason)
        return 2
    if result.verdict == VERDICT_UNSAFE:
        witness = result.witness
        site = witness.site
        if site is not None:
            out.write(
                "failing assert in %s at %s\n" % (site.func_name, site.stmt.pos)
            )
        out.write("witness args: %r\n" % (witness.entry_args(),))
        if witness.externs:
            out.write("witness extern/* values: %r\n" % (witness.externs,))
        out.write(
            "witness replay: %s\n"
            % replay_witness(program, entry, witness, width)
        )
        return 1
    return 0


def run_slam(context, source, spec, out, entry="main", max_iterations=10):
    result = check_property(
        source, spec, entry=entry, max_iterations=max_iterations, context=context
    )
    out.write(
        "verdict: %s (after %d iteration(s), %d predicates)\n"
        % (result.verdict, result.iterations, len(result.predicates))
    )
    if getattr(result.cegar, "bounded_verdict", None) is not None:
        out.write(
            "bounded verdict: %s (bmc depth %d)\n"
            % (result.cegar.bounded_verdict, result.cegar.bmc_depth)
        )
    for record in result.cegar.iteration_stats:
        out.write(
            "  iteration %d: %d predicates, %d prover calls"
            " (%d of %d queries answered from cache)\n"
            % (
                record.iteration,
                record.predicates,
                record.prover_calls,
                record.cache_hits,
                record.prover_queries,
            )
        )
    if result.verdict == "unsafe":
        out.write("error trace:\n")
        for line in result.error_trace_lines():
            out.write("  %s\n" % line)
    return 0 if result.verdict == "safe" else 1


def _slam_spec(args, out):
    if args.lock:
        acquire, release = args.lock
        return SafetySpec.lock_discipline(acquire, release)
    if args.complete_once:
        return SafetySpec.complete_exactly_once(args.complete_once)
    out.write("error: choose a property (--lock A R | --complete-once F)\n")
    return None


def _remote(args, op, request, out):
    """Ship ``request`` to a ``repro serve`` daemon and relay its reply."""
    import dataclasses
    import json

    from repro.serve.client import ServeClient

    request = dict(request)
    request["op"] = op
    request["options"] = dataclasses.asdict(_options_from(args))
    request["want_stats"] = bool(getattr(args, "stats_json", None))
    request["want_trace"] = bool(getattr(args, "trace_json", None))
    with ServeClient.from_address(args.remote) as client:
        response = client.request(request)
    if not response.get("ok"):
        out.write("remote error: %s\n" % response.get("error", "unknown"))
        return 2
    out.write(response.get("output", ""))
    if getattr(args, "stats_json", None):
        with open(args.stats_json, "w") as handle:
            json.dump(response.get("stats"), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if getattr(args, "trace_json", None):
        with open(args.trace_json, "w") as handle:
            json.dump(response.get("trace"), handle, indent=2)
            handle.write("\n")
    return response.get("exit_code", 0)


def _abstract(args, out):
    if getattr(args, "remote", None):
        return _remote(
            args,
            "abstract",
            {
                "source": _read(args.program),
                "predicates": _read(args.predicates),
                "name": args.program,
            },
            out,
        )
    with EngineContext(options=_options_from(args)) as context:
        code = run_abstract(
            context, _read(args.program), _read(args.predicates), out,
            name=args.program,
        )
        _write_instrumentation(args, context)
    return code


def _check(args, out):
    if getattr(args, "remote", None):
        return _remote(
            args,
            "check",
            {
                "source": _read(args.program),
                "predicates": _read(args.predicates),
                "name": args.program,
                "entry": args.entry,
                "labels": args.label or [],
                "bp_dce": not args.no_bp_dce,
            },
            out,
        )
    with EngineContext(options=_options_from(args)) as context:
        code = run_check(
            context, _read(args.program), _read(args.predicates), out,
            name=args.program, entry=args.entry, labels=args.label or (),
            bp_dce=not args.no_bp_dce,
        )
        _write_instrumentation(args, context)
    return code


def _slam(args, out):
    spec = _slam_spec(args, out)
    if spec is None:
        return 2
    if getattr(args, "remote", None):
        request = {
            "source": _read(args.program),
            "entry": args.entry,
            "max_iterations": args.max_iterations,
        }
        if args.lock:
            request["lock"] = list(args.lock)
        else:
            request["complete_once"] = args.complete_once
        return _remote(args, "slam", request, out)
    with EngineContext(options=_options_from(args)) as context:
        code = run_slam(
            context, _read(args.program), spec, out,
            entry=args.entry, max_iterations=args.max_iterations,
        )
        _write_instrumentation(args, context)
    return code


def _replay(args, out):
    program = parse_c_program(_read(args.program), name=args.program)
    predicates = parse_predicate_file(_read(args.predicates), program)
    with EngineContext(options=_options_from(args)) as context:
        tool = C2bp(program, predicates, context=context)
        boolean_program = tool.run()
        report = TraceReplayer(
            tool, boolean_program, entry=args.entry, args=[int(a) for a in args.args]
        ).run()
        out.write("replayed %d events\n" % report.events_replayed)
        _write_instrumentation(args, context)
    if report.ok:
        out.write("trace replays soundly in BP(P, E).\n")
        return 0
    if report.blocked is not None:
        out.write("SOUNDNESS VIOLATION: blocked at %r\n" % (report.blocked,))
    for violation in report.violations:
        out.write("SOUNDNESS VIOLATION: %s\n" % violation.detail)
    return 1


def _bebop(args, out):
    boolean_program = parse_bool_program(_read(args.program))
    context = EngineContext(
        options=C2bpOptions(
            bebop_legacy=args.bebop_legacy, bebop_reuse=not args.no_bebop_reuse
        )
    )
    result = Bebop(boolean_program, main=args.entry, context=context).run()
    if args.label:
        for name in args.label:
            proc, _, label = name.rpartition(":")
            proc = proc or args.entry
            out.write(
                "%s/%s: %s\n" % (proc, label, result.invariant_string(proc, label=label))
            )
    _write_instrumentation(args, context)
    if result.error_reached:
        out.write("assertion failure reachable.\n")
        return 1
    out.write("no assertion failure reachable.\n")
    return 0


def _bmc(args, out):
    with EngineContext(options=_options_from(args)) as context:
        code = run_bmc_cmd(
            context, _read(args.program), out, name=args.program,
            entry=args.entry, depth=args.depth, width=args.width,
        )
        _write_instrumentation(args, context)
    return code


def _fuzz(args, out):
    from repro.fuzz import FuzzSession, SoundnessOracle

    session = FuzzSession(
        seed=args.fuzz_seed,
        oracle=SoundnessOracle(explicit_budget=args.explicit_budget),
        jobs_stride=args.jobs_stride,
        shrink=args.shrink,
        corpus_dir=args.corpus_dir,
        bit_weight=args.bit_weight,
        max_shrink_attempts=args.max_shrink_attempts,
        progress=(
            (lambda case, report: out.write(
                "%s: %s\n" % (case.name, "ok" if report.ok else report.kind)
            ))
            if args.verbose
            else None
        ),
    )
    result = session.run(args.count, start=args.start)
    for line in result.summary_lines():
        out.write(line + "\n")
    return 0 if result.ok else 1


def _serve(args, out):
    from repro.serve.server import ReproServer, run_server

    server = ReproServer(
        socket_path=args.socket,
        tcp=args.tcp,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
    )
    return run_server(server, out=out)


def _add_remote_flag(parser):
    parser.add_argument(
        "--remote",
        metavar="ADDR",
        help="run on a `repro serve` daemon instead of in-process: a unix "
        "socket path, or tcp:HOST:PORT (output is byte-identical to a "
        "local run; the daemon's warm caches do the work)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="C2bp / Bebop / SLAM — predicate abstraction of C programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_abstract = sub.add_parser("abstract", help="C2bp: produce BP(P, E)")
    p_abstract.add_argument("program", help="C source file")
    p_abstract.add_argument("predicates", help="predicate input file")
    _add_option_flags(p_abstract)
    _add_instrument_flags(p_abstract)
    _add_remote_flag(p_abstract)
    p_abstract.set_defaults(func=_abstract)

    p_check = sub.add_parser("check", help="abstract + model check")
    p_check.add_argument("program")
    p_check.add_argument("predicates")
    p_check.add_argument("--entry", default="main")
    p_check.add_argument(
        "--label",
        action="append",
        help="print the invariant at LABEL (or PROC:LABEL); repeatable",
    )
    _add_option_flags(p_check)
    _add_instrument_flags(p_check)
    _add_remote_flag(p_check)
    p_check.set_defaults(func=_check)

    p_slam = sub.add_parser("slam", help="check a temporal safety property")
    p_slam.add_argument("program")
    p_slam.add_argument("--entry", default="main")
    p_slam.add_argument(
        "--lock",
        nargs=2,
        metavar=("ACQUIRE", "RELEASE"),
        help="lock-discipline property over these interface functions",
    )
    p_slam.add_argument(
        "--complete-once",
        metavar="FUNC",
        help="FUNC must not be called twice (IRP-style completion)",
    )
    p_slam.add_argument("--max-iterations", type=int, default=10)
    _add_option_flags(p_slam)
    _add_instrument_flags(p_slam)
    _add_remote_flag(p_slam)
    p_slam.set_defaults(func=_slam)

    p_replay = sub.add_parser("replay", help="soundness trace replay")
    p_replay.add_argument("program")
    p_replay.add_argument("predicates")
    p_replay.add_argument("--entry", default="main")
    p_replay.add_argument("--args", nargs="*", default=[], help="integer arguments")
    _add_option_flags(p_replay)
    _add_instrument_flags(p_replay)
    p_replay.set_defaults(func=_replay)

    p_fuzz = sub.add_parser(
        "fuzz", help="generative soundness fuzzing (Theorem 1 + differentials)"
    )
    p_fuzz.add_argument(
        "--count", type=int, default=50, help="number of cases (default 50)"
    )
    p_fuzz.add_argument(
        "--fuzz-seed", default="0", help="generator seed (default 0)"
    )
    p_fuzz.add_argument(
        "--start", type=int, default=0, help="first case index (default 0)"
    )
    p_fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug any failing case to a minimal reproducer",
    )
    p_fuzz.add_argument(
        "--corpus-dir",
        metavar="DIR",
        help="write shrunk failures to DIR as corpus JSON entries",
    )
    p_fuzz.add_argument(
        "--jobs-stride",
        type=int,
        default=5,
        metavar="K",
        help="run the --jobs differential on every K-th case "
        "(0 disables; default 5)",
    )
    p_fuzz.add_argument(
        "--explicit-budget",
        type=int,
        default=60_000,
        help="explicit-state engine config budget per case (default 60000)",
    )
    p_fuzz.add_argument(
        "--max-shrink-attempts",
        type=int,
        default=600,
        help="oracle evaluations the shrinker may spend per failure",
    )
    p_fuzz.add_argument(
        "--bit-weight",
        action="store_true",
        help="generator also emits bitwise expressions (& | <<) and "
        "near-INT16_MAX constants, exercising the bmc-divergence oracle's "
        "overflow scenarios",
    )
    p_fuzz.add_argument(
        "--verbose", action="store_true", help="print a line per case"
    )
    p_fuzz.set_defaults(func=_fuzz)

    p_bmc = sub.add_parser(
        "bmc",
        help="bounded model checking: bit-precise SAT check of every "
        "assert to an unwinding depth (an independent second verdict)",
    )
    p_bmc.add_argument("program", help="C source file")
    p_bmc.add_argument("--entry", default="main")
    p_bmc.add_argument(
        "--depth",
        type=int,
        default=16,
        metavar="K",
        help="unwinding bound on back-edge traversals and recursive "
        "re-entries per function instance (default 16)",
    )
    p_bmc.add_argument(
        "--width",
        type=int,
        default=32,
        metavar="W",
        help="bit width of the two's-complement integers (default 32)",
    )
    _add_option_flags(p_bmc)
    _add_instrument_flags(p_bmc)
    p_bmc.set_defaults(func=_bmc)

    p_serve = sub.add_parser(
        "serve",
        help="verification daemon: warm caches, batched requests over a "
        "unix socket (see --remote on abstract/check/slam)",
    )
    p_serve.add_argument(
        "--socket",
        default="repro-serve.sock",
        metavar="PATH",
        help="unix socket to listen on (default ./repro-serve.sock)",
    )
    p_serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="additionally listen on a TCP address",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent cache root shared by every request (without it "
        "the daemon still shares its warm in-memory caches)",
    )
    p_serve.add_argument(
        "--cache-max-bytes",
        type=int,
        metavar="N",
        help="LRU byte cap for the persistent cache",
    )
    p_serve.set_defaults(func=_serve)

    p_bebop = sub.add_parser("bebop", help="model check a boolean program (.bp)")
    p_bebop.add_argument("program", help="boolean program file")
    p_bebop.add_argument("--entry", default="main")
    p_bebop.add_argument("--label", action="append")
    _add_bebop_flags(p_bebop)
    _add_instrument_flags(p_bebop)
    p_bebop.set_defaults(func=_bebop)

    return parser


def main(argv=None, out=None):
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    sys.exit(main())
