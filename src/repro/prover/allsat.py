"""AllSAT model-enumeration strengthening support (CAV'06 style).

The cube-enumeration strengthening asks the prover one implication per
candidate cube: "does ``E(c)`` imply φ?" — i.e. "is ``E(c) ∧ ¬φ``
unsatisfiable?".  Most answers are *no*: the typical strengthening call
keeps a handful of implicant cubes and discharges hundreds of SAT-side
queries, each of which pays a full DPLL(T) loop (the theory checks
dominate the profile).

A :class:`ModelCatalog` inverts the work.  One incremental SAT loop over
the session's encode-once base (``¬φ ∧ axioms``, the candidate literals
encoded but unasserted) enumerates *theory-validated models*, projects
each onto the candidate predicates, blocks the projection, and repeats —
the strongest-boolean-consequence enumeration of SNIPPETS' efmc
``strongest_consequence``, run on our own solver.  Every stored
projection is a concrete witness: a cube whose literals the projection
satisfies has a theory-consistent model of ``E(cube) ∧ ¬φ``, so the cube
does **not** imply φ.  The catalog therefore answers the (dominant)
SAT-side cube queries with a tuple comparison — no solver call, no
theory check — while every UNSAT-side verdict still goes through the
session's exact ``decide`` (with its assumption cores), which keeps the
kept/pruned cube lists, and hence the printed boolean program,
byte-identical to the cube-enumeration strategy.

Soundness of the shortcut rests on two properties the sweep enforces:

- models are validated by the theory checker over the *full* relevance
  scope (base atoms plus every candidate literal's atoms), a superset of
  any individual cube query's scope;
- a model is stored only when the checker's verdict is *exact* (no
  disequality-split or propagation-round cap was hit), so the verdict is
  inherited by every sub-scope a cube query would check.

When the sweep is capped (:data:`MAX_SWEEP_MODELS`) the catalog is
merely incomplete: uncovered cubes fall back to ``decide`` and nothing
is lost but the shortcut.

The sweep is also the incremental theory engine's best customer: the
owning cube session keeps one persistent
:class:`~repro.prover.theory.IncrementalTheory` per strengthening call,
and consecutive enumerated models differ by a handful of atoms, so each
model validation retargets the engine's push/pop literal stack by a
small delta instead of re-saturating EUF+Fourier-Motzkin from scratch.
:meth:`ModelCatalog.ensure_swept` snapshots the session's theory
counters around the sweep and reports how many delta queries the sweep
itself consumed (``allsat_sweep_theory_deltas``).
"""

#: Cap on stored projections per strengthening call.  2^k in the worst
#: case, but cone-of-influence pruning keeps k small; past the cap the
#: sweep stops and uncovered cubes fall back to exact decides.
MAX_SWEEP_MODELS = 256


class ModelCatalog:
    """Projected-model witnesses for one strengthening call's goal.

    Attach one to a :class:`repro.prover.interface.CubeProverSession`;
    the session consults :meth:`covers` before running an exact decide
    and reports the sweep/hit accounting through :meth:`counters`.
    """

    def __init__(self, max_models=MAX_SWEEP_MODELS):
        self.max_models = max_models
        self._projections = None  # None until the lazy sweep runs
        # Counters mirrored into ProverStats by the owning session.
        self.sweeps = 0
        self.models = 0
        self.hits = 0
        self.sweep_solves = 0
        self.sweep_theory_deltas = 0

    def ensure_swept(self, session):
        """Run the model sweep once, lazily — a fully cached
        strengthening call never pays for it.  The session's persistent
        theory engine (when enabled) absorbs the sweep's near-identical
        model validations as stack deltas; the counter snapshot below
        attributes those delta queries to the sweep."""
        if self._projections is not None:
            return
        self.sweeps += 1
        before = session.counters().get("theory_delta_queries", 0)
        projections, solves = session.enumerate_models(self.max_models)
        self._projections = projections
        self.models += len(projections)
        self.sweep_solves += solves
        self.sweep_theory_deltas += (
            session.counters().get("theory_delta_queries", 0) - before
        )

    def covers(self, cube):
        """Is some stored model a witness that ``cube`` does not imply
        the goal?  (The cube's literals all hold in the projection.)"""
        for projection in self._projections:
            if all(projection[index] == polarity for index, polarity in cube):
                self.hits += 1
                return True
        return False

    def counters(self):
        return {
            "allsat_sweeps": self.sweeps,
            "allsat_models": self.models,
            "allsat_model_hits": self.hits,
            "allsat_sweep_solves": self.sweep_solves,
            "allsat_sweep_theory_deltas": self.sweep_theory_deltas,
        }
