"""A CDCL propositional SAT solver with incremental solving.

Standard architecture: two-watched-literal propagation, first-UIP conflict
analysis with clause learning, activity-based (VSIDS-style) branching with
exponential decay, and geometric restarts.  Variables are positive integers;
literals are nonzero integers where ``-v`` is the negation of ``v``.

The solver is *incremental*: one :class:`SatSolver` keeps its working state
(assignments at level 0, watch lists, learned clauses, branching activity)
alive across ``solve`` calls.  Clauses may be added between calls, and each
call may carry *assumptions* — literals treated as the first decisions of
the search.  An UNSAT answer under assumptions reports the subset of
assumptions involved in the final conflict (``SatResult.core``), which is
how the cube engine prunes supersets of an already-refuted cube without
further queries.

The DPLL(T) loop layers theory reasoning on top by adding blocking clauses
and re-solving; because the state persists, theory lemmas and learned
clauses accumulate instead of being rediscovered on every query.
"""

#: Process-wide construction counters, used by the benchmarks to compare
#: the fresh-solver-per-query baseline against the incremental engine.
COUNTERS = {"solver_states": 0, "solves": 0}


def reset_counters():
    for key in COUNTERS:
        COUNTERS[key] = 0


class SatResult:
    """Outcome of a solve: ``sat`` plus a model (assignment dict) when
    satisfiable.  When unsatisfiable under assumptions, ``core`` is the
    subset of the assumption literals involved in the final conflict (an
    unsat-core-lite: sound — the conjunction of ``core`` already forces
    the conflict — but not necessarily minimal)."""

    __slots__ = ("sat", "model", "core")

    def __init__(self, sat, model=None, core=()):
        self.sat = sat
        self.model = model or {}
        self.core = tuple(core)

    def __bool__(self):
        return self.sat

    def __repr__(self):
        return "SatResult(sat=%r)" % self.sat


class SatSolver:
    """One incremental solver instance; clauses may be added between
    ``solve`` calls and the search state persists across them."""

    def __init__(self):
        self._pending = []  # clauses added since the last solve
        self._num_vars = 0
        self._state = None  # persistent working state, built lazily
        self._unsat = False  # an empty clause was added
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned_clauses = 0

    def add_clause(self, literals):
        """Add a clause (iterable of nonzero ints).  Returns False if the
        clause is trivially empty (immediate unsatisfiability)."""
        clause = sorted(set(literals), key=abs)
        # A clause with complementary literals is a tautology.
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:
                return True
        if not clause:
            self._unsat = True
            return False
        for lit in clause:
            self._num_vars = max(self._num_vars, abs(lit))
        self._pending.append(clause)
        return True

    # -- solving ------------------------------------------------------------

    def solve(self, assumptions=()):
        """Decide satisfiability of the clause set under ``assumptions``.

        Assumptions are applied as the first decisions; the rest of the
        state (level-0 assignments, learned clauses, activity) carries over
        from previous calls."""
        COUNTERS["solves"] += 1
        if self._unsat:
            return SatResult(False)
        assumptions = list(assumptions)
        for lit in assumptions:
            self._num_vars = max(self._num_vars, abs(lit))
        if self._state is None:
            self._state = _SolverState(self._num_vars, self)
        state = self._state
        state.grow(self._num_vars)
        state.backjump(0)
        for clause in self._pending:
            if not state.attach_incremental(clause):
                self._unsat = True
                self._pending = []
                return SatResult(False)
        self._pending = []
        return state.search(assumptions)


class _SolverState:
    """The persistent working state (assignments, watches, activity)."""

    def __init__(self, num_vars, stats):
        COUNTERS["solver_states"] += 1
        self.num_vars = num_vars
        self.stats = stats
        # values[v] in (None, True, False)
        self.values = [None] * (num_vars + 1)
        self.levels = [0] * (num_vars + 1)
        self.reasons = [None] * (num_vars + 1)  # clause that implied the var
        self.trail = []
        self.trail_lim = []
        self.activity = [0.0] * (num_vars + 1)
        self.activity_inc = 1.0
        self.watches = {}  # literal -> list of clauses watching it
        self.clauses = []
        self._qhead = 0

    def grow(self, num_vars):
        """Extend the per-variable arrays for newly introduced variables."""
        if num_vars <= self.num_vars:
            return
        extra = num_vars - self.num_vars
        self.values.extend([None] * extra)
        self.levels.extend([0] * extra)
        self.reasons.extend([None] * extra)
        self.activity.extend([0.0] * extra)
        self.num_vars = num_vars

    # -- clause attachment ----------------------------------------------------

    def _attach(self, clause):
        self.clauses.append(clause)
        if len(clause) == 1:
            # Unit clauses are enqueued at level 0 inside search().
            return
        for lit in clause[:2]:
            self.watches.setdefault(lit, []).append(clause)

    def attach_incremental(self, clause):
        """Attach a clause added between solves.  Must be called at decision
        level 0.  Level-0 assignments from earlier solves may already
        falsify some literals, so the watches are chosen among the
        non-false ones (and a clause unit under the level-0 trail is
        propagated immediately).  Returns False on a root-level conflict."""
        if len(clause) == 1:
            self.clauses.append(clause)
            return self._enqueue(clause[0], reason=clause) is not False
        non_false = [i for i, lit in enumerate(clause) if self._value_of(lit) is not False]
        if not non_false:
            return False
        # Move a non-false literal into each watch slot (slot 1 keeps a
        # false literal only when the clause is unit under the trail).
        first = non_false[0]
        clause[0], clause[first] = clause[first], clause[0]
        if len(non_false) >= 2:
            second = non_false[1]  # > first >= 0, untouched by the first swap
            clause[1], clause[second] = clause[second], clause[1]
        self.clauses.append(clause)
        for lit in clause[:2]:
            self.watches.setdefault(lit, []).append(clause)
        if len(non_false) == 1 and self._value_of(clause[0]) is None:
            self._enqueue(clause[0], reason=clause)
        return True

    # -- assignment plumbing ---------------------------------------------------

    def _value_of(self, lit):
        value = self.values[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _decision_level(self):
        return len(self.trail_lim)

    def _enqueue(self, lit, reason=None):
        var = abs(lit)
        current = self._value_of(lit)
        if current is not None:
            return current
        self.values[var] = lit > 0
        self.levels[var] = self._decision_level()
        self.reasons[var] = reason
        self.trail.append(lit)
        self.stats.propagations += 1
        return True

    def _propagate(self):
        """Unit propagation; returns a conflicting clause or None."""
        index = self._qhead
        while index < len(self.trail):
            lit = self.trail[index]
            index += 1
            false_lit = -lit
            watchers = self.watches.get(false_lit, [])
            new_watchers = []
            conflict = None
            for clause in watchers:
                if conflict is not None:
                    new_watchers.append(clause)
                    continue
                # Ensure the false literal is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value_of(first) is True:
                    new_watchers.append(clause)
                    continue
                # Look for a replacement watch.
                for k in range(2, len(clause)):
                    if self._value_of(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(clause)
                        break
                else:
                    new_watchers.append(clause)
                    if self._value_of(first) is False:
                        conflict = clause
                    else:
                        self._enqueue(first, reason=clause)
            self.watches[false_lit] = new_watchers
            if conflict is not None:
                self._qhead = len(self.trail)
                return conflict
        self._qhead = index
        return None

    # -- conflict analysis -----------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP learning.  Returns (learned clause, backjump level)."""
        learned = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        pivot = None  # the trail literal whose reason is being resolved
        reason = conflict
        index = len(self.trail) - 1
        while True:
            for q in reason:
                if pivot is not None and q == pivot:
                    continue  # skip the literal this reason implied
                var = abs(q)
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] == self._decision_level():
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next trail literal to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            pivot = self.trail[index]
            var = abs(pivot)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self.reasons[var] or []
        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0
        backjump = max(self.levels[abs(q)] for q in learned[1:])
        # Put a literal of the backjump level in the second watch slot.
        for i in range(1, len(learned)):
            if self.levels[abs(learned[i])] == backjump:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, backjump

    def _analyze_final(self, failed_lit, assumptions):
        """The assumptions responsible for falsifying ``failed_lit``.

        Walks the implication graph backwards from the (falsified)
        assumption: every decision ancestor is an earlier assumption
        (assumptions are always applied before free decisions), and
        level-0 ancestors are facts independent of the assumptions."""
        assume_set = set(assumptions)
        involved = set()
        seen = set()
        stack = [abs(failed_lit)]
        while stack:
            var = stack.pop()
            if var in seen or self.levels[var] == 0:
                continue
            seen.add(var)
            reason = self.reasons[var]
            if reason is None:
                assigned = var if self.values[var] else -var
                if assigned in assume_set:
                    involved.add(assigned)
            else:
                for q in reason:
                    if abs(q) != var:
                        stack.append(abs(q))
        if failed_lit in assume_set:
            involved.add(failed_lit)
        return tuple(lit for lit in assumptions if lit in involved)

    def _bump(self, var):
        self.activity[var] += self.activity_inc
        if self.activity[var] > 1e100:
            for i in range(len(self.activity)):
                self.activity[i] *= 1e-100
            self.activity_inc *= 1e-100

    def backjump(self, level):
        while self._decision_level() > level:
            limit = self.trail_lim.pop()
            for lit in self.trail[limit:]:
                var = abs(lit)
                self.values[var] = None
                self.reasons[var] = None
            del self.trail[limit:]
        self._qhead = min(self._qhead, len(self.trail))

    # -- search ------------------------------------------------------------------

    def search(self, assumptions):
        # Enqueue unit clauses at level 0 (idempotent across solves).
        for clause in self.clauses:
            if len(clause) == 1:
                if self._enqueue(clause[0], reason=clause) is False:
                    # Contradictory units: the clause set itself is unsat,
                    # independent of assumptions.  Latch the owner's flag —
                    # the propagation queue has consumed the conflicting
                    # trail, so a later solve would not rediscover it.
                    self.stats._unsat = True
                    return SatResult(False)
        conflict_budget = 128
        while True:
            result = self._search_until_restart(assumptions, conflict_budget)
            if result is not None:
                return result
            conflict_budget = int(conflict_budget * 1.5)
            self.backjump(0)

    def _search_until_restart(self, assumptions, conflict_budget):
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    # Level 0 holds only forced literals (assumptions open
                    # level 1), so this conflict proves the clause set
                    # unsat regardless of assumptions — latch it.
                    self.stats._unsat = True
                    return SatResult(False)
                learned, backjump = self._analyze(conflict)
                self.backjump(backjump)
                self._attach(learned)
                self.stats.learned_clauses += 1
                self._enqueue(learned[0], reason=learned)
                self.activity_inc *= 1.05
                if conflicts_here >= conflict_budget:
                    return None  # restart
                continue
            # Apply pending assumptions as decisions.
            pending = None
            for lit in assumptions:
                value = self._value_of(lit)
                if value is False:
                    core = self._analyze_final(lit, assumptions)
                    return SatResult(False, core=core)
                if value is None:
                    pending = lit
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending)
                continue
            # Pick the unassigned variable with the highest activity.
            best, best_score = None, -1.0
            for var in range(1, self.num_vars + 1):
                if self.values[var] is None and self.activity[var] > best_score:
                    best, best_score = var, self.activity[var]
            if best is None:
                model = {
                    var: self.values[var]
                    for var in range(1, self.num_vars + 1)
                    if self.values[var] is not None
                }
                return SatResult(True, model)
            self.stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(-best)  # negative polarity first: mild heuristic
