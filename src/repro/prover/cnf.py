"""Tseitin transformation from formulas to CNF.

Atoms are mapped to SAT variables through an :class:`AtomMap`; internal
nodes get fresh auxiliary variables.  The encoding is equisatisfiable and,
because we constrain both directions of each definition, the SAT model
restricted to atom variables is exactly a propositional model of the
original formula.

:class:`CnfEncoder` is the stateful front: it memoizes sub-encodings, so a
subformula shared between queries of one session (or repeated inside a
single query — ``land`` duplicates abound) is encoded once and later
occurrences reuse its definition literal.  The memo is only sound while
every clause the encoder has emitted stays asserted, so an encoder must be
paired with exactly one solver for its whole lifetime.
"""

#: Process-wide encoding counters, used by the benchmarks to compare the
#: fresh-encode-per-query baseline against the incremental cube engine.
COUNTERS = {"encodings": 0, "memo_hits": 0}


def reset_counters():
    for key in COUNTERS:
        COUNTERS[key] = 0


class AtomMap:
    """Bijection between theory atoms and SAT variables."""

    def __init__(self):
        self._atom_to_var = {}
        self._var_to_atom = {}
        self._next_var = 1

    def var_for(self, atom):
        if atom not in self._atom_to_var:
            var = self._next_var
            self._next_var += 1
            self._atom_to_var[atom] = var
            self._var_to_atom[var] = atom
        return self._atom_to_var[atom]

    def fresh_var(self):
        var = self._next_var
        self._next_var += 1
        return var

    def atom_of(self, var):
        return self._var_to_atom.get(var)

    def atoms(self):
        return list(self._atom_to_var)


class CnfEncoder:
    """A memoizing Tseitin encoder bound to one solver's clause stream."""

    def __init__(self, atom_map=None):
        self.atom_map = atom_map or AtomMap()
        self._memo = {}
        self.encodings = 0
        self.memo_hits = 0

    def encode(self, formula, clauses):
        """Encode one top-level formula into ``clauses``; returns the
        literal that is true iff the formula is."""
        self.encodings += 1
        COUNTERS["encodings"] += 1
        return self._encode(formula, clauses)

    def _encode(self, formula, clauses):
        kind = formula[0]
        if kind in ("le", "eq"):
            return self.atom_map.var_for(formula)
        if kind == "not":
            return -self._encode(formula[1], clauses)
        cached = self._memo.get(formula)
        if cached is not None:
            self.memo_hits += 1
            COUNTERS["memo_hits"] += 1
            return cached
        if kind == "true":
            out = self.atom_map.fresh_var()
            clauses.append([out])
        elif kind == "false":
            out = self.atom_map.fresh_var()
            clauses.append([-out])
        elif kind == "and":
            left = self._encode(formula[1], clauses)
            right = self._encode(formula[2], clauses)
            out = self.atom_map.fresh_var()
            clauses.append([-out, left])
            clauses.append([-out, right])
            clauses.append([out, -left, -right])
        elif kind == "or":
            left = self._encode(formula[1], clauses)
            right = self._encode(formula[2], clauses)
            out = self.atom_map.fresh_var()
            clauses.append([-out, left, right])
            clauses.append([out, -left])
            clauses.append([out, -right])
        else:
            raise ValueError("unknown formula node %r" % (formula,))
        self._memo[formula] = out
        return out


def tseitin(formula, atom_map, clauses):
    """Encode ``formula`` into ``clauses``; returns the literal that is
    true iff the formula is.  (One-shot convenience: no cross-call memo.)"""
    return CnfEncoder(atom_map)._encode(formula, clauses)


def formula_to_cnf(formula, atom_map=None):
    """CNF clauses asserting ``formula``; returns (clauses, atom_map)."""
    encoder = CnfEncoder(atom_map)
    clauses = []
    root = encoder.encode(formula, clauses)
    clauses.append([root])
    return clauses, encoder.atom_map
