"""Tseitin transformation from formulas to CNF.

Atoms are mapped to SAT variables through an :class:`AtomMap`; internal
nodes get fresh auxiliary variables.  The encoding is equisatisfiable and,
because we constrain both directions of each definition, the SAT model
restricted to atom variables is exactly a propositional model of the
original formula.
"""


class AtomMap:
    """Bijection between theory atoms and SAT variables."""

    def __init__(self):
        self._atom_to_var = {}
        self._var_to_atom = {}
        self._next_var = 1

    def var_for(self, atom):
        if atom not in self._atom_to_var:
            var = self._next_var
            self._next_var += 1
            self._atom_to_var[atom] = var
            self._var_to_atom[var] = atom
        return self._atom_to_var[atom]

    def fresh_var(self):
        var = self._next_var
        self._next_var += 1
        return var

    def atom_of(self, var):
        return self._var_to_atom.get(var)

    def atoms(self):
        return list(self._atom_to_var)


def tseitin(formula, atom_map, clauses):
    """Encode ``formula`` into ``clauses``; returns the literal that is
    true iff the formula is."""
    kind = formula[0]
    if kind == "true":
        var = atom_map.fresh_var()
        clauses.append([var])
        return var
    if kind == "false":
        var = atom_map.fresh_var()
        clauses.append([-var])
        return var
    if kind in ("le", "eq"):
        return atom_map.var_for(formula)
    if kind == "not":
        return -tseitin(formula[1], atom_map, clauses)
    if kind == "and":
        left = tseitin(formula[1], atom_map, clauses)
        right = tseitin(formula[2], atom_map, clauses)
        out = atom_map.fresh_var()
        clauses.append([-out, left])
        clauses.append([-out, right])
        clauses.append([out, -left, -right])
        return out
    if kind == "or":
        left = tseitin(formula[1], atom_map, clauses)
        right = tseitin(formula[2], atom_map, clauses)
        out = atom_map.fresh_var()
        clauses.append([-out, left, right])
        clauses.append([out, -left])
        clauses.append([out, -right])
        return out
    raise ValueError("unknown formula node %r" % (formula,))


def formula_to_cnf(formula, atom_map=None):
    """CNF clauses asserting ``formula``; returns (clauses, atom_map)."""
    atom_map = atom_map or AtomMap()
    clauses = []
    root = tseitin(formula, atom_map, clauses)
    clauses.append([root])
    return clauses, atom_map
