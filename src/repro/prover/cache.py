"""The canonical-form theorem prover query cache.

Section 5.2 (optimization five) caches prover queries.  Historically the
cache was a private dict inside each :class:`repro.prover.Prover`, so its
benefit ended at that prover's lifetime.  Lifting it into a standalone
object makes the cache *shareable*: one :class:`QueryCache` handed to an
:class:`repro.engine.EngineContext` serves every C2bp run, every Newton
path analysis, and every CEGAR iteration of a verification task — the
bulk of iteration ``i+1``'s queries were already answered in iteration
``i``.

Keys are canonical forms: antecedents and consequents are constant-folded
and antecedent order is forgotten, so syntactically different but
structurally identical queries share an entry.
"""

from repro.cfront.exprutils import fold_constants


class QueryCache:
    """A hit/miss-counting map from canonical query keys to results."""

    _MISSING = object()

    def __init__(self):
        self._entries = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(kind, exprs, consequent=None):
        """The canonical key for a query.

        ``kind`` distinguishes query families ("implies" vs "sat");
        ``exprs`` is the iterable of antecedent/conjunct C expressions;
        ``consequent`` is the goal for implication queries.
        """
        folded = frozenset(fold_constants(e) for e in exprs)
        goal = fold_constants(consequent) if consequent is not None else None
        return (kind, folded, goal)

    def lookup(self, key):
        """``(hit, value)`` — value is None on a miss."""
        value = self._entries.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, key, value):
        self._entries[key] = value

    def export_since(self, start):
        """The (key, value) pairs stored after the first ``start`` entries
        (insertion order) — a worker process exports only what it added on
        top of the state it inherited at fork time."""
        if start <= 0:
            return list(self._entries.items())
        items = list(self._entries.items())
        return items[start:]

    def absorb(self, items):
        """Merge exported (key, value) pairs (e.g. from a worker process)
        into this cache.  Existing entries win — every process computes
        the same deterministic answers, so conflicts are duplicates."""
        for key, value in items:
            self._entries.setdefault(key, value)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def snapshot(self):
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __repr__(self):
        return "QueryCache(%r)" % (self.snapshot(),)
