"""The prover front door used by C2bp and Newton.

Mirrors how the paper uses Simplify/Vampyre: a black-box oracle for
"does this conjunction of C expressions imply that C expression?", with
query caching (Section 5.2, optimization five) and call counting (the
"thm. prover calls" column of Tables 1 and 2).

The front door is split from the decision procedure behind it:

- :class:`Prover` owns the counters, the (shareable, canonical-form)
  :class:`repro.prover.cache.QueryCache`, and optional event reporting;
- a *backend* answers the actual satisfiability questions.  The built-in
  :class:`DpllTBackend` runs the from-scratch DPLL(T) stack in
  :mod:`repro.prover.smt`; alternatives register themselves with
  :mod:`repro.engine.backends`.

For the cube-heavy ``F_V``/``G_V`` strengthening loops the per-query path
is wasteful: the goal is fixed and only the cube literals vary.
:meth:`Prover.cube_session` opens a :class:`CubeProverSession` that keeps
the canonical-form cache and all counters as the outer layer but answers
cache misses through the backend's incremental assumption engine
(:class:`repro.prover.incremental.IncrementalCubeSession`) when the
backend provides one (the ``open_cube_session`` capability), falling back
to fresh per-cube ``check_implication`` calls otherwise.
"""

import time

from repro.cfront import cast as C
from repro.prover import terms as T
from repro.prover.cache import QueryCache
from repro.prover.incremental import IncrementalCubeSession
from repro.prover.smt import Satisfiability, check_formula


class ProverStats:
    """Counters surfaced in the experiment tables."""

    def __init__(self):
        self.queries = 0  # every implication request
        self.calls = 0  # actual decision-procedure invocations (cache misses)
        self.cache_hits = 0
        self.valid = 0
        self.invalid = 0
        self.unknown = 0
        # Incremental cube-engine counters.
        self.cube_sessions = 0  # CubeProverSession objects opened
        self.assumption_solves = 0  # SAT solves under selector assumptions
        self.cnf_encodings_saved = 0  # cube decides answered w/o re-encoding
        self.lemmas_learned = 0  # theory lemmas added to session solvers
        self.lemmas_reused = 0  # decides settled by earlier cubes' lemmas
        self.core_shrinks = 0  # unsat cores strictly smaller than the cube
        # AllSAT strengthening counters.
        self.allsat_sweeps = 0  # model-enumeration sweeps run
        self.allsat_models = 0  # theory-validated projections stored
        self.allsat_model_hits = 0  # cube queries answered by a stored model
        self.allsat_sweep_solves = 0  # SAT solves spent enumerating models
        # Incremental theory-engine counters (the per-session
        # IncrementalTheory instances inside cube sessions).
        self.theory_delta_queries = 0  # queries answered by delta closure
        self.theory_cache_hits = 0  # fallback queries answered from cache
        self.allsat_sweep_theory_deltas = 0  # delta queries inside sweeps
        # Cube queries settled by the static-analysis discharger before
        # any prover work (and before the prover timers start), kept
        # distinct so they do not read as zero-time generalize entries.
        self.queries_discharged = 0
        # Per-phase wall-clock attribution (seconds), accumulated from the
        # cube sessions (both engines) so benchmark rows can say *where*
        # the time went: encoding, SAT solving, or core/model work.
        self.time_in_encode = 0.0
        self.time_in_solve = 0.0
        self.time_in_generalize = 0.0
        # Sub-attribution of generalize time spent inside the theory
        # engine: delta-closure work vs fallback (cached reference) work.
        self.time_in_theory_closure = 0.0
        self.time_in_theory_cache = 0.0

    def reset(self):
        self.__init__()

    def snapshot(self):
        return {
            "queries": self.queries,
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "valid": self.valid,
            "invalid": self.invalid,
            "unknown": self.unknown,
            "cube_sessions": self.cube_sessions,
            "assumption_solves": self.assumption_solves,
            "cnf_encodings_saved": self.cnf_encodings_saved,
            "lemmas_learned": self.lemmas_learned,
            "lemmas_reused": self.lemmas_reused,
            "core_shrinks": self.core_shrinks,
            "allsat_sweeps": self.allsat_sweeps,
            "allsat_models": self.allsat_models,
            "allsat_model_hits": self.allsat_model_hits,
            "allsat_sweep_solves": self.allsat_sweep_solves,
            "theory_delta_queries": self.theory_delta_queries,
            "theory_cache_hits": self.theory_cache_hits,
            "allsat_sweep_theory_deltas": self.allsat_sweep_theory_deltas,
            "queries_discharged": self.queries_discharged,
            "time_in_encode": round(self.time_in_encode, 6),
            "time_in_solve": round(self.time_in_solve, 6),
            "time_in_generalize": round(self.time_in_generalize, 6),
            "time_in_theory_closure": round(self.time_in_theory_closure, 6),
            "time_in_theory_cache": round(self.time_in_theory_cache, 6),
        }

    def merge(self, snapshot):
        """Add a :meth:`snapshot` dict into these counters (used to fold
        parallel workers' prover accounting back into the parent)."""
        for name, value in snapshot.items():
            setattr(self, name, getattr(self, name, 0) + value)

    def __repr__(self):
        return "ProverStats(%r)" % (self.snapshot(),)


class DpllTBackend:
    """The built-in lazy DPLL(T) decision procedure.

    Implements the :class:`repro.engine.backends.ProverBackend` protocol:
    both check methods answer with a :class:`Satisfiability`, and
    :meth:`open_cube_session` provides the incremental cube capability.
    """

    name = "dpllt"

    def __init__(self, max_rounds=400):
        self.max_rounds = max_rounds

    def check_implication(self, antecedents, consequent):
        """Satisfiability of ``/\\ antecedents && !consequent`` — UNSAT
        means the implication is valid."""
        ctx = T.TranslationContext()
        antecedent_formulas = [T.translate_formula(e, ctx) for e in antecedents]
        consequent_formula = T.translate_formula(consequent, ctx)
        query = T.land(*antecedent_formulas, T.lnot(consequent_formula))
        axioms = list(ctx.defs) + T.address_axioms(T.land(query, *ctx.defs))
        return check_formula(query, axioms, max_rounds=self.max_rounds)

    def check_satisfiable(self, exprs):
        """Joint satisfiability of a conjunction of C boolean expressions."""
        ctx = T.TranslationContext()
        formulas = [T.translate_formula(e, ctx) for e in exprs]
        conjunction = T.land(*formulas)
        axioms = list(ctx.defs) + T.address_axioms(T.land(conjunction, *ctx.defs))
        return check_formula(conjunction, axioms, max_rounds=self.max_rounds)

    def open_cube_session(
        self, candidates, goal, want_cores=True, theory_incremental=True
    ):
        """An :class:`IncrementalCubeSession` deciding cubes over
        ``candidates`` against the fixed ``goal``.  ``want_cores=False``
        skips the assumption-core mapping and its validation — the right
        policy for throwaway per-query sessions whose caller discards the
        core anyway.  ``theory_incremental=False`` pins the session to
        the stateless theory checker (the ``--no-theory-incremental``
        escape hatch and the fuzz oracle's divergence baseline)."""
        return IncrementalCubeSession(
            candidates,
            goal,
            max_rounds=self.max_rounds,
            want_cores=want_cores,
            theory_incremental=theory_incremental,
        )


def _open_session(opener, candidates, goal, want_cores, theory_incremental=True):
    """Call a backend's ``open_cube_session`` with the session policies,
    tolerating backends predating the policy keywords."""
    try:
        return opener(
            candidates,
            goal,
            want_cores=want_cores,
            theory_incremental=theory_incremental,
        )
    except TypeError:
        pass
    try:
        return opener(candidates, goal, want_cores=want_cores)
    except TypeError:
        return opener(candidates, goal)


class CubeProverSession:
    """Cached cube decisions against one fixed goal.

    The outer layer — canonical-form :class:`QueryCache`, stats counters,
    event reporting — is identical to :meth:`Prover.implies`, so cached
    answers are shared with plain implication queries across the whole
    engine context.  Cache misses go to the backend's incremental
    assumption engine when available (built lazily, so a fully cached
    strengthening call never pays for an encoding).

    ``want_cores`` is the strategy layer's core policy: when False the
    session never maps or validates assumption cores (callers that throw
    them away should not pay for them).  ``catalog`` optionally attaches
    a :class:`repro.prover.allsat.ModelCatalog`: cache misses are then
    first tried against its swept model projections, which answers the
    SAT-side ("cube does not imply goal") queries without a solver or
    theory call; UNSAT-side verdicts always run the exact decide.
    ``theory_incremental`` is forwarded to the backend session: whether
    its theory checks run on a persistent delta-closure engine or the
    stateless reference (``--no-theory-incremental``)."""

    def __init__(
        self, prover, candidates, goal, incremental=True, want_cores=True,
        catalog=None, theory_incremental=True,
    ):
        self.prover = prover
        self.candidates = tuple(candidates)
        self._negated = tuple(C.negate(expr) for expr in self.candidates)
        self.goal = goal
        self._incremental = incremental
        self._want_cores = want_cores
        self._catalog = catalog
        self._theory_incremental = theory_incremental
        self._session = None
        self._synced = None
        self._catalog_synced = None
        prover.stats.cube_sessions += 1

    def cube_exprs(self, cube):
        """The concretization of a cube as C expressions."""
        return tuple(
            self.candidates[index] if polarity else self._negated[index]
            for index, polarity in cube
        )

    def implies_cube(self, cube):
        """Does the cube's concretization imply the goal?

        Returns ``(result, core)`` where ``core`` — when the backend
        reports one strictly smaller than the cube — is the sub-cube that
        already forces the implication (usable to prune supersets without
        further queries); ``None`` otherwise."""
        cube = tuple(cube)
        prover = self.prover
        stats = prover.stats
        exprs = self.cube_exprs(cube)
        stats.queries += 1
        key = QueryCache.key("implies", exprs, self.goal)
        if prover.enable_cache:
            hit, value = prover.cache.lookup(key)
            if hit:
                stats.cache_hits += 1
                prover._emit("implies", cached=True, result=value, seconds=0.0)
                return value, None
        started = time.perf_counter()
        core = None
        opener = getattr(prover.backend, "open_cube_session", None)
        if self._incremental and self._session is None and opener is not None:
            self._session = _open_session(
                opener, self.candidates, self.goal, self._want_cores,
                self._theory_incremental,
            )
            self._synced = self._session.counters()
        if self._session is not None:
            outcome = None
            if self._catalog is not None:
                self._catalog.ensure_swept(self._session)
                if self._catalog.covers(cube):
                    # A swept model satisfies every literal of the cube:
                    # E(cube) ∧ ¬goal has a theory-consistent model, so
                    # the implication does not hold — no decide needed.
                    outcome = Satisfiability.SAT
            if outcome is None:
                if self._session.decides > 0:
                    # The fresh baseline would have re-encoded the whole query.
                    stats.cnf_encodings_saved += 1
                outcome, raw_core = self._session.decide(cube)
                if raw_core is not None and len(raw_core) < len(cube):
                    core = raw_core
                    stats.core_shrinks += 1
            self._sync_session_counters()
        elif opener is not None:
            # Non-incremental baseline: a throwaway session per query.
            # Same clause universe and theory-relevance rules as the
            # incremental engine — so the two modes compute the same
            # answer for every cube — but every query pays the full
            # re-encoding and lemma rediscovery.  The strategy layer's
            # core policy applies here too: no caller keeps these cores,
            # so the session skips the core mapping and its validation.
            throwaway = _open_session(
                opener, self.candidates, self.goal, False,
                self._theory_incremental,
            )
            outcome, _ = throwaway.decide(cube)
            counters = throwaway.counters()
            for name in (
                "time_in_encode",
                "time_in_solve",
                "time_in_generalize",
                "time_in_theory_closure",
                "time_in_theory_cache",
                "theory_delta_queries",
                "theory_cache_hits",
            ):
                setattr(stats, name, getattr(stats, name) + counters.get(name, 0))
        else:
            outcome = prover.backend.check_implication(exprs, self.goal)
        elapsed = time.perf_counter() - started
        stats.calls += 1
        result = outcome is Satisfiability.UNSAT
        if result:
            stats.valid += 1
        elif outcome is Satisfiability.UNKNOWN:
            stats.unknown += 1
        else:
            stats.invalid += 1
        if prover.enable_cache:
            prover.cache.store(key, result)
        prover._emit("implies", cached=False, result=result, seconds=elapsed)
        return result, core

    def _sync_session_counters(self):
        current = self._session.counters()
        stats = self.prover.stats
        stats.assumption_solves += (
            current["assumption_solves"] - self._synced["assumption_solves"]
        )
        stats.lemmas_learned += (
            current["lemmas_learned"] - self._synced["lemmas_learned"]
        )
        stats.lemmas_reused += (
            current["lemma_reuse_hits"] - self._synced["lemma_reuse_hits"]
        )
        for name in (
            "theory_delta_queries",
            "theory_cache_hits",
            "time_in_encode",
            "time_in_solve",
            "time_in_generalize",
            "time_in_theory_closure",
            "time_in_theory_cache",
        ):
            setattr(
                stats,
                name,
                getattr(stats, name)
                + current.get(name, 0)
                - self._synced.get(name, 0),
            )
        self._synced = current
        if self._catalog is not None:
            current_catalog = self._catalog.counters()
            synced = self._catalog_synced or {
                name: 0 for name in current_catalog
            }
            for name, value in current_catalog.items():
                setattr(stats, name, getattr(stats, name) + value - synced[name])
            self._catalog_synced = current_catalog


class Prover:
    """A cached validity checker over quantifier-free C expressions."""

    def __init__(
        self,
        enable_cache=True,
        max_rounds=400,
        cache=None,
        backend=None,
        events=None,
    ):
        self.stats = ProverStats()
        self.enable_cache = enable_cache
        self.max_rounds = max_rounds
        self.backend = backend if backend is not None else DpllTBackend(max_rounds)
        self.cache = cache if cache is not None else QueryCache()
        self.events = events

    # -- public API -----------------------------------------------------------

    def implies(self, antecedents, consequent):
        """Is ``/\\ antecedents => consequent`` valid?

        ``antecedents`` is an iterable of C boolean expressions (possibly
        empty); ``consequent`` a C boolean expression.  A ``False`` answer
        means "could not prove" — the formula may still be valid.
        """
        antecedents = tuple(antecedents)
        self.stats.queries += 1
        key = QueryCache.key("implies", antecedents, consequent)
        if self.enable_cache:
            hit, value = self.cache.lookup(key)
            if hit:
                self.stats.cache_hits += 1
                self._emit("implies", cached=True, result=value, seconds=0.0)
                return value
        started = time.perf_counter()
        outcome = self.backend.check_implication(antecedents, consequent)
        elapsed = time.perf_counter() - started
        self.stats.calls += 1
        result = outcome is Satisfiability.UNSAT
        if result:
            self.stats.valid += 1
        elif outcome is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        else:
            self.stats.invalid += 1
        if self.enable_cache:
            self.cache.store(key, result)
        self._emit("implies", cached=False, result=result, seconds=elapsed)
        return result

    def cube_session(
        self, candidates, goal, incremental=True, want_cores=True, catalog=None,
        theory_incremental=True,
    ):
        """Open a :class:`CubeProverSession` for one strengthening call:
        repeated cube implication tests over ``candidates`` against the
        fixed ``goal``.  With ``incremental=False`` (or a backend without
        the ``open_cube_session`` capability) every cache miss runs a
        fresh ``check_implication`` — the pre-session behaviour, kept as
        the benchmark baseline.  ``want_cores``/``catalog``/
        ``theory_incremental`` are the strategy layer's policy hooks (see
        :class:`CubeProverSession`)."""
        return CubeProverSession(
            self,
            candidates,
            goal,
            incremental=incremental,
            want_cores=want_cores,
            catalog=catalog,
            theory_incremental=theory_incremental,
        )

    def is_valid(self, expr):
        return self.implies((), expr)

    def is_satisfiable(self, exprs):
        """Joint satisfiability of C boolean expressions (used by Newton
        for path feasibility).  Returns a :class:`Satisfiability`."""
        exprs = tuple(exprs)
        self.stats.queries += 1
        key = QueryCache.key("sat", exprs)
        if self.enable_cache:
            hit, value = self.cache.lookup(key)
            if hit:
                self.stats.cache_hits += 1
                self._emit("sat", cached=True, result=value, seconds=0.0)
                return value
        started = time.perf_counter()
        self.stats.calls += 1
        result = self.backend.check_satisfiable(exprs)
        elapsed = time.perf_counter() - started
        if result is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        if self.enable_cache:
            self.cache.store(key, result)
        self._emit("sat", cached=False, result=result, seconds=elapsed)
        return result

    def reset_statistics(self):
        self.stats.reset()

    def clear_cache(self):
        self.cache.clear()

    # -- internals -----------------------------------------------------------

    def _emit(self, query, cached, result, seconds):
        if self.events is None:
            return
        self.events.emit(
            "prover-query",
            query=query,
            cached=cached,
            result=result.name if isinstance(result, Satisfiability) else result,
            seconds=round(seconds, 6),
        )
