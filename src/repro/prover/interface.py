"""The prover front door used by C2bp and Newton.

Mirrors how the paper uses Simplify/Vampyre: a black-box oracle for
"does this conjunction of C expressions imply that C expression?", with
query caching (Section 5.2, optimization five) and call counting (the
"thm. prover calls" column of Tables 1 and 2).

The front door is split from the decision procedure behind it:

- :class:`Prover` owns the counters, the (shareable, canonical-form)
  :class:`repro.prover.cache.QueryCache`, and optional event reporting;
- a *backend* answers the actual satisfiability questions.  The built-in
  :class:`DpllTBackend` runs the from-scratch DPLL(T) stack in
  :mod:`repro.prover.smt`; alternatives register themselves with
  :mod:`repro.engine.backends`.
"""

import time

from repro.prover import terms as T
from repro.prover.cache import QueryCache
from repro.prover.smt import Satisfiability, check_formula


class ProverStats:
    """Counters surfaced in the experiment tables."""

    def __init__(self):
        self.queries = 0  # every implication request
        self.calls = 0  # actual decision-procedure invocations (cache misses)
        self.cache_hits = 0
        self.valid = 0
        self.invalid = 0
        self.unknown = 0

    def reset(self):
        self.__init__()

    def snapshot(self):
        return {
            "queries": self.queries,
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "valid": self.valid,
            "invalid": self.invalid,
            "unknown": self.unknown,
        }

    def __repr__(self):
        return "ProverStats(%r)" % (self.snapshot(),)


class DpllTBackend:
    """The built-in lazy DPLL(T) decision procedure.

    Implements the :class:`repro.engine.backends.ProverBackend` protocol:
    both methods answer with a :class:`Satisfiability`.
    """

    name = "dpllt"

    def __init__(self, max_rounds=400):
        self.max_rounds = max_rounds

    def check_implication(self, antecedents, consequent):
        """Satisfiability of ``/\\ antecedents && !consequent`` — UNSAT
        means the implication is valid."""
        ctx = T.TranslationContext()
        antecedent_formulas = [T.translate_formula(e, ctx) for e in antecedents]
        consequent_formula = T.translate_formula(consequent, ctx)
        query = T.land(*antecedent_formulas, T.lnot(consequent_formula))
        axioms = list(ctx.defs) + T.address_axioms(T.land(query, *ctx.defs))
        return check_formula(query, axioms, max_rounds=self.max_rounds)

    def check_satisfiable(self, exprs):
        """Joint satisfiability of a conjunction of C boolean expressions."""
        ctx = T.TranslationContext()
        formulas = [T.translate_formula(e, ctx) for e in exprs]
        conjunction = T.land(*formulas)
        axioms = list(ctx.defs) + T.address_axioms(T.land(conjunction, *ctx.defs))
        return check_formula(conjunction, axioms, max_rounds=self.max_rounds)


class Prover:
    """A cached validity checker over quantifier-free C expressions."""

    def __init__(
        self,
        enable_cache=True,
        max_rounds=400,
        cache=None,
        backend=None,
        events=None,
    ):
        self.stats = ProverStats()
        self.enable_cache = enable_cache
        self.max_rounds = max_rounds
        self.backend = backend if backend is not None else DpllTBackend(max_rounds)
        self.cache = cache if cache is not None else QueryCache()
        self.events = events

    # -- public API -----------------------------------------------------------

    def implies(self, antecedents, consequent):
        """Is ``/\\ antecedents => consequent`` valid?

        ``antecedents`` is an iterable of C boolean expressions (possibly
        empty); ``consequent`` a C boolean expression.  A ``False`` answer
        means "could not prove" — the formula may still be valid.
        """
        antecedents = tuple(antecedents)
        self.stats.queries += 1
        key = QueryCache.key("implies", antecedents, consequent)
        if self.enable_cache:
            hit, value = self.cache.lookup(key)
            if hit:
                self.stats.cache_hits += 1
                self._emit("implies", cached=True, result=value, seconds=0.0)
                return value
        started = time.perf_counter()
        outcome = self.backend.check_implication(antecedents, consequent)
        elapsed = time.perf_counter() - started
        self.stats.calls += 1
        result = outcome is Satisfiability.UNSAT
        if result:
            self.stats.valid += 1
        elif outcome is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        else:
            self.stats.invalid += 1
        if self.enable_cache:
            self.cache.store(key, result)
        self._emit("implies", cached=False, result=result, seconds=elapsed)
        return result

    def is_valid(self, expr):
        return self.implies((), expr)

    def is_satisfiable(self, exprs):
        """Joint satisfiability of C boolean expressions (used by Newton
        for path feasibility).  Returns a :class:`Satisfiability`."""
        exprs = tuple(exprs)
        self.stats.queries += 1
        key = QueryCache.key("sat", exprs)
        if self.enable_cache:
            hit, value = self.cache.lookup(key)
            if hit:
                self.stats.cache_hits += 1
                self._emit("sat", cached=True, result=value, seconds=0.0)
                return value
        started = time.perf_counter()
        self.stats.calls += 1
        result = self.backend.check_satisfiable(exprs)
        elapsed = time.perf_counter() - started
        if result is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        if self.enable_cache:
            self.cache.store(key, result)
        self._emit("sat", cached=False, result=result, seconds=elapsed)
        return result

    def reset_statistics(self):
        self.stats.reset()

    def clear_cache(self):
        self.cache.clear()

    # -- internals -----------------------------------------------------------

    def _emit(self, query, cached, result, seconds):
        if self.events is None:
            return
        self.events.emit(
            "prover-query",
            query=query,
            cached=cached,
            result=result.name if isinstance(result, Satisfiability) else result,
            seconds=round(seconds, 6),
        )
