"""The prover front door used by C2bp and Newton.

Mirrors how the paper uses Simplify/Vampyre: a black-box oracle for
"does this conjunction of C expressions imply that C expression?", with
query caching (Section 5.2, optimization five) and call counting (the
"thm. prover calls" column of Tables 1 and 2).
"""

from repro.prover import terms as T
from repro.prover.smt import Satisfiability, check_formula


class ProverStats:
    """Counters surfaced in the experiment tables."""

    def __init__(self):
        self.queries = 0  # every implication request
        self.calls = 0  # actual decision-procedure invocations (cache misses)
        self.cache_hits = 0
        self.valid = 0
        self.invalid = 0
        self.unknown = 0

    def reset(self):
        self.__init__()

    def snapshot(self):
        return {
            "queries": self.queries,
            "calls": self.calls,
            "cache_hits": self.cache_hits,
            "valid": self.valid,
            "invalid": self.invalid,
            "unknown": self.unknown,
        }

    def __repr__(self):
        return "ProverStats(%r)" % (self.snapshot(),)


class Prover:
    """A cached validity checker over quantifier-free C expressions."""

    def __init__(self, enable_cache=True, max_rounds=400):
        self.stats = ProverStats()
        self.enable_cache = enable_cache
        self.max_rounds = max_rounds
        self._cache = {}

    # -- public API -----------------------------------------------------------

    def implies(self, antecedents, consequent):
        """Is ``/\\ antecedents => consequent`` valid?

        ``antecedents`` is an iterable of C boolean expressions (possibly
        empty); ``consequent`` a C boolean expression.  A ``False`` answer
        means "could not prove" — the formula may still be valid.
        """
        antecedents = tuple(antecedents)
        self.stats.queries += 1
        key = (frozenset(antecedents), consequent, True)
        if self.enable_cache and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        result = self._decide_implication(antecedents, consequent)
        if self.enable_cache:
            self._cache[key] = result
        return result

    def is_valid(self, expr):
        return self.implies((), expr)

    def is_satisfiable(self, exprs):
        """Joint satisfiability of C boolean expressions (used by Newton
        for path feasibility).  Returns a :class:`Satisfiability`."""
        exprs = tuple(exprs)
        self.stats.queries += 1
        key = (frozenset(exprs), None, False)
        if self.enable_cache and key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        self.stats.calls += 1
        ctx = T.TranslationContext()
        formulas = [T.translate_formula(e, ctx) for e in exprs]
        conjunction = T.land(*formulas)
        axioms = list(ctx.defs) + T.address_axioms(T.land(conjunction, *ctx.defs))
        result = check_formula(conjunction, axioms, max_rounds=self.max_rounds)
        if result is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        if self.enable_cache:
            self._cache[key] = result
        return result

    def reset_statistics(self):
        self.stats.reset()

    def clear_cache(self):
        self._cache.clear()

    # -- internals -----------------------------------------------------------

    def _decide_implication(self, antecedents, consequent):
        self.stats.calls += 1
        ctx = T.TranslationContext()
        antecedent_formulas = [T.translate_formula(e, ctx) for e in antecedents]
        consequent_formula = T.translate_formula(consequent, ctx)
        # Valid iff (antecedents /\ not consequent) is unsatisfiable.
        query = T.land(*antecedent_formulas, T.lnot(consequent_formula))
        axioms = list(ctx.defs) + T.address_axioms(T.land(query, *ctx.defs))
        outcome = check_formula(query, axioms, max_rounds=self.max_rounds)
        if outcome is Satisfiability.UNSAT:
            self.stats.valid += 1
            return True
        if outcome is Satisfiability.UNKNOWN:
            self.stats.unknown += 1
        else:
            self.stats.invalid += 1
        return False
