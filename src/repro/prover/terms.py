"""Logical terms and formulas, and the translation from C expressions.

Terms (integer-valued) are nested tuples so they hash and compare fast:

- ``("num", k)`` — an integer constant;
- ``("var", name)`` — a program variable (scope is the caller's concern:
  predicates handed to the prover come from a single procedure's scope);
- ``("loc", name)`` — the address constant ``&name``;
- ``("app", symbol, (arg, ...))`` — an application of an (uninterpreted or
  interpreted) function symbol; the interpreted symbols are ``"+"``,
  ``"-"``, ``"*"`` (handled by the arithmetic solver when linear, treated as
  uninterpreted otherwise).

Formulas:

- ``("le", t1, t2)``, ``("eq", t1, t2)`` — atoms (over integers; strict
  comparison is normalized away: ``a < b`` becomes ``a <= b - 1``);
- ``("not", f)``, ``("and", f1, f2)``, ``("or", f1, f2)``;
- ``("true",)``, ``("false",)``.

Dereference and field access become uninterpreted selectors, giving exactly
the congruence reasoning the paper's examples need: from ``p == q`` the
prover derives ``p->val == q->val`` but — soundly — nothing about distinct
cells.  Booleans appearing in integer positions (e.g. after substituting
``x = (a < b)`` into a predicate about ``x``) are expanded by cases.
"""

from repro.cfront import cast as C

TRUE = ("true",)
FALSE = ("false",)


def num(value):
    return ("num", value)


def var(name):
    return ("var", name)


def loc(name):
    return ("loc", name)


def app(symbol, *args):
    return ("app", symbol, tuple(args))


def is_num(term):
    return term[0] == "num"


def land(*formulas):
    result = TRUE
    for formula in formulas:
        if formula == FALSE:
            return FALSE
        if formula == TRUE:
            continue
        result = formula if result == TRUE else ("and", result, formula)
    return result


def lor(*formulas):
    result = FALSE
    for formula in formulas:
        if formula == TRUE:
            return TRUE
        if formula == FALSE:
            continue
        result = formula if result == FALSE else ("or", result, formula)
    return result


def lnot(formula):
    if formula == TRUE:
        return FALSE
    if formula == FALSE:
        return TRUE
    if formula[0] == "not":
        return formula[1]
    return ("not", formula)


def add(t1, t2):
    if is_num(t1) and is_num(t2):
        return num(t1[1] + t2[1])
    return app("+", t1, t2)


def sub(t1, t2):
    if is_num(t1) and is_num(t2):
        return num(t1[1] - t2[1])
    return app("-", t1, t2)


def le(t1, t2):
    if is_num(t1) and is_num(t2):
        return TRUE if t1[1] <= t2[1] else FALSE
    return ("le", t1, t2)


def lt(t1, t2):
    # Integers: a < b  <=>  a <= b - 1.
    return le(t1, sub(t2, num(1)))


def eq(t1, t2):
    if is_num(t1) and is_num(t2):
        return TRUE if t1[1] == t2[1] else FALSE
    if t1 == t2:
        return TRUE
    return ("eq", t1, t2)


def subterms(term):
    """All subterms of a term, preorder."""
    yield term
    if term[0] == "app":
        for arg in term[2]:
            yield from subterms(arg)


def formula_atoms(formula):
    """The set of atoms of a formula."""
    kind = formula[0]
    if kind in ("le", "eq"):
        return {formula}
    if kind == "not":
        return formula_atoms(formula[1])
    if kind in ("and", "or"):
        return formula_atoms(formula[1]) | formula_atoms(formula[2])
    return set()


def formula_terms(formula):
    """All terms appearing in a formula's atoms."""
    result = set()
    for atom in formula_atoms(formula):
        result |= set(subterms(atom[1]))
        result |= set(subterms(atom[2]))
    return result


class TranslationContext:
    """Carries the definitional constraints accumulated while translating
    boolean subexpressions used in integer positions."""

    def __init__(self):
        self.defs = []
        self._fresh = 0

    def fresh_var(self, hint="b"):
        self._fresh += 1
        return var("__%s%d" % (hint, self._fresh))


_REL_TRANSLATORS = {
    "<": lambda a, b: lt(a, b),
    "<=": lambda a, b: le(a, b),
    ">": lambda a, b: lt(b, a),
    ">=": lambda a, b: le(b, a),
    "==": lambda a, b: eq(a, b),
    "!=": lambda a, b: lnot(eq(a, b)),
}

# Operators with no arithmetic interpretation here: kept uninterpreted
# (sound; may lose completeness).
_UNINTERPRETED_BINOPS = frozenset(["/", "%", "<<", ">>", "&", "|", "^"])


def translate_term(expr, ctx):
    """Translate a C expression used for its integer/pointer *value*."""
    if isinstance(expr, C.IntLit):
        return num(expr.value)
    if isinstance(expr, C.Id):
        return var(expr.name)
    if isinstance(expr, C.Unknown):
        return var("__unknown%d" % expr.uid)
    if isinstance(expr, C.Cast):
        return translate_term(expr.operand, ctx)
    if isinstance(expr, C.Deref):
        return app("deref", translate_term(expr.pointer, ctx))
    if isinstance(expr, C.FieldAccess):
        return app("field:%s" % expr.field, translate_term(expr.base, ctx))
    if isinstance(expr, C.Index):
        return app(
            "elem",
            translate_term(expr.base, ctx),
            translate_term(expr.index, ctx),
        )
    if isinstance(expr, C.AddrOf):
        return _translate_address(expr.operand, ctx)
    if isinstance(expr, C.UnOp):
        if expr.op == "-":
            return sub(num(0), translate_term(expr.operand, ctx))
        if expr.op == "+":
            return translate_term(expr.operand, ctx)
        if expr.op == "~":
            return app("~", translate_term(expr.operand, ctx))
        if expr.op == "!":
            return _bool_to_int(translate_formula(expr, ctx), ctx)
    if isinstance(expr, C.BinOp):
        op = expr.op
        if op in ("&&", "||") or op in C.REL_OPS:
            return _bool_to_int(translate_formula(expr, ctx), ctx)
        left = translate_term(expr.left, ctx)
        right = translate_term(expr.right, ctx)
        if op == "+":
            return add(left, right)
        if op == "-":
            return sub(left, right)
        if op == "*":
            return app("*", left, right)
        if op in _UNINTERPRETED_BINOPS:
            return app(op, left, right)
    raise ValueError("cannot translate expression %r to a term" % (expr,))


def _translate_address(lvalue, ctx):
    """The address of an lvalue as a term.

    - ``&x`` is the address constant ``loc(x)`` (two distinct variables have
      distinct nonzero addresses; those axioms are added per query);
    - ``&(*p)`` is just ``p``;
    - ``&(l.f)`` / ``&(p->f)`` is a function of the *address* of the struct,
      so that ``p == q`` lets congruence derive ``&p->f == &q->f``;
    - ``&(a[i])`` is a function of the (decayed) array value and the index.
    """
    if isinstance(lvalue, C.Id):
        return loc(lvalue.name)
    if isinstance(lvalue, C.Deref):
        return translate_term(lvalue.pointer, ctx)
    if isinstance(lvalue, C.FieldAccess):
        return app("addrfield:%s" % lvalue.field, _translate_address(lvalue.base, ctx))
    if isinstance(lvalue, C.Index):
        return app(
            "addrelem",
            translate_term(lvalue.base, ctx),
            translate_term(lvalue.index, ctx),
        )
    if isinstance(lvalue, C.Cast):
        return _translate_address(lvalue.operand, ctx)
    raise ValueError("cannot take the address of %r" % (lvalue,))


def _bool_to_int(formula, ctx):
    """A fresh variable v with the side constraint
    ``(formula ∧ v = 1) ∨ (¬formula ∧ v = 0)`` — the C value of a boolean."""
    if formula == TRUE:
        return num(1)
    if formula == FALSE:
        return num(0)
    fresh = ctx.fresh_var()
    ctx.defs.append(
        lor(land(formula, eq(fresh, num(1))), land(lnot(formula), eq(fresh, num(0))))
    )
    return fresh


def translate_formula(expr, ctx):
    """Translate a C expression used as a *truth value*."""
    if isinstance(expr, C.IntLit):
        return TRUE if expr.value != 0 else FALSE
    if isinstance(expr, C.UnOp) and expr.op == "!":
        return lnot(translate_formula(expr.operand, ctx))
    if isinstance(expr, C.BinOp):
        op = expr.op
        if op == "&&":
            return land(
                translate_formula(expr.left, ctx), translate_formula(expr.right, ctx)
            )
        if op == "||":
            return lor(
                translate_formula(expr.left, ctx), translate_formula(expr.right, ctx)
            )
        if op in _REL_TRANSLATORS:
            left = translate_term(expr.left, ctx)
            right = translate_term(expr.right, ctx)
            return _REL_TRANSLATORS[op](left, right)
    # Any other integer-valued expression e in truth position means e != 0.
    term = translate_term(expr, ctx)
    return lnot(eq(term, num(0)))


def address_axioms(formula):
    """True facts about the address terms occurring in ``formula``.

    - Distinct variables live at distinct, nonzero addresses
      (``&x != &y``, ``&x != 0``).
    - Field addresses are *injective* in their base: two ``&e->f`` terms
      with the same field are equal exactly when the bases are (equality
      follows from congruence; the axiom adds the converse, which holds in
      C because the field sits at a fixed offset of its struct).
    - Addresses of different fields, of array elements vs. fields, and of
      fields vs. named variables are pairwise distinct.
    """
    terms = formula_terms(formula)
    locs = sorted(
        {term for term in terms if term[0] == "loc"},
        key=lambda t: t[1],
    )
    addr_apps = sorted(
        {
            term
            for term in terms
            if term[0] == "app"
            and (term[1].startswith("addrfield:") or term[1] == "addrelem")
        },
        key=str,
    )
    axioms = []
    for i, first in enumerate(locs):
        axioms.append(lnot(eq(first, num(0))))
        for second in locs[i + 1 :]:
            axioms.append(lnot(eq(first, second)))
        for app_term in addr_apps:
            axioms.append(lnot(eq(first, app_term)))
    for i, first in enumerate(addr_apps):
        for second in addr_apps[i + 1 :]:
            if first[1] != second[1]:
                axioms.append(lnot(eq(first, second)))
            elif first[1].startswith("addrfield:"):
                # Same field: &a->f == &b->f  =>  a == b.
                axioms.append(
                    lor(lnot(eq(first, second)), eq(first[2][0], second[2][0]))
                )
            else:
                # addrelem(a, i) == addrelem(b, j)  =>  a == b and i == j.
                axioms.append(
                    lor(
                        lnot(eq(first, second)),
                        land(
                            eq(first[2][0], second[2][0]),
                            eq(first[2][1], second[2][1]),
                        ),
                    )
                )
    return axioms


def c_expr_to_formula(expr):
    """Translate a C boolean expression into (formula, side constraints).

    The side constraints are definitional facts that must be conjoined to
    the *context* of any query involving the formula.
    """
    ctx = TranslationContext()
    formula = translate_formula(expr, ctx)
    return formula, ctx.defs
