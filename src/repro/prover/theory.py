"""Combined theory consistency check: EUF + linear integer arithmetic.

Given a set of theory literals (atoms with polarity), decide whether they
are jointly satisfiable.  The combination follows the Nelson-Oppen recipe,
specialized to our two convex-ish theories:

1. run congruence closure over the equalities (and check disequalities);
2. propagate the resulting equalities into the arithmetic solver;
3. check arithmetic satisfiability (Fourier-Motzkin); disequalities are
   handled by case-splitting ``t1 != t2`` into ``t1 < t2 | t1 > t2``;
4. propagate arithmetic-entailed equalities back into the congruence
   closure (detected pairwise over congruence-relevant term pairs) and
   repeat until a fixpoint.

All UNSAT verdicts are sound; a SAT verdict may be optimistic for
fragments we treat as uninterpreted (non-linear arithmetic, bit
operations), which only costs the client precision.
"""

from repro.prover.euf import CongruenceClosure
from repro.prover.linarith import LinearSolver, linearize
from repro.prover.terms import subterms

_MAX_SPLIT_DISEQS = 12
_MAX_PROPAGATION_ROUNDS = 4


class TheoryResult:
    __slots__ = ("consistent",)

    def __init__(self, consistent):
        self.consistent = consistent

    def __bool__(self):
        return self.consistent


def check_literals(literals):
    """Decide joint satisfiability of ``literals``.

    Each literal is ``(atom, polarity)`` where ``atom`` is
    ``("le", t1, t2)`` or ``("eq", t1, t2)``.
    """
    eqs, diseqs, les = [], [], []
    for atom, polarity in literals:
        kind, t1, t2 = atom
        if kind == "eq":
            (eqs if polarity else diseqs).append((t1, t2))
        elif kind == "le":
            if polarity:
                les.append((t1, t2))  # t1 <= t2
            else:
                les.append((t2, ("app", "+", (t1, ("num", -1)))))  # t2 <= t1-1
        else:
            raise ValueError("unknown atom %r" % (atom,))
    return TheoryResult(_consistent(eqs, diseqs, les))


def _consistent(eqs, diseqs, les):
    euf = CongruenceClosure()
    relevant_terms = set()
    for t1, t2 in eqs + diseqs + les:
        euf.add_term(t1)
        euf.add_term(t2)
        relevant_terms |= set(subterms(t1)) | set(subterms(t2))
    for t1, t2 in eqs:
        if not euf.merge(t1, t2):
            return False
    for t1, t2 in diseqs:
        if not euf.add_disequality(t1, t2):
            return False

    for _ in range(_MAX_PROPAGATION_ROUNDS):
        # EUF -> arithmetic: every equality the closure knows between terms
        # of interest becomes an arithmetic equality.
        solver = LinearSolver()
        for t1, t2 in les:
            solver.assert_le_terms(t1, t2)
        classes = euf.equivalence_classes()
        for members in classes.values():
            members = [m for m in members if m in relevant_terms]
            for other in members[1:]:
                solver.assert_eq_terms(members[0], other)
        if not _check_with_diseqs(solver, diseqs, euf):
            return False
        # Arithmetic -> EUF: find arithmetic-entailed equalities among
        # congruence-relevant pairs and merge them.
        changed = _propagate_entailed_equalities(solver, euf, relevant_terms)
        if not euf.consistent:
            return False
        if not changed:
            return True
    return True  # fixpoint not reached; claim SAT (sound direction)


def _check_with_diseqs(solver, diseqs, euf, depth=0):
    """Arithmetic satisfiability with ``!=`` constraints by case splitting."""
    if not solver.check():
        return False
    if not diseqs:
        return True
    if len(diseqs) > _MAX_SPLIT_DISEQS:
        # Too many splits: accept possibly optimistic SAT.
        return True
    (t1, t2), rest = diseqs[0], diseqs[1:]
    lin1, lin2 = linearize(t1), linearize(t2)
    # If the two sides share no arithmetic content constraints could bite
    # on, the disequality is arithmetically free - skip the split.
    low = solver.copy()
    expr = lin1.minus(lin2)
    expr.const += 1  # t1 <= t2 - 1
    low.add_le(expr)
    if _check_with_diseqs(low, rest, euf, depth + 1):
        return True
    high = solver.copy()
    expr = lin2.minus(lin1)
    expr.const += 1  # t2 <= t1 - 1
    high.add_le(expr)
    return _check_with_diseqs(high, rest, euf, depth + 1)


def _propagate_entailed_equalities(solver, euf, relevant_terms):
    """Merge terms the arithmetic forces equal; True if anything merged."""
    candidates = _congruence_candidate_pairs(euf, relevant_terms)
    changed = False
    for t1, t2 in candidates:
        if euf.are_equal(t1, t2):
            continue
        if solver.implies_eq(t1, t2):
            euf.merge(t1, t2)
            changed = True
            if not euf.consistent:
                return True
    return changed


def _congruence_candidate_pairs(euf, relevant_terms):
    """Pairs of terms whose equality could matter: arguments at the same
    position of same-symbol applications, and the two sides of potential
    numeral pinnings."""
    by_slot = {}
    apps = [t for t in relevant_terms if t[0] == "app"]
    for application in apps:
        symbol, args = application[1], application[2]
        for index, arg in enumerate(args):
            by_slot.setdefault((symbol, index, len(args)), []).append(arg)
    pairs = set()
    for args in by_slot.values():
        unique = list({euf.representative(a): a for a in args}.values())
        for i, first in enumerate(unique):
            for second in unique[i + 1 :]:
                pairs.add((first, second))
    return pairs
