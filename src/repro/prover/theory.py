"""Combined theory consistency check: EUF + linear integer arithmetic.

Given a set of theory literals (atoms with polarity), decide whether they
are jointly satisfiable.  The combination follows the Nelson-Oppen recipe,
specialized to our two convex-ish theories:

1. run congruence closure over the equalities (and check disequalities);
2. propagate the resulting equalities into the arithmetic solver;
3. check arithmetic satisfiability (Fourier-Motzkin); disequalities are
   handled by case-splitting ``t1 != t2`` into ``t1 < t2 | t1 > t2``;
4. propagate arithmetic-entailed equalities back into the congruence
   closure (detected pairwise over congruence-relevant term pairs) and
   repeat until a fixpoint.

All UNSAT verdicts are sound; a SAT verdict may be optimistic for
fragments we treat as uninterpreted (non-linear arithmetic, bit
operations), which only costs the client precision.

Two entry points share those semantics:

- :func:`check_literals` — the stateless reference: canonicalize the
  literal set (sorted, deduplicated) and run the pipeline above from
  scratch.  Every verdict is a pure function of the literal *set*.
- :class:`IncrementalTheory` — a stateful engine for query streams that
  share most literals (the AllSAT sweep: consecutive models differ by a
  handful of atoms; greedy core minimization: each probe drops one
  literal).  Queries whose literals all lie in the *difference-bound
  fragment* (each atom linearizes to a unit-coefficient difference
  ``u - v <= c`` / ``u == v + c`` over at most two opaque non-application
  terms) are answered on a persistent :class:`~repro.prover.dbm.
  DifferenceBounds` matrix: the engine keeps the previous query's
  literals as a push/pop stack, rewinds to the longest common prefix,
  and pushes only the delta — incremental closure instead of
  re-saturating EUF+Fourier-Motzkin per query.  The fragment is exact
  (difference systems over the integers are decided by negative-cycle
  detection), so verdicts and ``exact`` flags match the reference.
  Everything else falls back to the reference pipeline behind a
  per-session result cache keyed on the literal set, with an
  entailed-equality memo shared across the session's Fourier-Motzkin
  entailment probes.
"""

import time

from repro.prover.dbm import ZERO, DifferenceBounds
from repro.prover.euf import CongruenceClosure
from repro.prover.linarith import LinearSolver, linearize
from repro.prover.terms import subterms

_MAX_SPLIT_DISEQS = 12
_MAX_PROPAGATION_ROUNDS = 4


class TheoryResult:
    __slots__ = ("consistent", "exact", "equalities")

    def __init__(self, consistent, exact=True, equalities=None):
        self.consistent = consistent
        # A SAT verdict is *exact* when no completeness limit was hit on
        # the way (disequality-split cap, propagation-round cap): the
        # check actually decided the literal set rather than giving up in
        # the optimistic direction.  All UNSAT verdicts are exact.
        self.exact = exact
        # Optional: the entailed-equality pairs among the literal set's
        # difference-bound nodes (only populated on request, and only by
        # engines that computed a closure — see ``want_equalities``).
        self.equalities = equalities

    def __bool__(self):
        return self.consistent


def canonical_literals(literals):
    """The canonical form every theory entry point decides: sorted,
    deduplicated ``(atom, bool(polarity))`` pairs.  Canonicalizing up
    front makes each verdict a pure function of the literal *set* — the
    property the incremental engine's delta stack and result cache (and
    the fuzz oracle's incremental-vs-stateless differential) rely on."""
    return tuple(sorted({(atom, bool(polarity)) for atom, polarity in literals}))


def check_literals(literals):
    """Decide joint satisfiability of ``literals``.

    Each literal is ``(atom, polarity)`` where ``atom`` is
    ``("le", t1, t2)`` or ``("eq", t1, t2)``.
    """
    ordered = canonical_literals(literals)
    consistent, exact = _consistent(*_split_literals(ordered))
    return TheoryResult(consistent, exact)


def _split_literals(ordered):
    """Partition canonical literals into equality / disequality /
    less-equal term pairs (the reference pipeline's input shape)."""
    eqs, diseqs, les = [], [], []
    for atom, polarity in ordered:
        kind, t1, t2 = atom
        if kind == "eq":
            (eqs if polarity else diseqs).append((t1, t2))
        elif kind == "le":
            if polarity:
                les.append((t1, t2))  # t1 <= t2
            else:
                les.append((t2, ("app", "+", (t1, ("num", -1)))))  # t2 <= t1-1
        else:
            raise ValueError("unknown atom %r" % (atom,))
    return eqs, diseqs, les


def _consistent(eqs, diseqs, les, eq_cache=None):
    """``(consistent, exact)``: joint satisfiability, plus whether the
    verdict was reached without hitting a completeness limit."""
    euf = CongruenceClosure()
    relevant_terms = set()
    for t1, t2 in eqs + diseqs + les:
        euf.add_term(t1)
        euf.add_term(t2)
        relevant_terms |= set(subterms(t1)) | set(subterms(t2))
    for t1, t2 in eqs:
        if not euf.merge(t1, t2):
            return False, True
    for t1, t2 in diseqs:
        if not euf.add_disequality(t1, t2):
            return False, True

    capped = len(diseqs) > _MAX_SPLIT_DISEQS
    for _ in range(_MAX_PROPAGATION_ROUNDS):
        # EUF -> arithmetic: every equality the closure knows between terms
        # of interest becomes an arithmetic equality.
        solver = LinearSolver()
        for t1, t2 in les:
            solver.assert_le_terms(t1, t2)
        classes = euf.equivalence_classes()
        for members in classes.values():
            members = [m for m in members if m in relevant_terms]
            for other in members[1:]:
                solver.assert_eq_terms(members[0], other)
        if not _check_with_diseqs(solver, diseqs, euf):
            return False, True
        # Arithmetic -> EUF: find arithmetic-entailed equalities among
        # congruence-relevant pairs and merge them.
        changed = _propagate_entailed_equalities(
            solver, euf, relevant_terms, eq_cache
        )
        if not euf.consistent:
            return False, True
        if not changed:
            return True, not capped
    return True, False  # fixpoint not reached; claim SAT (sound direction)


def _check_with_diseqs(solver, diseqs, euf, depth=0):
    """Arithmetic satisfiability with ``!=`` constraints by case splitting."""
    if not solver.check():
        return False
    if not diseqs:
        return True
    if len(diseqs) > _MAX_SPLIT_DISEQS:
        # Too many splits: accept possibly optimistic SAT.
        return True
    (t1, t2), rest = diseqs[0], diseqs[1:]
    lin1, lin2 = linearize(t1), linearize(t2)
    # If the two sides share no arithmetic content constraints could bite
    # on, the disequality is arithmetically free - skip the split.
    low = solver.copy()
    expr = lin1.minus(lin2)
    expr.const += 1  # t1 <= t2 - 1
    low.add_le(expr)
    if _check_with_diseqs(low, rest, euf, depth + 1):
        return True
    high = solver.copy()
    expr = lin2.minus(lin1)
    expr.const += 1  # t2 <= t1 - 1
    high.add_le(expr)
    return _check_with_diseqs(high, rest, euf, depth + 1)


def _solver_fingerprint(solver):
    """A hashable canonical form of the solver's constraint system.  Two
    solvers with the same fingerprint answer every ``implies_eq`` probe
    identically, which is what licenses the per-session memo."""

    def canon(exprs):
        return frozenset(
            (tuple(sorted(e.coeffs.items())), e.const) for e in exprs
        )

    return canon(solver._les), canon(solver._eqs)


def _propagate_entailed_equalities(solver, euf, relevant_terms, eq_cache=None):
    """Merge terms the arithmetic forces equal; True if anything merged.

    Caller contract: ``solver`` has already been checked satisfiable
    (``_check_with_diseqs`` runs first), which licenses an exact
    prefilter — if ``t1 - t2`` mentions a variable no constraint
    touches, that variable can be moved freely in some model, so the
    equality cannot be entailed and the two Fourier-Motzkin runs of
    ``implies_eq`` are skipped.

    ``eq_cache`` (a dict owned by an :class:`IncrementalTheory` session)
    memoizes ``implies_eq`` answers across queries, keyed on the solver's
    constraint fingerprint plus the probed pair — sound because
    ``implies_eq`` is a pure function of exactly those inputs."""
    candidates = _congruence_candidate_pairs(euf, relevant_terms)
    changed = False
    constrained = None
    fingerprint = None
    for t1, t2 in candidates:
        if euf.are_equal(t1, t2):
            continue
        diff = linearize(t1).minus(linearize(t2))
        if diff.is_constant:
            if diff.const != 0:
                continue
        else:
            if constrained is None:
                constrained = set()
                for expr in solver._les:
                    constrained |= expr.variables()
                for expr in solver._eqs:
                    constrained |= expr.variables()
            if any(var not in constrained for var in diff.coeffs):
                continue
        if eq_cache is None:
            entailed = solver.implies_eq(t1, t2)
        else:
            if fingerprint is None:
                fingerprint = _solver_fingerprint(solver)
            key = (fingerprint, t1, t2)
            entailed = eq_cache.get(key)
            if entailed is None:
                entailed = solver.implies_eq(t1, t2)
                eq_cache[key] = entailed
        if entailed:
            euf.merge(t1, t2)
            changed = True
            if not euf.consistent:
                return True
    return changed


def _congruence_candidate_pairs(euf, relevant_terms):
    """Pairs of terms whose equality could matter: arguments at the same
    position of same-symbol applications, and the two sides of potential
    numeral pinnings."""
    by_slot = {}
    apps = [t for t in relevant_terms if t[0] == "app"]
    for application in apps:
        symbol, args = application[1], application[2]
        for index, arg in enumerate(args):
            by_slot.setdefault((symbol, index, len(args)), []).append(arg)
    pairs = set()
    for args in by_slot.values():
        unique = list({euf.representative(a): a for a in args}.values())
        for i, first in enumerate(unique):
            for second in unique[i + 1 :]:
                pairs.add((first, second))
    return pairs


# -- the incremental engine ---------------------------------------------------

#: Sentinel for a literal (or disequality branch) whose linearization is a
#: constant that falsifies it outright.
_FALSE = object()


class _LiteralInfo:
    """Per-literal classification, memoized for the session's lifetime.

    ``edges`` is the list of difference edges ``(u, v, c)`` the literal
    asserts (``_FALSE`` when it is constantly false); for disequalities
    ``branches`` holds the two case-split branches' edge lists instead
    (``t1 <= t2 - 1`` first, then ``t2 <= t1 - 1`` — the reference
    pipeline's split order), each possibly ``_FALSE`` or empty."""

    __slots__ = ("in_fragment", "is_diseq", "edges", "branches")

    def __init__(self, in_fragment, is_diseq=False, edges=None, branches=None):
        self.in_fragment = in_fragment
        self.is_diseq = is_diseq
        self.edges = edges
        self.branches = branches


_OUTSIDE = _LiteralInfo(False)


def _difference_edges(expr):
    """The difference edges asserting ``expr <= 0``, for a LinExpr in the
    fragment; ``_FALSE`` for a violated constant; ``None`` when the
    expression leaves the fragment (an application term, a coefficient
    other than ±1, more than two terms, a non-integral constant)."""
    if expr.const.denominator != 1:
        return None
    c = int(expr.const)
    items = list(expr.coeffs.items())
    if not items:
        return [] if c <= 0 else _FALSE
    if len(items) > 2:
        return None
    for term, coef in items:
        if term[0] == "app" or (coef != 1 and coef != -1):
            return None
    if len(items) == 1:
        term, coef = items[0]
        if coef == 1:
            return [(term, ZERO, -c)]  # term + c <= 0
        return [(ZERO, term, -c)]  # -term + c <= 0
    (t1, c1), (t2, _) = items
    if sum(coef for _, coef in items) != 0:
        return None  # same-sign pair: not a difference constraint
    if c1 == 1:
        return [(t1, t2, -c)]
    return [(t2, t1, -c)]


def _classify_literal(literal):
    atom, polarity = literal
    kind, t1, t2 = atom
    if kind not in ("eq", "le"):
        return _OUTSIDE  # fallback path raises, as the reference does
    diff = linearize(t1).minus(linearize(t2))
    if kind == "le":
        expr = diff if polarity else diff.scaled(-1)
        if not polarity:
            expr.const += 1  # t2 <= t1 - 1
        edges = _difference_edges(expr)
        if edges is None:
            return _OUTSIDE
        return _LiteralInfo(True, edges=edges)
    if polarity:  # equality: both directions
        forward = _difference_edges(diff)
        backward = _difference_edges(diff.scaled(-1))
        if forward is None or backward is None:
            return _OUTSIDE
        if forward is _FALSE or backward is _FALSE:
            return _LiteralInfo(True, edges=_FALSE)
        return _LiteralInfo(True, edges=forward + backward)
    # Disequality: two case-split branches, reference order.
    low_expr = diff.copy()
    low_expr.const += 1  # t1 <= t2 - 1
    high_expr = diff.scaled(-1)
    high_expr.const += 1  # t2 <= t1 - 1
    low = _difference_edges(low_expr)
    high = _difference_edges(high_expr)
    if low is None or high is None:
        return _OUTSIDE
    return _LiteralInfo(True, is_diseq=True, branches=(low, high))


class IncrementalTheory:
    """A stateful theory session answering a stream of related queries.

    :meth:`check` agrees with :func:`check_literals` on every input —
    verdict and ``exact`` flag — but amortizes work across the stream:

    - *fragment queries* (every literal classifies into the
      difference-bound fragment, and the disequality count is within the
      reference pipeline's split cap) are decided on one persistent
      :class:`DifferenceBounds` matrix.  The engine keeps the previous
      query's canonical literals as a stack of push/pop frames; a new
      query rewinds to the longest common prefix and pushes only its
      suffix, so a sweep model differing by a few atoms — or a core
      probe dropping one literal — pays a handful of O(n²) closure
      updates instead of a from-scratch saturation;
    - everything else goes through the reference pipeline behind a
      result cache keyed on the canonical literal set, with an
      entailed-equality memo (:func:`_propagate_entailed_equalities`)
      shared across the session.

    The session also tallies its own counters and timers, mirrored into
    ``ProverStats`` by the owning cube session."""

    def __init__(self):
        self._dbm = DifferenceBounds()
        self._stack = []  # [(literal, _LiteralInfo)] currently asserted
        self._info = {}  # literal -> _LiteralInfo (classification memo)
        self._results = {}  # frozenset(literals) -> (consistent, exact)
        self._eq_cache = {}  # (solver fingerprint, t1, t2) -> bool
        self.delta_queries = 0
        self.cache_hits = 0
        self.fallback_queries = 0
        self.literals_pushed = 0
        self.literals_reused = 0
        self.time_in_closure = 0.0
        self.time_in_cache = 0.0

    def check(self, literals, want_equalities=False):
        """Decide joint satisfiability of ``literals``; same contract (and
        same answers) as :func:`check_literals`."""
        ordered = canonical_literals(literals)
        infos = []
        diseq_count = 0
        fragment = True
        for literal in ordered:
            info = self._info.get(literal)
            if info is None:
                info = _classify_literal(literal)
                self._info[literal] = info
            if not info.in_fragment:
                fragment = False
                break
            if info.is_diseq:
                diseq_count += 1
            infos.append(info)
        if not fragment or diseq_count > _MAX_SPLIT_DISEQS:
            return self._check_fallback(ordered)
        started = time.perf_counter()
        self.delta_queries += 1
        self._retarget(ordered, infos)
        result = self._decide_fragment(want_equalities)
        self.time_in_closure += time.perf_counter() - started
        return result

    # -- fragment fast path --------------------------------------------------

    def _retarget(self, ordered, infos):
        """Rewind the assertion stack to the longest common prefix with
        ``ordered``, then push the suffix, one trail frame per literal."""
        stack, dbm = self._stack, self._dbm
        prefix = 0
        limit = min(len(stack), len(ordered))
        while prefix < limit and stack[prefix][0] == ordered[prefix]:
            prefix += 1
        while len(stack) > prefix:
            stack.pop()
            dbm.pop()
        self.literals_reused += prefix
        self.literals_pushed += len(ordered) - prefix
        for literal, info in zip(ordered[prefix:], infos[prefix:]):
            dbm.push()
            if info.edges is _FALSE:
                dbm.mark_inconsistent()
            elif not info.is_diseq:
                for u, v, c in info.edges:
                    dbm.add(u, v, c)
            stack.append((literal, info))

    def _decide_fragment(self, want_equalities):
        dbm = self._dbm
        if dbm.inconsistent:
            return TheoryResult(False, True)
        diseqs = [info for _, info in self._stack if info.is_diseq]
        consistent = self._split_diseqs(diseqs, 0)
        equalities = None
        if consistent and want_equalities:
            equalities = self._entailed_equalities()
        return TheoryResult(consistent, True, equalities)

    def _split_diseqs(self, diseqs, index):
        """Case-split the disequalities on the live matrix (reference
        order: low branch first), one trail frame per branch."""
        if index == len(diseqs):
            return True
        dbm = self._dbm
        for branch in diseqs[index].branches:
            if branch is _FALSE:
                continue
            dbm.push()
            for u, v, c in branch:
                dbm.add(u, v, c)
            holds = not dbm.inconsistent and self._split_diseqs(
                diseqs, index + 1
            )
            dbm.pop()
            if holds:
                return True
        return False

    def _entailed_equalities(self):
        """The pairs of (non-zero) nodes the asserted equalities and
        inequalities force equal — disequality splitting not applied.
        Deterministic: pairs come out sorted."""
        nodes = sorted(n for n in self._dbm.nodes() if n != ZERO)
        pairs = set()
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if self._dbm.entailed_eq(u, v):
                    pairs.add((u, v))
        return frozenset(pairs)

    # -- fallback ------------------------------------------------------------

    def _check_fallback(self, ordered):
        started = time.perf_counter()
        self.fallback_queries += 1
        key = frozenset(ordered)
        cached = self._results.get(key)
        if cached is not None:
            self.cache_hits += 1
            consistent, exact = cached
        else:
            consistent, exact = _consistent(
                *_split_literals(ordered), eq_cache=self._eq_cache
            )
            self._results[key] = (consistent, exact)
        self.time_in_cache += time.perf_counter() - started
        return TheoryResult(consistent, exact)

    def counters(self):
        return {
            "theory_delta_queries": self.delta_queries,
            "theory_cache_hits": self.cache_hits,
            "time_in_theory_closure": self.time_in_closure,
            "time_in_theory_cache": self.time_in_cache,
        }
