"""Combined theory consistency check: EUF + linear integer arithmetic.

Given a set of theory literals (atoms with polarity), decide whether they
are jointly satisfiable.  The combination follows the Nelson-Oppen recipe,
specialized to our two convex-ish theories:

1. run congruence closure over the equalities (and check disequalities);
2. propagate the resulting equalities into the arithmetic solver;
3. check arithmetic satisfiability (Fourier-Motzkin); disequalities are
   handled by case-splitting ``t1 != t2`` into ``t1 < t2 | t1 > t2``;
4. propagate arithmetic-entailed equalities back into the congruence
   closure (detected pairwise over congruence-relevant term pairs) and
   repeat until a fixpoint.

All UNSAT verdicts are sound; a SAT verdict may be optimistic for
fragments we treat as uninterpreted (non-linear arithmetic, bit
operations), which only costs the client precision.
"""

from repro.prover.euf import CongruenceClosure
from repro.prover.linarith import LinearSolver, linearize
from repro.prover.terms import subterms

_MAX_SPLIT_DISEQS = 12
_MAX_PROPAGATION_ROUNDS = 4


class TheoryResult:
    __slots__ = ("consistent", "exact")

    def __init__(self, consistent, exact=True):
        self.consistent = consistent
        # A SAT verdict is *exact* when no completeness limit was hit on
        # the way (disequality-split cap, propagation-round cap): the
        # check actually decided the literal set rather than giving up in
        # the optimistic direction.  All UNSAT verdicts are exact.
        self.exact = exact

    def __bool__(self):
        return self.consistent


def check_literals(literals):
    """Decide joint satisfiability of ``literals``.

    Each literal is ``(atom, polarity)`` where ``atom`` is
    ``("le", t1, t2)`` or ``("eq", t1, t2)``.
    """
    eqs, diseqs, les = [], [], []
    for atom, polarity in literals:
        kind, t1, t2 = atom
        if kind == "eq":
            (eqs if polarity else diseqs).append((t1, t2))
        elif kind == "le":
            if polarity:
                les.append((t1, t2))  # t1 <= t2
            else:
                les.append((t2, ("app", "+", (t1, ("num", -1)))))  # t2 <= t1-1
        else:
            raise ValueError("unknown atom %r" % (atom,))
    consistent, exact = _consistent(eqs, diseqs, les)
    return TheoryResult(consistent, exact)


def _consistent(eqs, diseqs, les):
    """``(consistent, exact)``: joint satisfiability, plus whether the
    verdict was reached without hitting a completeness limit."""
    euf = CongruenceClosure()
    relevant_terms = set()
    for t1, t2 in eqs + diseqs + les:
        euf.add_term(t1)
        euf.add_term(t2)
        relevant_terms |= set(subterms(t1)) | set(subterms(t2))
    for t1, t2 in eqs:
        if not euf.merge(t1, t2):
            return False, True
    for t1, t2 in diseqs:
        if not euf.add_disequality(t1, t2):
            return False, True

    capped = len(diseqs) > _MAX_SPLIT_DISEQS
    for _ in range(_MAX_PROPAGATION_ROUNDS):
        # EUF -> arithmetic: every equality the closure knows between terms
        # of interest becomes an arithmetic equality.
        solver = LinearSolver()
        for t1, t2 in les:
            solver.assert_le_terms(t1, t2)
        classes = euf.equivalence_classes()
        for members in classes.values():
            members = [m for m in members if m in relevant_terms]
            for other in members[1:]:
                solver.assert_eq_terms(members[0], other)
        if not _check_with_diseqs(solver, diseqs, euf):
            return False, True
        # Arithmetic -> EUF: find arithmetic-entailed equalities among
        # congruence-relevant pairs and merge them.
        changed = _propagate_entailed_equalities(solver, euf, relevant_terms)
        if not euf.consistent:
            return False, True
        if not changed:
            return True, not capped
    return True, False  # fixpoint not reached; claim SAT (sound direction)


def _check_with_diseqs(solver, diseqs, euf, depth=0):
    """Arithmetic satisfiability with ``!=`` constraints by case splitting."""
    if not solver.check():
        return False
    if not diseqs:
        return True
    if len(diseqs) > _MAX_SPLIT_DISEQS:
        # Too many splits: accept possibly optimistic SAT.
        return True
    (t1, t2), rest = diseqs[0], diseqs[1:]
    lin1, lin2 = linearize(t1), linearize(t2)
    # If the two sides share no arithmetic content constraints could bite
    # on, the disequality is arithmetically free - skip the split.
    low = solver.copy()
    expr = lin1.minus(lin2)
    expr.const += 1  # t1 <= t2 - 1
    low.add_le(expr)
    if _check_with_diseqs(low, rest, euf, depth + 1):
        return True
    high = solver.copy()
    expr = lin2.minus(lin1)
    expr.const += 1  # t2 <= t1 - 1
    high.add_le(expr)
    return _check_with_diseqs(high, rest, euf, depth + 1)


def _propagate_entailed_equalities(solver, euf, relevant_terms):
    """Merge terms the arithmetic forces equal; True if anything merged.

    Caller contract: ``solver`` has already been checked satisfiable
    (``_check_with_diseqs`` runs first), which licenses an exact
    prefilter — if ``t1 - t2`` mentions a variable no constraint
    touches, that variable can be moved freely in some model, so the
    equality cannot be entailed and the two Fourier-Motzkin runs of
    ``implies_eq`` are skipped."""
    candidates = _congruence_candidate_pairs(euf, relevant_terms)
    changed = False
    constrained = None
    for t1, t2 in candidates:
        if euf.are_equal(t1, t2):
            continue
        diff = linearize(t1).minus(linearize(t2))
        if diff.is_constant:
            if diff.const != 0:
                continue
        else:
            if constrained is None:
                constrained = set()
                for expr in solver._les:
                    constrained |= expr.variables()
                for expr in solver._eqs:
                    constrained |= expr.variables()
            if any(var not in constrained for var in diff.coeffs):
                continue
        if solver.implies_eq(t1, t2):
            euf.merge(t1, t2)
            changed = True
            if not euf.consistent:
                return True
    return changed


def _congruence_candidate_pairs(euf, relevant_terms):
    """Pairs of terms whose equality could matter: arguments at the same
    position of same-symbol applications, and the two sides of potential
    numeral pinnings."""
    by_slot = {}
    apps = [t for t in relevant_terms if t[0] == "app"]
    for application in apps:
        symbol, args = application[1], application[2]
        for index, arg in enumerate(args):
            by_slot.setdefault((symbol, index, len(args)), []).append(arg)
    pairs = set()
    for args in by_slot.values():
        unique = list({euf.representative(a): a for a in args}.values())
        for i, first in enumerate(unique):
            for second in unique[i + 1 :]:
                pairs.add((first, second))
    return pairs
