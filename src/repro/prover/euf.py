"""Congruence closure for equality with uninterpreted functions.

The classic procedure: a union-find over terms, a signature table mapping
``(symbol, representative args)`` to a canonical application, and a "uses"
index so that merging two classes revisits the applications that mention
them.  The signature table also catches congruences for terms that are
registered *after* the merges that make them congruent (the incremental
use pattern of the Nelson-Oppen combination loop).

Distinct integer constants are semantically distinct: a class containing
two different numerals is an immediate conflict.
"""

from repro.prover.terms import subterms


class CongruenceClosure:
    def __init__(self):
        self._parent = {}
        self._uses = {}  # representative -> list of app terms using it
        self._sigs = {}  # (symbol, arg representatives) -> app term
        self._diseqs = []  # list of (t1, t2) that must stay apart
        self._num_of = {}  # representative -> numeral value if known
        self._conflict = None
        self._pending = []  # merge worklist

    # -- union-find --------------------------------------------------------

    def _find(self, term):
        parent = self._parent
        if term not in parent:
            self._register(term)
            return self._find_registered(term)
        return self._find_registered(term)

    def _find_registered(self, term):
        parent = self._parent
        root = term
        while parent[root] != root:
            root = parent[root]
        while parent[term] != root:
            parent[term], term = root, parent[term]
        return root

    def _signature(self, application):
        return (application[1],) + tuple(self._find(arg) for arg in application[2])

    def _register(self, term):
        """Add a term (and its subterms) to the structure."""
        if term in self._parent:
            return
        self._parent[term] = term
        self._uses[term] = []
        if term[0] == "num":
            self._num_of[term] = term[1]
        if term[0] == "app":
            for arg in term[2]:
                self._register(arg)
                self._uses[self._find(arg)].append(term)
            signature = self._signature(term)
            existing = self._sigs.get(signature)
            if existing is None:
                self._sigs[signature] = term
            elif self._find(existing) != self._find(term):
                # Congruent to an already-known application.
                self._pending.append((existing, term))
                self._drain()

    def add_term(self, term):
        """Ensure ``term`` and its subterms participate in the closure."""
        for sub in subterms(term):
            self._register(sub)

    # -- merging ---------------------------------------------------------------

    def merge(self, t1, t2):
        """Assert ``t1 = t2``; returns False on conflict."""
        if self._conflict:
            return False
        self.add_term(t1)
        self.add_term(t2)
        self._pending.append((t1, t2))
        self._drain()
        return self._check_diseqs()

    def _drain(self):
        while self._pending and self._conflict is None:
            t1, t2 = self._pending.pop()
            self._merge_one(t1, t2)

    def _merge_one(self, t1, t2):
        root1, root2 = self._find(t1), self._find(t2)
        if root1 == root2:
            return
        # Union by number of uses: keep the busier class as survivor.
        if len(self._uses[root1]) < len(self._uses[root2]):
            root1, root2 = root2, root1
        self._parent[root2] = root1
        # Numeral conflict detection.
        num1 = self._num_of.get(root1)
        num2 = self._num_of.get(root2)
        if num1 is not None and num2 is not None and num1 != num2:
            self._conflict = (t1, t2)
            return
        if num2 is not None:
            self._num_of[root1] = num2
        # Re-hash the applications that used the absorbed class; their
        # signatures changed, which may reveal new congruences.
        moved = self._uses[root2]
        self._uses[root1] = self._uses[root1] + moved
        self._uses[root2] = []
        for application in moved:
            signature = self._signature(application)
            existing = self._sigs.get(signature)
            if existing is None:
                self._sigs[signature] = application
            elif self._find(existing) != self._find(application):
                self._pending.append((existing, application))

    # -- queries -----------------------------------------------------------------

    def add_disequality(self, t1, t2):
        """Assert ``t1 != t2``; returns False on conflict."""
        self.add_term(t1)
        self.add_term(t2)
        self._diseqs.append((t1, t2))
        return self._check_diseqs()

    def _check_diseqs(self):
        if self._conflict:
            return False
        for t1, t2 in self._diseqs:
            if self._find(t1) == self._find(t2):
                self._conflict = (t1, t2)
                return False
        return True

    @property
    def consistent(self):
        return self._conflict is None and self._check_diseqs()

    def are_equal(self, t1, t2):
        self.add_term(t1)
        self.add_term(t2)
        return self._find(t1) == self._find(t2)

    def representative(self, term):
        return self._find(term)

    def known_numeral(self, term):
        """The numeral this term's class is pinned to, if any."""
        return self._num_of.get(self._find(term))

    def equivalence_classes(self):
        """Mapping representative -> list of member terms."""
        classes = {}
        for term in list(self._parent):
            classes.setdefault(self._find(term), []).append(term)
        return classes
