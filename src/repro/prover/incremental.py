"""The incremental assumption-based cube decision engine.

One ``F_V(φ)`` strengthening call tests up to ``3^k`` cubes against a
*fixed* goal: "does ``E(c) => φ`` hold?" for every candidate cube ``c``.
The from-scratch pipeline re-translates, re-encodes (Tseitin), rebuilds a
SAT solver, and rediscovers the same theory lemmas for every single cube.
An :class:`IncrementalCubeSession` does the shared work once per
strengthening call:

- ``¬goal``, the definitional side constraints, and the address axioms are
  translated and CNF-encoded **once** on a persistent
  :class:`~repro.prover.sat.SatSolver`;
- every candidate predicate literal (both polarities) is encoded once and
  guarded by a fresh *selector* variable ``s`` with the clause
  ``s -> literal``;
- a cube is decided by ``solve(assumptions=[selectors of its literals])``
  — UNSAT means the cube's concretization implies the goal;
- the DPLL(T) lemma loop lives in the session: theory-refutation blocking
  clauses are added to the *same* solver, so lemmas (and the CDCL core's
  learned clauses) accumulate across all cubes of the call instead of
  being rediscovered per cube.

On an UNSAT answer the solver's assumption core is mapped back to cube
literals, giving the *sub-cube* that already forces the implication — the
caller can record the smaller cube and prune strictly more supersets
without further queries.

Theory consistency is checked only over the atoms *relevant* to the
current cube (the base encoding's atoms plus the active literals'), so an
assignment to the atoms of inactive candidate literals — present in the
solver because the whole candidate set is encoded up front — cannot
perturb the theory verdict relative to a fresh per-cube query.  The
persisted blocking clauses get the same treatment: each is guarded by a
selector that :meth:`decide` assumes only when the lemma's atoms all lie
inside the current query's relevant set.  An unguarded lemma base would
let earlier cubes' lemmas case-split over atoms a later query never asked
about (e.g. an exhaustive split over comparison atoms whose
integer-tightened cells jointly refute a query that is satisfiable over
the rationals), making answers depend on query order — and diverge from
the fresh-per-query baseline.  With the guards, every ``decide`` answer
is a pure function of ``(candidates, goal, cube)``.
"""

import time

from repro.prover import terms as T
from repro.prover.cnf import CnfEncoder
from repro.prover.sat import SatSolver
from repro.prover.smt import Satisfiability, _minimize_core
from repro.prover.theory import IncrementalTheory, check_literals


class IncrementalCubeSession:
    """Assumption-based cube decisions against one fixed goal formula.

    ``candidates`` is the ordered list of candidate predicate C
    expressions (positive forms); ``goal`` is the goal C expression.  A
    *cube* is an iterable of ``(candidate index, polarity)`` pairs;
    :meth:`decide` answers whether the cube's concretization implies the
    goal, together with the assumption core as a sub-cube.

    ``want_cores=False`` skips the assumption-core mapping (and its
    lemma-relevance validation) on UNSAT answers entirely — the policy
    hook for callers that throw the core away, like the non-incremental
    baseline's throwaway per-query sessions.

    ``theory_incremental=True`` (the default) routes every theory
    consistency check — model validation in :meth:`decide` and
    :meth:`enumerate_models`, and each probe of the greedy core
    minimizer — through one persistent
    :class:`~repro.prover.theory.IncrementalTheory` session, so the
    near-identical literal sets of an AllSAT sweep pay only for their
    deltas.  The engine answers exactly like the stateless
    ``check_literals`` (that equivalence is fuzz- and
    hypothesis-tested), so verdicts, cores, and ``TheoryResult.exact``
    licensing are unchanged; ``False`` restores the stateless calls."""

    def __init__(
        self,
        candidates,
        goal,
        max_rounds=400,
        want_cores=True,
        theory_incremental=True,
    ):
        self.max_rounds = max_rounds
        self.want_cores = want_cores
        self._theory = IncrementalTheory() if theory_incremental else None
        # Counters mirrored into ProverStats by the session's owner.
        self.assumption_solves = 0
        self.lemmas_learned = 0
        self.lemma_reuse_hits = 0
        self.decides = 0
        # Per-phase wall-clock attribution (seconds).
        self.time_in_encode = 0.0
        self.time_in_solve = 0.0
        self.time_in_generalize = 0.0

        encode_started = time.perf_counter()
        ctx = T.TranslationContext()
        goal_formula = T.translate_formula(goal, ctx)
        positive = [T.translate_formula(expr, ctx) for expr in candidates]
        literal_formulas = {}
        for index, formula in enumerate(positive):
            literal_formulas[(index, True)] = formula
            literal_formulas[(index, False)] = T.lnot(formula)
        # Address axioms are true facts; computing them over the whole
        # candidate set (not per cube) keeps them query-independent.
        scope = T.land(T.lnot(goal_formula), *positive, *ctx.defs)
        axioms = list(ctx.defs) + T.address_axioms(scope)
        base = T.land(T.lnot(goal_formula), *axioms)

        self.encoder = CnfEncoder()
        self.solver = SatSolver()
        self._atom_map = self.encoder.atom_map
        clauses = []
        self._trivially_valid = base == T.FALSE
        self._base_atom_vars = set()
        if not self._trivially_valid:
            root = self.encoder.encode(base, clauses)
            clauses.append([root])
            self._base_atom_vars = {
                self._atom_map.var_for(atom) for atom in T.formula_atoms(base)
            }
        # Relevance-guarded theory lemmas: guard selector -> atom vars.
        self._lemmas = {}
        # One selector per candidate literal: assuming it asserts the literal.
        self._selectors = {}
        self._selector_literal = {}
        self._literal_atom_vars = {}
        # Tseitin root of each literal's formula (the encoding is
        # biconditional, so the root's value in any model *is* the
        # literal's truth value); True/False stand in for the constant
        # literals.  Used by the AllSAT sweep to project models onto the
        # candidate set.
        self._literal_roots = {}
        for key, formula in literal_formulas.items():
            selector = self._atom_map.fresh_var()
            self._selectors[key] = selector
            self._selector_literal[selector] = key
            if formula == T.FALSE:
                # The literal is constantly false: any cube containing it
                # has an unsatisfiable concretization, so the implication
                # holds vacuously — assuming the selector must conflict.
                clauses.append([-selector])
                self._literal_atom_vars[key] = frozenset()
                self._literal_roots[key] = False
            elif formula == T.TRUE:
                # Constantly true: assuming the selector constrains nothing.
                self._literal_atom_vars[key] = frozenset()
                self._literal_roots[key] = True
            else:
                literal_root = self.encoder.encode(formula, clauses)
                clauses.append([-selector, literal_root])
                self._literal_atom_vars[key] = frozenset(
                    self._atom_map.var_for(atom)
                    for atom in T.formula_atoms(formula)
                )
                self._literal_roots[key] = literal_root
        for clause in clauses:
            self.solver.add_clause(clause)
        # The full relevance scope: every atom any cube query over this
        # candidate set could put in play (the AllSAT sweep validates its
        # models over exactly this set).
        self._all_atom_vars = set(self._base_atom_vars)
        for atoms in self._literal_atom_vars.values():
            self._all_atom_vars |= atoms
        self.time_in_encode += time.perf_counter() - encode_started

    def decide(self, cube):
        """Decide ``E(cube) => goal``.

        Returns ``(outcome, core)``: ``outcome`` is a
        :class:`Satisfiability` where UNSAT means the implication is
        valid, and ``core`` is the sub-cube (tuple of (index, polarity)
        pairs, sorted) whose literals already force the implication —
        only present on UNSAT."""
        cube = tuple(cube)
        self.decides += 1
        if self._trivially_valid:
            return Satisfiability.UNSAT, ()
        relevant = set(self._base_atom_vars)
        for key in cube:
            relevant |= self._literal_atom_vars[key]
        assumptions = [self._selectors[key] for key in cube]
        # Enable only the lemmas whose atoms this query could itself have
        # discovered; the rest stay inert behind their guards.
        for guard, atoms in self._lemmas.items():
            if atoms <= relevant:
                assumptions.append(guard)
        lemmas_before = self.lemmas_learned
        outcome = Satisfiability.UNKNOWN
        core = None
        for _ in range(self.max_rounds):
            solve_started = time.perf_counter()
            result = self.solver.solve(assumptions=assumptions)
            self.time_in_solve += time.perf_counter() - solve_started
            self.assumption_solves += 1
            if not result.sat:
                outcome = Satisfiability.UNSAT
                if self.want_cores:
                    generalize_started = time.perf_counter()
                    core = self._map_core(result.core, cube)
                    self.time_in_generalize += (
                        time.perf_counter() - generalize_started
                    )
                break
            generalize_started = time.perf_counter()
            literals = self._theory_literals(result.model, relevant)
            if not literals or self._check_theory(literals):
                self.time_in_generalize += (
                    time.perf_counter() - generalize_started
                )
                outcome = Satisfiability.SAT
                break
            blocked = _minimize_core(literals, checker=self._check_theory)
            blocking = [
                (-self._atom_map.var_for(atom) if polarity else self._atom_map.var_for(atom))
                for atom, polarity in blocked
            ]
            guard = self._atom_map.fresh_var()
            self.solver.add_clause([-guard] + blocking)
            self._lemmas[guard] = frozenset(
                self._atom_map.var_for(a) for a, _ in blocked
            )
            assumptions.append(guard)
            self.lemmas_learned += 1
            self.time_in_generalize += time.perf_counter() - generalize_started
        if (
            self.decides > 1
            and lemmas_before > 0
            and self.lemmas_learned == lemmas_before
        ):
            # Earlier cubes' theory lemmas sufficed — nothing rediscovered.
            self.lemma_reuse_hits += 1
        return outcome, core

    def _map_core(self, solver_core, cube):
        """Map an assumption core back to a sub-cube.

        Lemma guards in the conflict are theory facts, not cube literals,
        so they are dropped — but a lemma only holds *relative to its own
        atoms being in scope*.  The shrunken sub-cube is reported only
        when every involved lemma's atoms lie inside the sub-cube's
        relevant set; otherwise a standalone query on the sub-cube could
        not rediscover the lemma and would answer differently, so the
        full cube is returned instead (a valid, unshrunken core)."""
        sub_cube = tuple(
            sorted(
                self._selector_literal[s]
                for s in solver_core
                if s in self._selector_literal
            )
        )
        relevant = set(self._base_atom_vars)
        for key in sub_cube:
            relevant |= self._literal_atom_vars[key]
        for s in solver_core:
            atoms = self._lemmas.get(s)
            if atoms is not None and not atoms <= relevant:
                return tuple(sorted(cube))
        return sub_cube

    def _theory_literals(self, model, relevant_vars):
        literals = []
        for var, value in model.items():
            if var not in relevant_vars:
                continue
            atom = self._atom_map.atom_of(var)
            if atom is not None:
                literals.append((atom, value))
        return literals

    def _check_theory(self, literals):
        """Theory consistency through the session's incremental engine
        (stateless ``check_literals`` when it is disabled); both answer
        identically on every literal set."""
        if self._theory is not None:
            return self._theory.check(literals)
        return check_literals(literals)

    # -- AllSAT model enumeration (the sweep behind AllSatStrategy) -----------

    def candidate_count(self):
        return len(self._literal_roots) // 2

    def _root_value(self, model, key):
        """The truth value of a candidate literal in a total model (the
        Tseitin encoding is biconditional, so the root's assignment is the
        formula's truth value)."""
        root = self._literal_roots[key]
        if isinstance(root, bool):
            return root
        value = model[abs(root)]
        return value if root > 0 else not value

    def enumerate_models(self, max_models):
        """Enumerate theory-validated models of the base encoding
        (``¬goal ∧ axioms``, no cube literal asserted), projected onto the
        candidate predicates.

        Returns ``(projections, solves)``: each projection is a tuple of
        booleans — the truth value of every candidate's *positive* literal
        in one model — and distinct projections only (each found
        projection is blocked behind a sweep-only guard, so the blocking
        clauses are invisible to :meth:`decide`).  A projection is a
        *witness catalog* entry: any cube it satisfies has a
        theory-consistent model of ``E(cube) ∧ ¬goal``, i.e. the cube
        does **not** imply the goal.  Models are validated over the full
        relevance scope (base atoms plus every candidate literal's), and
        kept only when the theory checker's verdict is *exact* — a
        capped, optimistic SAT is not a witness a smaller scope can
        inherit.  Theory-refuted models add relevance-guarded lemmas
        through the same code path as :meth:`decide`, so sweep work also
        warms later cube decisions."""
        if self._trivially_valid:
            return [], 0
        sweep_guard = self._atom_map.fresh_var()
        assumptions = [sweep_guard]
        for guard, atoms in self._lemmas.items():
            if atoms <= self._all_atom_vars:
                assumptions.append(guard)
        count = self.candidate_count()
        positive_keys = [(index, True) for index in range(count)]
        projections = []
        solves = 0
        for _ in range(self.max_rounds):
            solve_started = time.perf_counter()
            result = self.solver.solve(assumptions=assumptions)
            self.time_in_solve += time.perf_counter() - solve_started
            self.assumption_solves += 1
            solves += 1
            if not result.sat:
                break
            generalize_started = time.perf_counter()
            literals = self._theory_literals(result.model, self._all_atom_vars)
            verdict = self._check_theory(literals) if literals else None
            if literals and not verdict:
                # Theory-inconsistent assignment: learn the same guarded
                # lemma decide() would, and keep enumerating.
                blocked = _minimize_core(literals, checker=self._check_theory)
                blocking = [
                    (
                        -self._atom_map.var_for(atom)
                        if polarity
                        else self._atom_map.var_for(atom)
                    )
                    for atom, polarity in blocked
                ]
                guard = self._atom_map.fresh_var()
                self.solver.add_clause([-guard] + blocking)
                self._lemmas[guard] = frozenset(
                    self._atom_map.var_for(a) for a, _ in blocked
                )
                assumptions.append(guard)
                self.lemmas_learned += 1
                self.time_in_generalize += time.perf_counter() - generalize_started
                continue
            projection = tuple(
                self._root_value(result.model, key) for key in positive_keys
            )
            if verdict is None or verdict.exact:
                projections.append(projection)
            block = [-sweep_guard]
            for key in positive_keys:
                root = self._literal_roots[key]
                if isinstance(root, bool):
                    continue
                value = result.model[abs(root)]
                block.append(-abs(root) if value else abs(root))
            self.solver.add_clause(block)
            self.time_in_generalize += time.perf_counter() - generalize_started
            if len(projections) >= max_models:
                break
        return projections, solves

    def counters(self):
        counters = {
            "assumption_solves": self.assumption_solves,
            "lemmas_learned": self.lemmas_learned,
            "lemma_reuse_hits": self.lemma_reuse_hits,
            "decides": self.decides,
            "time_in_encode": self.time_in_encode,
            "time_in_solve": self.time_in_solve,
            "time_in_generalize": self.time_in_generalize,
        }
        if self._theory is not None:
            counters.update(self._theory.counters())
        else:
            counters.update(
                theory_delta_queries=0,
                theory_cache_hits=0,
                time_in_theory_closure=0.0,
                time_in_theory_cache=0.0,
            )
        return counters
