"""The theorem prover used by C2bp and Newton.

The paper calls out to two Nelson-Oppen style provers (Simplify [15] and
Vampyre [7]) through a simple "does this C expression imply that one?"
interface, and reports its results in *number of theorem prover calls*.
This package provides the same interface backed by a from-scratch
implementation:

- :mod:`repro.prover.terms` — translation of quantifier-free C expressions
  into a logical term/formula language (uninterpreted selectors for
  dereference and field access, address constants, linear arithmetic);
- :mod:`repro.prover.sat` — a CDCL propositional solver;
- :mod:`repro.prover.euf` — congruence closure for equality with
  uninterpreted functions;
- :mod:`repro.prover.linarith` — a decision procedure for conjunctions of
  linear integer constraints (Fourier-Motzkin elimination with integral
  tightening);
- :mod:`repro.prover.theory` — the combined EUF + arithmetic consistency
  check with equality propagation between the two (the Nelson-Oppen loop);
- :mod:`repro.prover.smt` — the lazy DPLL(T) loop tying the SAT core to the
  theories;
- :mod:`repro.prover.interface` — the cached, call-counting front door
  (:class:`Prover`) consumed by C2bp.

Like the provers in the paper, ours is *sound for validity but incomplete*:
``is_valid`` may answer ``False`` for a valid formula involving, e.g.,
non-linear arithmetic (those operators are treated as uninterpreted), in
which case C2bp conservatively falls back to non-deterministic assignment.
"""

from repro.prover.cache import QueryCache
from repro.prover.incremental import IncrementalCubeSession
from repro.prover.interface import (
    CubeProverSession,
    DpllTBackend,
    Prover,
    ProverStats,
)
from repro.prover.smt import Satisfiability, check_formula

__all__ = [
    "CubeProverSession",
    "DpllTBackend",
    "IncrementalCubeSession",
    "Prover",
    "ProverStats",
    "QueryCache",
    "Satisfiability",
    "check_formula",
]
