"""The lazy DPLL(T) loop.

The propositional skeleton of the input formula goes to the CDCL core; each
propositional model's theory literals are checked for consistency by the
combined EUF+arithmetic procedure; inconsistent assignments are excluded
with (greedily minimized) blocking clauses until either the SAT core runs
dry (UNSAT) or a theory-consistent model is found (SAT).
"""

import enum

from repro.prover.cnf import formula_to_cnf
from repro.prover.sat import SatSolver
from repro.prover.terms import land
from repro.prover.theory import check_literals


class Satisfiability(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_MAX_THEORY_ROUNDS = 400


def check_formula(formula, axioms=(), max_rounds=_MAX_THEORY_ROUNDS):
    """Decide satisfiability of ``formula`` (with ``axioms`` conjoined).

    UNSAT answers are sound.  UNKNOWN is returned when the lazy loop does
    not converge within ``max_rounds`` blocking iterations.
    """
    whole = land(formula, *axioms)
    if whole == ("true",):
        return Satisfiability.SAT
    if whole == ("false",):
        return Satisfiability.UNSAT
    clauses, atom_map = formula_to_cnf(whole)
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    for _ in range(max_rounds):
        result = solver.solve()
        if not result.sat:
            return Satisfiability.UNSAT
        literals = _theory_literals(result.model, atom_map)
        if not literals:
            return Satisfiability.SAT
        if check_literals(literals):
            return Satisfiability.SAT
        core = _minimize_core(literals)
        blocking = [
            (-var if polarity else var)
            for (atom, polarity), var in (
                ((atom, polarity), atom_map.var_for(atom)) for atom, polarity in core
            )
        ]
        solver.add_clause(blocking)
    return Satisfiability.UNKNOWN


def _theory_literals(model, atom_map):
    literals = []
    for var, value in model.items():
        atom = atom_map.atom_of(var)
        if atom is not None:
            literals.append((atom, value))
    return literals


def _minimize_core(literals, checker=check_literals):
    """Greedy minimization: drop literals whose removal keeps the set
    inconsistent.  A smaller core gives a stronger blocking clause.

    ``checker`` lets a caller route the probes through a stateful
    :class:`~repro.prover.theory.IncrementalTheory` session — each probe
    drops one literal from the previous set, the delta workload the
    session's push/pop stack is built for."""
    core = list(literals)
    index = 0
    while index < len(core):
        candidate = core[:index] + core[index + 1 :]
        if candidate and not checker(candidate):
            core = candidate
        else:
            index += 1
    return core
