"""Difference-bound matrix with incremental closure and a backtracking
trail.

A :class:`DifferenceBounds` holds constraints of the form ``u - v <= c``
over opaque terms (``c`` an integer), plus unary bounds ``u <= c`` /
``-u <= c`` expressed against the distinguished zero node ``("num", 0)``.
The matrix is kept *closed* under path shortening: after every
:meth:`add`, ``bound(u, v)`` is the tightest constant any chain of added
edges implies for ``u - v``.  Closure is maintained incrementally — one
edge insertion relaxes every pair through the new edge, O(n²) in the
number of registered nodes rather than a full O(n³) Floyd–Warshall — and
a negative self-cycle flips the (trail-tracked) :attr:`inconsistent`
flag.  Over integer-valued terms this fragment is *exact*: a difference
system is integer-satisfiable iff its constraint graph has no negative
cycle, so both verdicts of the consistency check are complete, not just
the UNSAT direction.

:meth:`push`/:meth:`pop` frame every mutation (cell overwrites, node
registrations, the inconsistency flag) so the incremental theory engine
can retarget between literal sets that share a prefix by undoing only
the suffix.
"""

ZERO = ("num", 0)


class DifferenceBounds:
    __slots__ = ("_dist", "_nodes", "_frames", "inconsistent")

    def __init__(self):
        self._dist = {}  # (u, v) -> int: tightest known bound on u - v
        self._nodes = {ZERO}
        self._frames = [[]]  # base frame absorbs unframed mutations
        self.inconsistent = False

    # -- trail ---------------------------------------------------------------

    def push(self):
        self._frames.append([])

    def pop(self):
        for kind, payload in reversed(self._frames.pop()):
            if kind == "cell":
                key, old = payload
                if old is None:
                    del self._dist[key]
                else:
                    self._dist[key] = old
            elif kind == "node":
                self._nodes.discard(payload)
            else:  # "flag"
                self.inconsistent = payload

    @property
    def depth(self):
        return len(self._frames) - 1

    # -- mutation ------------------------------------------------------------

    def mark_inconsistent(self):
        """Record an infeasibility discovered outside the matrix (e.g. a
        trivially-false constant constraint) on the trail."""
        if not self.inconsistent:
            self._frames[-1].append(("flag", False))
            self.inconsistent = True

    def _register(self, term):
        if term not in self._nodes:
            self._nodes.add(term)
            self._frames[-1].append(("node", term))

    def add(self, u, v, c):
        """Assert ``u - v <= c`` and restore closure.

        No-op once inconsistent (the verdict cannot recover inside a
        frame; :meth:`pop` rewinds the flag with everything else)."""
        if self.inconsistent:
            return
        if u == v:
            if c < 0:
                self.mark_inconsistent()
            return
        self._register(u)
        self._register(v)
        dist = self._dist
        current = dist.get((u, v))
        if current is not None and current <= c:
            return  # already at least this tight; closure unchanged
        back = dist.get((v, u))
        if back is not None and back + c < 0:
            self.mark_inconsistent()
            return
        # Relax every pair through the new edge:
        #   d[i][j] = min(d[i][j], d[i][u] + c + d[v][j]).
        frame = self._frames[-1]
        ins = []
        for i in self._nodes:
            diu = 0 if i == u else dist.get((i, u))
            if diu is not None:
                ins.append((i, diu + c))
        outs = []
        for j in self._nodes:
            dvj = 0 if j == v else dist.get((v, j))
            if dvj is not None:
                outs.append((j, dvj))
        for i, base in ins:
            for j, dvj in outs:
                candidate = base + dvj
                if i == j:
                    if candidate < 0:
                        self.mark_inconsistent()
                        return
                    continue
                key = (i, j)
                known = dist.get(key)
                if known is None or candidate < known:
                    frame.append(("cell", (key, known)))
                    dist[key] = candidate

    # -- queries -------------------------------------------------------------

    def bound(self, u, v):
        """The tightest entailed ``c`` with ``u - v <= c``, or None."""
        if u == v:
            return 0
        return self._dist.get((u, v))

    def entailed_eq(self, u, v):
        """Whether the closed system forces ``u == v``."""
        if u == v:
            return True
        return self._dist.get((u, v)) == 0 and self._dist.get((v, u)) == 0

    def nodes(self):
        return set(self._nodes)
