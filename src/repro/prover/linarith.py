"""Linear integer arithmetic over opaque atom-terms.

Conjunctions of linear constraints are decided by Fourier-Motzkin
elimination over the rationals with per-constraint integral tightening
(dividing by the coefficient gcd and rounding the constant).  Every UNSAT
verdict is sound for the integers (rational infeasibility implies integer
infeasibility, and tightening preserves integer solutions); SAT verdicts may
overshoot for genuinely integer-infeasible systems — the safe direction for
the predicate-abstraction client.

A "variable" here is any opaque term: program variables, but also
uninterpreted applications such as ``deref(p)`` or ``field:val(deref(curr))``
that happen to be compared arithmetically.
"""

from fractions import Fraction
from math import floor, gcd

from repro.prover.terms import is_num


class LinExpr:
    """An affine form: sum of coef * opaque-term plus a constant."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs=None, const=0):
        self.coeffs = dict(coeffs or {})
        self.const = Fraction(const)

    def copy(self):
        return LinExpr(self.coeffs, self.const)

    def add_term(self, term, coef):
        new = self.coeffs.get(term, Fraction(0)) + coef
        if new == 0:
            self.coeffs.pop(term, None)
        else:
            self.coeffs[term] = new

    def scaled(self, factor):
        factor = Fraction(factor)
        result = LinExpr()
        result.const = self.const * factor
        result.coeffs = {t: c * factor for t, c in self.coeffs.items()}
        return result

    def plus(self, other):
        result = self.copy()
        result.const += other.const
        for term, coef in other.coeffs.items():
            result.add_term(term, coef)
        return result

    def minus(self, other):
        return self.plus(other.scaled(-1))

    @property
    def is_constant(self):
        return not self.coeffs

    def variables(self):
        return set(self.coeffs)

    def __repr__(self):
        parts = ["%s*%r" % (c, t) for t, c in self.coeffs.items()]
        parts.append(str(self.const))
        return "LinExpr(%s)" % " + ".join(parts)


def linearize(term):
    """Turn a prover term into a LinExpr; unsupported structure stays
    opaque (the whole subterm becomes a single 'variable')."""
    expr = LinExpr()
    _linearize_into(term, Fraction(1), expr)
    return expr


def _linearize_into(term, factor, out):
    kind = term[0]
    if kind == "num":
        out.const += factor * term[1]
        return
    if kind == "app":
        symbol, args = term[1], term[2]
        if symbol == "+" and len(args) == 2:
            _linearize_into(args[0], factor, out)
            _linearize_into(args[1], factor, out)
            return
        if symbol == "-" and len(args) == 2:
            _linearize_into(args[0], factor, out)
            _linearize_into(args[1], -factor, out)
            return
        if symbol == "*" and len(args) == 2:
            if is_num(args[0]):
                _linearize_into(args[1], factor * args[0][1], out)
                return
            if is_num(args[1]):
                _linearize_into(args[0], factor * args[1][1], out)
                return
    # Opaque: vars, locs, uninterpreted applications, non-linear products.
    out.add_term(term, factor)


class LinearSolver:
    """Accumulates constraints ``e <= 0`` / ``e == 0`` and decides them."""

    def __init__(self):
        self._les = []  # LinExpr e, meaning e <= 0
        self._eqs = []  # LinExpr e, meaning e == 0

    def copy(self):
        clone = LinearSolver()
        clone._les = [e.copy() for e in self._les]
        clone._eqs = [e.copy() for e in self._eqs]
        return clone

    def add_le(self, expr):
        self._les.append(expr.copy())

    def add_eq(self, expr):
        self._eqs.append(expr.copy())

    def assert_le_terms(self, t1, t2):
        """t1 <= t2"""
        self.add_le(linearize(t1).minus(linearize(t2)))

    def assert_lt_terms(self, t1, t2):
        """t1 < t2, i.e. t1 <= t2 - 1 over the integers."""
        expr = linearize(t1).minus(linearize(t2))
        expr.const += 1
        self.add_le(expr)

    def assert_eq_terms(self, t1, t2):
        self.add_eq(linearize(t1).minus(linearize(t2)))

    # -- decision ------------------------------------------------------------

    def check(self):
        """True iff the constraints are rationally satisfiable (with integer
        tightening along the way).  False is a sound integer-UNSAT."""
        les = [e.copy() for e in self._les]
        eqs = [e.copy() for e in self._eqs]
        # Phase 1: Gaussian elimination on the equalities.
        verdict = _eliminate_equalities(eqs, les)
        if verdict is False:
            return False
        # Phase 2: Fourier-Motzkin on the inequalities.
        return _fourier_motzkin(les)

    def implies_eq(self, t1, t2):
        """Whether the constraints force ``t1 == t2`` (exact for rationals,
        conservative for integers: a True answer is always correct)."""
        diff = linearize(t1).minus(linearize(t2))
        # t1 > t2 possible?
        high = self.copy()
        expr = diff.scaled(-1)
        expr.const += 1  # t2 - t1 + 1 <= 0  <=>  t1 >= t2 + 1
        high.add_le(expr)
        if high.check():
            return False
        low = self.copy()
        expr = diff.copy()
        expr.const += 1  # t1 - t2 + 1 <= 0  <=>  t1 <= t2 - 1
        low.add_le(expr)
        if low.check():
            return False
        # Neither t1 > t2 nor t1 < t2 is satisfiable; with the base system
        # satisfiable or not, t1 == t2 is entailed.
        return True


def _tighten(expr):
    """Integral tightening: divide by the gcd of the coefficients and round
    the constant up (e <= 0 with integer-valued terms)."""
    if not expr.coeffs:
        return expr
    denominators = [c.denominator for c in expr.coeffs.values()]
    denominators.append(expr.const.denominator)
    scale = 1
    for d in denominators:
        scale = scale * d // gcd(scale, d)
    scaled = expr.scaled(scale)
    g = 0
    for coef in scaled.coeffs.values():
        g = gcd(g, abs(int(coef)))
    if g > 1:
        new = LinExpr()
        new.coeffs = {t: Fraction(int(c) // g) for t, c in scaled.coeffs.items()}
        # sum(c_i x_i) <= -k  =>  sum(c_i/g x_i) <= floor(-k/g)
        new.const = Fraction(-floor(Fraction(-scaled.const) / g))
        return new
    return scaled


def _eliminate_equalities(eqs, les):
    """Substitute equalities away; returns False on an immediate conflict."""
    while eqs:
        expr = eqs.pop()
        if expr.is_constant:
            if expr.const != 0:
                return False
            continue
        # Solve for some variable: var = rest / -coef.
        var, coef = next(iter(expr.coeffs.items()))
        rest = expr.copy()
        del rest.coeffs[var]
        substitution = rest.scaled(Fraction(-1) / coef)

        def substitute(target):
            if var not in target.coeffs:
                return target
            factor = target.coeffs.pop(var)
            return target.plus(substitution.scaled(factor))

        eqs[:] = [substitute(e) for e in eqs]
        les[:] = [substitute(e) for e in les]
    return True


def _fourier_motzkin(les, max_constraints=6000):
    """Satisfiability of a conjunction of ``e <= 0`` constraints."""
    constraints = []
    for expr in les:
        expr = _tighten(expr)
        if expr.is_constant:
            if expr.const > 0:
                return False
            continue
        constraints.append(expr)
    while constraints:
        # Choose the variable appearing in the fewest constraints to keep
        # the quadratic blowup in check.
        occurrences = {}
        for expr in constraints:
            for var in expr.coeffs:
                occurrences[var] = occurrences.get(var, 0) + 1
        var = min(occurrences, key=lambda v: occurrences[v])
        uppers, lowers, rest = [], [], []
        for expr in constraints:
            coef = expr.coeffs.get(var)
            if coef is None:
                rest.append(expr)
            elif coef > 0:
                uppers.append(expr)  # coef*var <= -(rest)
            else:
                lowers.append(expr)
        new_constraints = rest
        for up in uppers:
            for lo in lowers:
                up_coef = up.coeffs[var]
                lo_coef = -lo.coeffs[var]
                combined = up.scaled(lo_coef).plus(lo.scaled(up_coef))
                combined.coeffs.pop(var, None)
                combined = _tighten(combined)
                if combined.is_constant:
                    if combined.const > 0:
                        return False
                    continue
                new_constraints.append(combined)
        if len(new_constraints) > max_constraints:
            # Give up: claim satisfiable (the sound direction).
            return True
        constraints = new_constraints
    return True
