"""Token kinds for the C subset accepted by the front end."""

# Token kind constants.  Kept as plain strings for readable debugging output.
IDENT = "IDENT"
INTLIT = "INTLIT"
CHARLIT = "CHARLIT"
STRINGLIT = "STRINGLIT"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    [
        "auto",
        "break",
        "case",
        "char",
        "const",
        "continue",
        "default",
        "do",
        "else",
        "enum",
        "extern",
        "for",
        "goto",
        "if",
        "int",
        "long",
        "return",
        "short",
        "signed",
        "sizeof",
        "static",
        "struct",
        "switch",
        "typedef",
        "union",
        "unsigned",
        "void",
        "while",
        # Extensions understood by the toolkit.
        "assert",
        "assume",
        "bool",
    ]
)

# Multi-character punctuators, longest first so the lexer can use maximal munch.
PUNCTUATORS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ":",
    "?",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    ".",
]


class Token:
    """A single lexical token with its source position."""

    __slots__ = ("kind", "text", "value", "pos")

    def __init__(self, kind, text, pos, value=None):
        self.kind = kind
        self.text = text
        self.pos = pos
        self.value = value

    def is_keyword(self, word):
        return self.kind == KEYWORD and self.text == word

    def is_punct(self, text):
        return self.kind == PUNCT and self.text == text

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)
