"""Type representation for the C subset.

The toolkit uses the paper's *logical model of memory*: integers are
unbounded mathematical integers, pointer arithmetic ``p + i`` yields a
pointer to the same object as ``p``, and arrays are objects whose elements
are reached through an index selector.  Widths therefore matter only to
``sizeof``, which we give a fixed conventional layout.
"""

from repro.cfront.errors import TypeError_


class CType:
    """Base class of all C types.  Types are immutable values."""

    def is_integer(self):
        return False

    def is_pointer(self):
        return False

    def is_struct(self):
        return False

    def is_array(self):
        return False

    def is_void(self):
        return False

    def is_function(self):
        return False

    def is_scalar(self):
        """True for values representable in a single machine word."""
        return self.is_integer() or self.is_pointer()

    def sizeof(self):
        raise TypeError_("sizeof applied to incomplete type %s" % self)

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result


class IntType(CType):
    """All integer flavors (char, short, int, long, signed, unsigned, bool)."""

    __slots__ = ("name",)

    def __init__(self, name="int"):
        self.name = name

    def is_integer(self):
        return True

    def sizeof(self):
        return {"char": 1, "short": 2, "int": 4, "long": 8, "bool": 1}.get(self.name, 4)

    def __eq__(self, other):
        # All integer flavors are interchangeable under the logical model.
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("IntType")

    def __str__(self):
        return self.name

    def __repr__(self):
        return "IntType(%r)" % self.name


class VoidType(CType):
    __slots__ = ()

    def is_void(self):
        return True

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("VoidType")

    def __str__(self):
        return "void"

    def __repr__(self):
        return "VoidType()"


class PointerType(CType):
    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def is_pointer(self):
        return True

    def sizeof(self):
        return 8

    def __eq__(self, other):
        if not isinstance(other, PointerType):
            return NotImplemented if not isinstance(other, CType) else False
        # void* is compatible with any pointer type.
        if self.target.is_void() or other.target.is_void():
            return True
        return self.target == other.target

    def __hash__(self):
        return hash("PointerType")

    def __str__(self):
        return "%s*" % self.target

    def __repr__(self):
        return "PointerType(%r)" % self.target


class StructField:
    """A named field with its type and declaration order."""

    __slots__ = ("name", "type", "index")

    def __init__(self, name, ctype, index):
        self.name = name
        self.type = ctype
        self.index = index

    def __repr__(self):
        return "StructField(%r, %r)" % (self.name, self.type)


class StructType(CType):
    """A (possibly incomplete) struct.

    Struct types are interned by tag name in the parser's environment, so
    identity comparison on the tag suffices for type equality; this also
    allows self-referential structs (``struct cell { struct cell *next; }``).
    """

    __slots__ = ("tag", "fields", "_field_map")

    def __init__(self, tag):
        self.tag = tag
        self.fields = None  # None while incomplete
        self._field_map = None

    @property
    def is_complete(self):
        return self.fields is not None

    def define(self, fields):
        if self.is_complete:
            raise TypeError_("redefinition of struct %s" % self.tag)
        self.fields = list(fields)
        self._field_map = {field.name: field for field in self.fields}

    def field(self, name):
        if not self.is_complete:
            raise TypeError_("access into incomplete struct %s" % self.tag)
        if name not in self._field_map:
            raise TypeError_("struct %s has no field %r" % (self.tag, name))
        return self._field_map[name]

    def has_field(self, name):
        return self.is_complete and name in self._field_map

    def is_struct(self):
        return True

    def sizeof(self):
        if not self.is_complete:
            raise TypeError_("sizeof incomplete struct %s" % self.tag)
        return sum(field.type.sizeof() for field in self.fields)

    def __eq__(self, other):
        if not isinstance(other, StructType):
            return NotImplemented if not isinstance(other, CType) else False
        return self.tag == other.tag

    def __hash__(self):
        return hash(("StructType", self.tag))

    def __str__(self):
        return "struct %s" % self.tag

    def __repr__(self):
        return "StructType(%r)" % self.tag


class ArrayType(CType):
    __slots__ = ("element", "length")

    def __init__(self, element, length=None):
        self.element = element
        self.length = length

    def is_array(self):
        return True

    def sizeof(self):
        if self.length is None:
            raise TypeError_("sizeof array of unknown length")
        return self.element.sizeof() * self.length

    def decay(self):
        """The pointer type an array converts to in expression contexts."""
        return PointerType(self.element)

    def __eq__(self, other):
        if not isinstance(other, ArrayType):
            return NotImplemented if not isinstance(other, CType) else False
        return self.element == other.element

    def __hash__(self):
        return hash("ArrayType")

    def __str__(self):
        return "%s[%s]" % (self.element, "" if self.length is None else self.length)

    def __repr__(self):
        return "ArrayType(%r, %r)" % (self.element, self.length)


class FunctionType(CType):
    __slots__ = ("ret", "params", "variadic")

    def __init__(self, ret, params, variadic=False):
        self.ret = ret
        self.params = list(params)
        self.variadic = variadic

    def is_function(self):
        return True

    def __eq__(self, other):
        if not isinstance(other, FunctionType):
            return NotImplemented if not isinstance(other, CType) else False
        return (
            self.ret == other.ret
            and len(self.params) == len(other.params)
            and all(a == b for a, b in zip(self.params, other.params))
        )

    def __hash__(self):
        return hash(("FunctionType", len(self.params)))

    def __str__(self):
        return "%s(%s)" % (self.ret, ", ".join(str(p) for p in self.params))

    def __repr__(self):
        return "FunctionType(%r, %r)" % (self.ret, self.params)


INT = IntType("int")
CHAR = IntType("char")
LONG = IntType("long")
BOOL = IntType("bool")
VOID = VoidType()
VOID_PTR = PointerType(VOID)


def pointer_to(ctype):
    return PointerType(ctype)


def decay(ctype):
    """Array-to-pointer decay for expression contexts."""
    if ctype.is_array():
        return ctype.decay()
    return ctype


def assignable(dst, src):
    """Whether a value of type ``src`` may be assigned to a ``dst`` lvalue."""
    dst = decay(dst)
    src = decay(src)
    if dst == src:
        return True
    # The NULL constant (an integer) may flow into any pointer; pointers do
    # not implicitly convert back to integers.
    if dst.is_pointer() and src.is_integer():
        return True
    return False
