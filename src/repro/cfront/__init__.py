"""C front end for the predicate-abstraction toolkit.

This package implements the substrate the paper obtains from the Microsoft
AST toolkit: a lexer, parser, type checker, and lowering pass for a
substantial subset of C, producing the simple intermediate form that C2bp
consumes (side-effect-free expressions, function calls only at statement
level, no multiple pointer dereferences, if/goto + while control flow).
"""

from repro.cfront.errors import CFrontError, LexError, ParseError, TypeError_
from repro.cfront.lexer import Lexer, tokenize
from repro.cfront.parser import Parser, parse_program, parse_expression
from repro.cfront.simplify import simplify_program
from repro.cfront.typecheck import TypeChecker, typecheck_program
from repro.cfront.cfg import ControlFlowGraph, build_cfg
from repro.cfront.pretty import pretty_program, pretty_expr, pretty_stmt


def parse_c_program(source, name="<program>"):
    """Parse, type check, and lower C source into the intermediate form.

    This is the front door used by C2bp, Newton, and SLAM: the returned
    ``Program`` is in the simple intermediate form of Section 4 of the paper.
    """
    program = parse_program(source, name=name)
    typecheck_program(program)
    lowered = simplify_program(program)
    typecheck_program(lowered)
    # Stamp globally unique statement ids now, so every downstream phase
    # (C2bp, Bebop trace correspondence, Newton) sees the same numbering.
    from repro.cfront.cfg import build_program_cfgs

    build_program_cfgs(lowered)
    return lowered


__all__ = [
    "CFrontError",
    "ControlFlowGraph",
    "LexError",
    "Lexer",
    "ParseError",
    "Parser",
    "TypeChecker",
    "TypeError_",
    "build_cfg",
    "parse_c_program",
    "parse_expression",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "simplify_program",
    "tokenize",
    "typecheck_program",
]
