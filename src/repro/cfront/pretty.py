"""Pretty printer for the C subset, producing re-parseable source."""

from repro.cfront import cast as C

# Precedence table used to decide where parentheses are needed.
_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PREC = 11
_POSTFIX_PREC = 12


def pretty_expr(expr, parent_prec=0):
    """Render ``expr`` as C source text."""
    if isinstance(expr, C.Id):
        return expr.name
    if isinstance(expr, C.IntLit):
        return str(expr.value)
    if isinstance(expr, C.Unknown):
        return "*"
    if isinstance(expr, C.BinOp):
        prec = _PREC[expr.op]
        text = "%s %s %s" % (
            pretty_expr(expr.left, prec),
            expr.op,
            pretty_expr(expr.right, prec + 1),
        )
        if prec < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, C.UnOp):
        inner = pretty_expr(expr.operand, _UNARY_PREC)
        if inner.startswith(expr.op):
            # Avoid token fusion: "- -a" must not print as "--a".
            inner = "(%s)" % pretty_expr(expr.operand)
        text = "%s%s" % (expr.op, inner)
        if _UNARY_PREC < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, C.Deref):
        text = "*%s" % pretty_expr(expr.pointer, _UNARY_PREC)
        if _UNARY_PREC < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, C.AddrOf):
        inner = pretty_expr(expr.operand, _UNARY_PREC)
        if inner.startswith("&"):
            inner = "(%s)" % pretty_expr(expr.operand)
        text = "&%s" % inner
        if _UNARY_PREC < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, C.FieldAccess):
        # Prefer the arrow form for (*p).f.
        if isinstance(expr.base, C.Deref):
            return "%s->%s" % (pretty_expr(expr.base.pointer, _POSTFIX_PREC), expr.field)
        return "%s.%s" % (pretty_expr(expr.base, _POSTFIX_PREC), expr.field)
    if isinstance(expr, C.Index):
        return "%s[%s]" % (pretty_expr(expr.base, _POSTFIX_PREC), pretty_expr(expr.index))
    if isinstance(expr, C.Call):
        return "%s(%s)" % (expr.name, ", ".join(pretty_expr(a) for a in expr.args))
    if isinstance(expr, C.Cond):
        text = "%s ? %s : %s" % (
            pretty_expr(expr.cond, 1),
            pretty_expr(expr.then_expr),
            pretty_expr(expr.else_expr),
        )
        if parent_prec > 0:
            return "(%s)" % text
        return text
    if isinstance(expr, C.Cast):
        return "(%s)%s" % (expr.to_type, pretty_expr(expr.operand, _UNARY_PREC))
    raise AssertionError("unhandled expression node %r" % type(expr).__name__)


def _indent(depth):
    return "    " * depth


def pretty_stmt(stmt, depth=0):
    """Render one statement (with trailing newline)."""
    pad = _indent(depth)
    prefix = "".join("%s%s:\n" % (pad, label) for label in stmt.labels)

    if isinstance(stmt, C.Skip):
        body = "%s;\n" % pad
    elif isinstance(stmt, C.Assign):
        body = "%s%s = %s;\n" % (pad, pretty_expr(stmt.lhs), pretty_expr(stmt.rhs))
    elif isinstance(stmt, C.CallStmt):
        call = "%s(%s)" % (stmt.name, ", ".join(pretty_expr(a) for a in stmt.args))
        if stmt.lhs is not None:
            body = "%s%s = %s;\n" % (pad, pretty_expr(stmt.lhs), call)
        else:
            body = "%s%s;\n" % (pad, call)
    elif isinstance(stmt, C.If):
        body = "%sif (%s) {\n%s%s}" % (
            pad,
            pretty_expr(stmt.cond),
            pretty_body(stmt.then_body, depth + 1),
            pad,
        )
        if stmt.else_body:
            body += " else {\n%s%s}" % (pretty_body(stmt.else_body, depth + 1), pad)
        body += "\n"
    elif isinstance(stmt, C.While):
        body = "%swhile (%s) {\n%s%s}\n" % (
            pad,
            pretty_expr(stmt.cond),
            pretty_body(stmt.body, depth + 1),
            pad,
        )
    elif isinstance(stmt, C.DoWhile):
        body = "%sdo {\n%s%s} while (%s);\n" % (
            pad,
            pretty_body(stmt.body, depth + 1),
            pad,
            pretty_expr(stmt.cond),
        )
    elif isinstance(stmt, C.For):
        init = "; ".join(pretty_stmt(s, 0).strip().rstrip(";") for s in stmt.init)
        step = "; ".join(pretty_stmt(s, 0).strip().rstrip(";") for s in stmt.step)
        cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
        body = "%sfor (%s; %s; %s) {\n%s%s}\n" % (
            pad,
            init,
            cond,
            step,
            pretty_body(stmt.body, depth + 1),
            pad,
        )
    elif isinstance(stmt, C.Goto):
        body = "%sgoto %s;\n" % (pad, stmt.label)
    elif isinstance(stmt, C.Break):
        body = "%sbreak;\n" % pad
    elif isinstance(stmt, C.Continue):
        body = "%scontinue;\n" % pad
    elif isinstance(stmt, C.Return):
        if stmt.value is None:
            body = "%sreturn;\n" % pad
        else:
            body = "%sreturn %s;\n" % (pad, pretty_expr(stmt.value))
    elif isinstance(stmt, C.Assert):
        body = "%sassert(%s);\n" % (pad, pretty_expr(stmt.cond))
    elif isinstance(stmt, C.Assume):
        body = "%sassume(%s);\n" % (pad, pretty_expr(stmt.cond))
    elif isinstance(stmt, C.ExprStmt):
        body = "%s%s;\n" % (pad, pretty_expr(stmt.expr))
    else:
        raise AssertionError("unhandled statement node %r" % type(stmt).__name__)
    return prefix + body


def pretty_body(stmts, depth):
    return "".join(pretty_stmt(stmt, depth) for stmt in stmts)


def _pretty_decl(decl):
    ctype = decl.type
    suffix = ""
    while ctype.is_array():
        suffix += "[%s]" % ("" if ctype.length is None else ctype.length)
        ctype = ctype.element
    stars = ""
    while ctype.is_pointer():
        stars += "*"
        ctype = ctype.target
    text = "%s %s%s%s" % (ctype, stars, decl.name, suffix)
    if decl.init is not None:
        text += " = %s" % pretty_expr(decl.init)
    return text


def pretty_program(program):
    """Render a whole program as compilable C subset source."""
    parts = []
    for struct in program.structs.values():
        if struct.is_complete:
            lines = ["struct %s {" % struct.tag]
            for field in struct.fields:
                lines.append("    %s;" % _pretty_decl(C.VarDecl(field.name, field.type)))
            lines.append("};\n")
            parts.append("\n".join(lines))
    for decl in program.globals:
        parts.append("%s;\n" % _pretty_decl(decl))
    for func in program.functions.values():
        params = ", ".join(_pretty_decl(p) for p in func.params)
        header = "%s %s(%s)" % (func.ret_type, func.name, params or "void")
        if not func.is_defined:
            parts.append("%s;\n" % header)
            continue
        lines = ["%s {" % header]
        for decl in func.locals:
            lines.append("    %s;" % _pretty_decl(decl))
        lines.append(pretty_body(func.body, 1).rstrip("\n"))
        lines.append("}\n")
        parts.append("\n".join(lines))
    return "\n".join(parts)
