"""A concrete interpreter for the lowered C subset.

The interpreter exists to *test* the toolkit, not to run programs fast:

- the soundness property tests execute a C program concretely, record its
  trace, and replay the trace in the abstracted boolean program (Section 4.6
  of the paper: every feasible C path must be feasible in ``BP(P, E)``);
- Newton's infeasibility verdicts are cross-checked against concrete
  execution on small inputs.

Memory follows the paper's logical model: cells hold mathematical integers,
pointers (references to other cells), structs (field maps), or arrays.
Pointer arithmetic ``p + i`` yields ``p``.
"""

from repro.cfront import cast as C
from repro.cfront.cfg import BRANCH, ENTRY, EXIT, STMT, build_program_cfgs


class InterpError(Exception):
    """An execution error (null dereference, missing function, ...)."""


class AssertionFailure(InterpError):
    """A failing ``assert`` was reached; carries the trace so far."""

    def __init__(self, stmt, trace):
        super().__init__("assertion failed at %s" % (stmt.pos,))
        self.stmt = stmt
        self.trace = trace


class StepLimitExceeded(InterpError):
    """The step budget ran out (used to bound possibly-diverging tests)."""


class AssumeViolated(Exception):
    """Raised internally when an ``assume`` condition is false: the current
    execution is simply not a trace of the program."""


class Cell:
    """One mutable storage location."""

    __slots__ = ("value", "name")

    def __init__(self, value=0, name=None):
        self.value = value
        self.name = name

    def __repr__(self):
        return "Cell(%r)" % (self.value,)


class StructVal:
    """A struct object; field cells are created lazily so heap objects can
    be allocated without static type information."""

    __slots__ = ("fields",)

    def __init__(self):
        self.fields = {}

    def field_cell(self, name):
        if name not in self.fields:
            self.fields[name] = Cell(0, name)
        return self.fields[name]

    def __repr__(self):
        return "StructVal(%r)" % ({k: v.value for k, v in self.fields.items()},)


class ArrayVal:
    """An array object with lazily-created element cells."""

    __slots__ = ("cells", "length")

    def __init__(self, length=None):
        self.cells = {}
        self.length = length

    def element_cell(self, index):
        if index not in self.cells:
            self.cells[index] = Cell(0, "[%d]" % index)
        return self.cells[index]

    def __repr__(self):
        return "ArrayVal(%r)" % ({k: v.value for k, v in self.cells.items()},)


class TraceEvent:
    """One executed statement (or decided branch) on a trace."""

    __slots__ = ("func_name", "stmt", "kind", "outcome")

    def __init__(self, func_name, stmt, kind, outcome=None):
        self.func_name = func_name
        self.stmt = stmt
        self.kind = kind  # "stmt" or "branch"
        self.outcome = outcome  # True/False for branches

    def __repr__(self):
        extra = "" if self.outcome is None else " %s" % self.outcome
        return "<%s sid=%s%s>" % (self.kind, self.stmt.sid, extra)


def truthy(value):
    """C truth: nonzero integers and non-null pointers are true."""
    if isinstance(value, int):
        return value != 0
    return value is not None  # cells / objects are non-null


class Interpreter:
    """Executes one call into a lowered program."""

    def __init__(
        self,
        program,
        extern_oracle=None,
        max_steps=100_000,
        observer=None,
        wrap_width=None,
    ):
        self.program = program
        self.cfgs = build_program_cfgs(program)
        self.max_steps = max_steps
        # When set, integers behave as ``wrap_width``-bit two's-complement
        # values (every arithmetic result, literal, oracle value, and call
        # argument wraps) — the semantics the bounded model checker encodes.
        # The default ``None`` keeps the paper's mathematical integers.
        self.wrap_width = wrap_width
        # extern_oracle(name, args) supplies results for undefined functions
        # and for Unknown expressions (called with name "*").
        self.extern_oracle = extern_oracle or (lambda name, args: 0)
        # observer(phase, func_name, stmt, env) is called with phase "entry"
        # once per activation, and "pre"/"post" around each executed
        # statement or branch (the soundness harness snapshots states here).
        self.observer = observer
        self.globals = {}
        self.trace = []
        self._steps = 0
        for decl in program.globals:
            self.globals[decl.name] = self._fresh_cell(decl.type, decl.name)
        for decl in program.globals:
            if decl.init is not None:
                self.globals[decl.name].value = self.eval_expr(decl.init, {})

    # -- storage ------------------------------------------------------------

    def _wrap(self, value):
        """Truncate an integer to ``wrap_width`` bits (two's complement);
        the identity on pointers/objects and in unbounded mode."""
        if self.wrap_width is None or not isinstance(value, int):
            return value
        width = self.wrap_width
        value &= (1 << width) - 1
        if value >= 1 << (width - 1):
            value -= 1 << width
        return value

    def _fresh_cell(self, ctype, name):
        if ctype.is_struct():
            return Cell(StructVal(), name)
        if ctype.is_array():
            return Cell(ArrayVal(ctype.length), name)
        return Cell(0, name)

    def alloc_struct(self):
        """Allocate a heap struct object; returns a pointer (its cell)."""
        return Cell(StructVal(), "<heap>")

    def make_list(self, values, value_field="val", next_field="next"):
        """Build a singly linked list of struct cells; returns the head
        pointer value (a Cell or 0 for the empty list)."""
        head = 0
        for value in reversed(values):
            node = self.alloc_struct()
            node.value.field_cell(value_field).value = value
            node.value.field_cell(next_field).value = head
            head = node
        return head

    def read_list(self, head, value_field="val", next_field="next", limit=10_000):
        """Read back a linked list built with :meth:`make_list`."""
        values = []
        seen = set()
        while isinstance(head, Cell):
            if id(head) in seen or len(values) > limit:
                raise InterpError("cyclic or overlong list")
            seen.add(id(head))
            struct = head.value
            values.append(struct.field_cell(value_field).value)
            head = struct.field_cell(next_field).value
        return values

    # -- lvalue / rvalue evaluation -------------------------------------------

    def lvalue_cell(self, expr, env):
        """The cell denoted by an lvalue expression."""
        if isinstance(expr, C.Id):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.globals:
                return self.globals[expr.name]
            raise InterpError("unbound variable %r" % expr.name)
        if isinstance(expr, C.Deref):
            pointer = self.eval_expr(expr.pointer, env)
            if not isinstance(pointer, Cell):
                raise InterpError("null or invalid pointer dereference at %s" % (expr.pos,))
            return pointer
        if isinstance(expr, C.FieldAccess):
            base_cell = self.lvalue_cell(expr.base, env)
            struct = base_cell.value
            if not isinstance(struct, StructVal):
                if struct == 0:
                    struct = StructVal()
                    base_cell.value = struct
                else:
                    raise InterpError("field access into non-struct at %s" % (expr.pos,))
            return struct.field_cell(expr.field)
        if isinstance(expr, C.Index):
            base = self.eval_expr(expr.base, env)
            index = self.eval_expr(expr.index, env)
            if isinstance(base, Cell):
                array = base.value
                if not isinstance(array, ArrayVal):
                    if array == 0:
                        array = ArrayVal()
                        base.value = array
                    else:
                        raise InterpError("indexing a non-array at %s" % (expr.pos,))
                return array.element_cell(index)
            raise InterpError("indexing through a null pointer at %s" % (expr.pos,))
        if isinstance(expr, C.Cast):
            return self.lvalue_cell(expr.operand, env)
        raise InterpError("not an lvalue: %r" % (expr,))

    def eval_expr(self, expr, env):
        if isinstance(expr, C.IntLit):
            return self._wrap(expr.value)
        if isinstance(expr, C.Unknown):
            return self._wrap(self.extern_oracle("*", []))
        if isinstance(expr, C.Id):
            cell = self.lvalue_cell(expr, env)
            # Arrays decay to a pointer to the array object.
            if isinstance(cell.value, ArrayVal):
                return cell
            return cell.value
        if isinstance(expr, C.AddrOf):
            return self.lvalue_cell(expr.operand, env)
        if isinstance(expr, (C.Deref, C.FieldAccess, C.Index)):
            cell = self.lvalue_cell(expr, env)
            if isinstance(cell.value, (ArrayVal, StructVal)):
                return cell
            return cell.value
        if isinstance(expr, C.Cast):
            return self.eval_expr(expr.operand, env)
        if isinstance(expr, C.UnOp):
            value = self.eval_expr(expr.operand, env)
            if expr.op == "!":
                return 0 if truthy(value) else 1
            if not isinstance(value, int):
                raise InterpError("arithmetic on a pointer at %s" % (expr.pos,))
            if expr.op == "-":
                return self._wrap(-value)
            if expr.op == "+":
                return value
            if expr.op == "~":
                return self._wrap(~value)
            raise AssertionError(expr.op)
        if isinstance(expr, C.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, C.Cond):
            if truthy(self.eval_expr(expr.cond, env)):
                return self.eval_expr(expr.then_expr, env)
            return self.eval_expr(expr.else_expr, env)
        if isinstance(expr, C.Call):
            return self.call_function(expr.name, [self.eval_expr(a, env) for a in expr.args])
        raise AssertionError("unhandled expression %r" % type(expr).__name__)

    def _eval_binop(self, expr, env):
        op = expr.op
        if op == "&&":
            if not truthy(self.eval_expr(expr.left, env)):
                return 0
            return 1 if truthy(self.eval_expr(expr.right, env)) else 0
        if op == "||":
            if truthy(self.eval_expr(expr.left, env)):
                return 1
            return 1 if truthy(self.eval_expr(expr.right, env)) else 0
        left = self.eval_expr(expr.left, env)
        right = self.eval_expr(expr.right, env)
        if op in ("==", "!="):
            if isinstance(left, Cell) or isinstance(right, Cell):
                equal = left is right
            else:
                equal = left == right
            return (1 if equal else 0) if op == "==" else (0 if equal else 1)
        if op in ("+", "-") and (isinstance(left, Cell) or isinstance(right, Cell)):
            # Logical memory model: pointer arithmetic stays on the object.
            return left if isinstance(left, Cell) else right
        if isinstance(left, Cell) or isinstance(right, Cell):
            raise InterpError("unsupported pointer operation %r at %s" % (op, expr.pos))
        if op == "+":
            return self._wrap(left + right)
        if op == "-":
            return self._wrap(left - right)
        if op == "*":
            return self._wrap(left * right)
        if op == "/":
            if right == 0:
                raise InterpError("division by zero at %s" % (expr.pos,))
            q = abs(left) // abs(right)
            return self._wrap(q if (left >= 0) == (right >= 0) else -q)
        if op == "%":
            if right == 0:
                raise InterpError("modulo by zero at %s" % (expr.pos,))
            return self._wrap(left - self._c_div(left, right) * right)
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op in ("<<", ">>"):
            return self._shift(op, left, right, expr.pos)
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        raise AssertionError(op)

    def _shift(self, op, left, right, pos):
        if self.wrap_width is not None:
            # The shift amount is read as an unsigned wrap_width-bit value
            # (the bit-blasted semantics): amounts at or beyond the width
            # shift everything out — zero for <<, the sign fill for >>.
            amount = right & ((1 << self.wrap_width) - 1)
            if amount >= self.wrap_width:
                return -1 if (op == ">>" and left < 0) else 0
            if op == "<<":
                return self._wrap(left << amount)
            return self._wrap(left >> amount)
        if right < 0:
            raise InterpError("negative shift amount at %s" % (pos,))
        return left << right if op == "<<" else left >> right

    @staticmethod
    def _c_div(a, b):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q

    # -- execution -------------------------------------------------------------

    def call_function(self, name, args):
        func = self.program.functions.get(name)
        if func is None or not func.is_defined:
            return self._wrap(self.extern_oracle(name, args))
        cfg = self.cfgs[name]
        env = {}
        for param, arg in zip(func.params, args):
            env[param.name] = Cell(self._wrap(arg), param.name)
        for decl in func.locals:
            env[decl.name] = self._fresh_cell(decl.type, decl.name)
        if self.observer is not None:
            self.observer("entry", name, None, env)
        node = cfg.entry
        return_value = 0
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise StepLimitExceeded("exceeded %d steps" % self.max_steps)
            if node.kind == ENTRY:
                node = node.edges[0].target
                continue
            if node.kind == EXIT:
                return return_value
            if node.kind == BRANCH:
                if self.observer is not None:
                    self.observer("pre", name, node.stmt, env)
                outcome = truthy(self.eval_expr(node.cond, env))
                self.trace.append(TraceEvent(name, node.stmt, "branch", outcome))
                if self.observer is not None:
                    self.observer("post", name, node.stmt, env)
                node = node.successor(assume=outcome)
                continue
            stmt = node.stmt
            if self.observer is not None:
                self.observer("pre", name, stmt, env)
            if isinstance(stmt, C.Return):
                self.trace.append(TraceEvent(name, stmt, "stmt"))
                if stmt.value is not None:
                    return_value = self.eval_expr(stmt.value, env)
                if self.observer is not None:
                    self.observer("post", name, stmt, env)
                node = node.successor()
                continue
            self.trace.append(TraceEvent(name, stmt, "stmt"))
            if isinstance(stmt, (C.Skip, C.Goto)):
                pass
            elif isinstance(stmt, C.Assign):
                value = self.eval_expr(stmt.rhs, env)
                self.lvalue_cell(stmt.lhs, env).value = value
            elif isinstance(stmt, C.CallStmt):
                result = self.call_function(
                    stmt.name, [self.eval_expr(a, env) for a in stmt.args]
                )
                if stmt.lhs is not None:
                    self.lvalue_cell(stmt.lhs, env).value = result
            elif isinstance(stmt, C.Assert):
                if not truthy(self.eval_expr(stmt.cond, env)):
                    raise AssertionFailure(stmt, list(self.trace))
            elif isinstance(stmt, C.Assume):
                if not truthy(self.eval_expr(stmt.cond, env)):
                    raise AssumeViolated()
            else:
                raise AssertionError("unhandled statement %r" % type(stmt).__name__)
            if self.observer is not None:
                self.observer("post", name, stmt, env)
            node = node.successor()

    def run(self, entry="main", args=()):
        """Execute ``entry`` and return (result, trace)."""
        result = self.call_function(entry, list(args))
        return result, self.trace
