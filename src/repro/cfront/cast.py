"""Abstract syntax for the C subset.

Expressions are immutable values with structural equality and hashing; the
predicate-abstraction core relies on this to use expressions as dictionary
keys (prover cache, predicate maps) and to perform syntactic substitution
for weakest preconditions.

Statements are mutable nodes; the lowering pass rewrites them in place or
replaces them wholesale.  Every statement carries a source position and,
after CFG construction, a stable integer id.
"""

from repro.cfront.errors import UNKNOWN_POS

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

ARITH_OPS = frozenset(["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"])
REL_OPS = frozenset(["<", "<=", ">", ">=", "==", "!="])
LOGIC_OPS = frozenset(["&&", "||"])
BINARY_OPS = ARITH_OPS | REL_OPS | LOGIC_OPS
UNARY_OPS = frozenset(["-", "+", "!", "~"])

NEGATED_REL = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}
SWAPPED_REL = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


class Expr:
    """Base class for expressions; subclasses define ``_key()``."""

    __slots__ = ("_hash", "type", "pos")

    def __init__(self, pos=None):
        self._hash = None
        self.type = None  # filled in by the type checker
        self.pos = pos or UNKNOWN_POS

    def _key(self):
        raise NotImplementedError

    def children(self):
        """Direct sub-expressions, left to right."""
        return ()

    def rebuild(self, children):
        """A copy of this node with ``children`` as its sub-expressions.

        The static type annotation is preserved, since substitution and
        lowering never change a node's type.
        """
        node = self._rebuild(children)
        if node is not self and node.type is None:
            node.type = self.type
        return node

    def _rebuild(self, children):
        raise NotImplementedError

    def is_lvalue(self):
        return False

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self):
        from repro.cfront.pretty import pretty_expr

        return "<%s %s>" % (type(self).__name__, pretty_expr(self))


class Id(Expr):
    """A variable reference."""

    __slots__ = ("name",)

    def __init__(self, name, pos=None):
        super().__init__(pos)
        self.name = name

    def _key(self):
        return ("Id", self.name)

    def _rebuild(self, children):
        return self

    def is_lvalue(self):
        return True


class IntLit(Expr):
    """An integer constant; NULL is represented as ``IntLit(0)``."""

    __slots__ = ("value",)

    def __init__(self, value, pos=None):
        super().__init__(pos)
        self.value = value

    def _key(self):
        return ("IntLit", self.value)

    def _rebuild(self, children):
        return self


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, pos=None):
        assert op in BINARY_OPS, op
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right

    def _key(self):
        return ("BinOp", self.op, self.left._key(), self.right._key())

    def children(self):
        return (self.left, self.right)

    def _rebuild(self, children):
        left, right = children
        return BinOp(self.op, left, right, self.pos)


class UnOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, pos=None):
        assert op in UNARY_OPS, op
        super().__init__(pos)
        self.op = op
        self.operand = operand

    def _key(self):
        return ("UnOp", self.op, self.operand._key())

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        (operand,) = children
        return UnOp(self.op, operand, self.pos)


class Deref(Expr):
    """``*e``.  ``e->f`` is normalized to ``FieldAccess(Deref(e), f)``."""

    __slots__ = ("pointer",)

    def __init__(self, pointer, pos=None):
        super().__init__(pos)
        self.pointer = pointer

    def _key(self):
        return ("Deref", self.pointer._key())

    def children(self):
        return (self.pointer,)

    def _rebuild(self, children):
        (pointer,) = children
        return Deref(pointer, self.pos)

    def is_lvalue(self):
        return True


class AddrOf(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand, pos=None):
        super().__init__(pos)
        self.operand = operand

    def _key(self):
        return ("AddrOf", self.operand._key())

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        (operand,) = children
        return AddrOf(operand, self.pos)


class FieldAccess(Expr):
    """``base.field`` where ``base`` has struct type."""

    __slots__ = ("base", "field")

    def __init__(self, base, field, pos=None):
        super().__init__(pos)
        self.base = base
        self.field = field

    def _key(self):
        return ("FieldAccess", self.base._key(), self.field)

    def children(self):
        return (self.base,)

    def _rebuild(self, children):
        (base,) = children
        return FieldAccess(base, self.field, self.pos)

    def is_lvalue(self):
        return True


class Index(Expr):
    """``base[index]``; under the logical memory model the element object."""

    __slots__ = ("base", "index")

    def __init__(self, base, index, pos=None):
        super().__init__(pos)
        self.base = base
        self.index = index

    def _key(self):
        return ("Index", self.base._key(), self.index._key())

    def children(self):
        return (self.base, self.index)

    def _rebuild(self, children):
        base, index = children
        return Index(base, index, self.pos)

    def is_lvalue(self):
        return True


class Call(Expr):
    """A function call.  After lowering, calls appear only at statement level."""

    __slots__ = ("name", "args")

    def __init__(self, name, args, pos=None):
        super().__init__(pos)
        self.name = name
        self.args = tuple(args)

    def _key(self):
        return ("Call", self.name) + tuple(a._key() for a in self.args)

    def children(self):
        return self.args

    def _rebuild(self, children):
        return Call(self.name, children, self.pos)


class Cond(Expr):
    """The ternary ``c ? t : f``; eliminated by lowering."""

    __slots__ = ("cond", "then_expr", "else_expr")

    def __init__(self, cond, then_expr, else_expr, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then_expr = then_expr
        self.else_expr = else_expr

    def _key(self):
        return ("Cond", self.cond._key(), self.then_expr._key(), self.else_expr._key())

    def children(self):
        return (self.cond, self.then_expr, self.else_expr)

    def _rebuild(self, children):
        cond, then_expr, else_expr = children
        return Cond(cond, then_expr, else_expr, self.pos)


class Cast(Expr):
    """An explicit cast; a no-op under the logical memory model."""

    __slots__ = ("to_type", "operand")

    def __init__(self, to_type, operand, pos=None):
        super().__init__(pos)
        self.to_type = to_type
        self.operand = operand

    def _key(self):
        return ("Cast", str(self.to_type), self.operand._key())

    def children(self):
        return (self.operand,)

    def _rebuild(self, children):
        (operand,) = children
        return Cast(self.to_type, operand, self.pos)

    def is_lvalue(self):
        return self.operand.is_lvalue()


class Unknown(Expr):
    """A nondeterministic value, written ``*`` in conditions.

    Produced by SLAM instrumentation and by the corpus of driver-like
    programs to model environment input (e.g. results of reading hardware
    registers).  ``unknowns`` are distinguished by an id so that two
    occurrences are not considered equal.
    """

    __slots__ = ("uid",)

    def __init__(self, uid=0, pos=None):
        super().__init__(pos)
        self.uid = uid

    def _key(self):
        return ("Unknown", self.uid)

    def _rebuild(self, children):
        return self


NULL = IntLit(0)
TRUE = IntLit(1)
FALSE = IntLit(0)


def arrow(base, field, pos=None):
    """Build ``base->field`` in its normalized ``(*base).field`` form."""
    return FieldAccess(Deref(base, pos), field, pos)


def negate(expr):
    """Logical negation with relational-operator folding.

    ``negate(x < y)`` yields ``x >= y`` rather than ``!(x < y)`` so that
    negated predicates stay inside the prover's atom language.
    """
    if isinstance(expr, UnOp) and expr.op == "!":
        return expr.operand
    if isinstance(expr, BinOp) and expr.op in NEGATED_REL:
        return BinOp(NEGATED_REL[expr.op], expr.left, expr.right, expr.pos)
    if isinstance(expr, BinOp) and expr.op == "&&":
        return BinOp("||", negate(expr.left), negate(expr.right), expr.pos)
    if isinstance(expr, BinOp) and expr.op == "||":
        return BinOp("&&", negate(expr.left), negate(expr.right), expr.pos)
    if isinstance(expr, IntLit):
        return IntLit(0 if expr.value else 1, expr.pos)
    return UnOp("!", expr, expr.pos)


def conjoin(exprs):
    """Conjunction of a sequence of expressions (``1`` if empty)."""
    exprs = list(exprs)
    if not exprs:
        return IntLit(1)
    result = exprs[0]
    for expr in exprs[1:]:
        result = BinOp("&&", result, expr)
    return result


def disjoin(exprs):
    """Disjunction of a sequence of expressions (``0`` if empty)."""
    exprs = list(exprs)
    if not exprs:
        return IntLit(0)
    result = exprs[0]
    for expr in exprs[1:]:
        result = BinOp("||", result, expr)
    return result


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statements in the intermediate form."""

    __slots__ = ("pos", "sid", "labels")

    def __init__(self, pos=None):
        self.pos = pos or UNKNOWN_POS
        self.sid = None  # assigned by the CFG builder
        self.labels = []  # goto labels attached to this statement

    def substatements(self):
        """Nested statement lists (for If/While); flat statements return ()."""
        return ()

    def __repr__(self):
        from repro.cfront.pretty import pretty_stmt

        return "<%s %s>" % (type(self).__name__, pretty_stmt(self).strip())


class Skip(Stmt):
    """The no-op statement (also the target of bare labels)."""

    __slots__ = ()


class Assign(Stmt):
    """``lhs = rhs;`` where ``rhs`` contains no calls (after lowering)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs, pos=None):
        super().__init__(pos)
        self.lhs = lhs
        self.rhs = rhs


class CallStmt(Stmt):
    """``lhs = name(args);`` or ``name(args);`` (``lhs`` may be None)."""

    __slots__ = ("lhs", "name", "args")

    def __init__(self, lhs, name, args, pos=None):
        super().__init__(pos)
        self.lhs = lhs
        self.name = name
        self.args = list(args)


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body, else_body=None, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.then_body = list(then_body)
        self.else_body = list(else_body or [])

    def substatements(self):
        return (self.then_body, self.else_body)


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.body = list(body)

    def substatements(self):
        return (self.body,)


class DoWhile(Stmt):
    """Parsed form only; lowering rewrites it into While + duplicate body."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body, pos=None):
        super().__init__(pos)
        self.cond = cond
        self.body = list(body)

    def substatements(self):
        return (self.body,)


class For(Stmt):
    """Parsed form only; lowering rewrites it into init + While."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, pos=None):
        super().__init__(pos)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = list(body)

    def substatements(self):
        return (self.body,)


class Goto(Stmt):
    __slots__ = ("label",)

    def __init__(self, label, pos=None):
        super().__init__(pos)
        self.label = label


class Break(Stmt):
    """Parsed form only; lowered to a goto."""

    __slots__ = ()


class Continue(Stmt):
    """Parsed form only; lowered to a goto."""

    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value=None, pos=None):
        super().__init__(pos)
        self.value = value


class Assert(Stmt):
    """``assert(e);`` — SLAM checks whether a failing assert is reachable."""

    __slots__ = ("cond",)

    def __init__(self, cond, pos=None):
        super().__init__(pos)
        self.cond = cond


class Assume(Stmt):
    """``assume(e);`` — executions where ``e`` is false are ignored."""

    __slots__ = ("cond",)

    def __init__(self, cond, pos=None):
        super().__init__(pos)
        self.cond = cond


class ExprStmt(Stmt):
    """An expression evaluated for side effects; eliminated by lowering."""

    __slots__ = ("expr",)

    def __init__(self, expr, pos=None):
        super().__init__(pos)
        self.expr = expr


# ---------------------------------------------------------------------------
# Declarations / program structure
# ---------------------------------------------------------------------------


class VarDecl:
    """A global or local variable declaration."""

    __slots__ = ("name", "type", "init", "pos", "address_taken")

    def __init__(self, name, ctype, init=None, pos=None):
        self.name = name
        self.type = ctype
        self.init = init
        self.pos = pos or UNKNOWN_POS
        self.address_taken = False  # filled in by the points-to analysis

    def __repr__(self):
        return "VarDecl(%r, %s)" % (self.name, self.type)


class Function:
    """A function definition (or extern declaration when ``body`` is None)."""

    __slots__ = ("name", "ret_type", "params", "locals", "body", "pos", "return_var")

    def __init__(self, name, ret_type, params, locals_, body, pos=None):
        self.name = name
        self.ret_type = ret_type
        self.params = list(params)
        self.locals = list(locals_)
        self.body = body  # list of Stmt, or None for extern declarations
        self.pos = pos or UNKNOWN_POS
        # After lowering: the canonical single return variable's name, or
        # None for void functions.
        self.return_var = None

    @property
    def is_defined(self):
        return self.body is not None

    def param_names(self):
        return [p.name for p in self.params]

    def local_names(self):
        return [v.name for v in self.locals]

    def lookup_var(self, name):
        """The VarDecl for a parameter or local, or None."""
        for decl in self.params:
            if decl.name == name:
                return decl
        for decl in self.locals:
            if decl.name == name:
                return decl
        return None

    def __repr__(self):
        return "Function(%r)" % self.name


class Program:
    """A complete translation unit in (or before) the intermediate form."""

    __slots__ = ("name", "structs", "globals", "functions", "typedefs", "protected_globals")

    def __init__(self, name="<program>"):
        self.name = name
        self.structs = {}  # tag -> StructType
        self.globals = []  # list of VarDecl
        self.functions = {}  # name -> Function (insertion ordered)
        self.typedefs = {}  # name -> CType
        # Globals no extern call can reach (SLAM instrumentation state);
        # extern-call havoc in C2bp leaves predicates over these alone.
        self.protected_globals = set()

    def global_names(self):
        return [decl.name for decl in self.globals]

    def lookup_global(self, name):
        for decl in self.globals:
            if decl.name == name:
                return decl
        return None

    def lookup_var(self, func_name, var_name):
        """Resolve a variable name in a function's scope (locals shadow
        globals), returning its VarDecl or None."""
        func = self.functions.get(func_name)
        if func is not None:
            decl = func.lookup_var(var_name)
            if decl is not None:
                return decl
        return self.lookup_global(var_name)

    def defined_functions(self):
        return [f for f in self.functions.values() if f.is_defined]

    def statement_count(self):
        """Number of statements in all defined functions (a proxy for the
        paper's 'lines' column)."""
        total = 0

        def count(stmts):
            nonlocal total
            for stmt in stmts:
                total += 1
                for sub in stmt.substatements():
                    count(sub)

        for func in self.defined_functions():
            count(func.body)
        return total

    def __repr__(self):
        return "Program(%r, functions=%r)" % (self.name, list(self.functions))
