"""Hand-written lexer for the C subset.

Supports line and block comments, decimal/hex/octal integer literals,
character literals, string literals (used only for diagnostics), identifiers,
keywords, and the usual punctuators with maximal munch.
"""

from repro.cfront import tokens as T
from repro.cfront.errors import LexError, SourcePos

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

_SIMPLE_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class Lexer:
    """Tokenizes a source buffer on demand."""

    def __init__(self, source, source_name="<source>"):
        self._source = source
        self._source_name = source_name
        self._offset = 0
        self._line = 1
        self._column = 1

    def _pos(self):
        return SourcePos(self._source_name, self._line, self._column)

    def _peek(self, ahead=0):
        index = self._offset + ahead
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._offset >= len(self._source):
                return
            ch = self._source[self._offset]
            self._offset += 1
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1

    def _skip_whitespace_and_comments(self):
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._peek() == "":
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines are not interpreted; they are skipped so
                # that test inputs may carry #include-style headers.
                while self._peek() not in ("", "\n"):
                    self._advance()
            else:
                return

    def _lex_integer(self):
        pos = self._pos()
        start = self._offset
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hexadecimal literal", pos)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self._source[start : self._offset]
            value = int(text, 16)
        else:
            while self._peek() in _DIGITS:
                self._advance()
            text = self._source[start : self._offset]
            value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)
        # Consume (and ignore) integer suffixes.
        while self._peek() in ("u", "U", "l", "L"):
            self._advance()
            text = self._source[start : self._offset]
        if self._peek() in _IDENT_START:
            raise LexError("malformed integer literal %r" % text, pos)
        return T.Token(T.INTLIT, text, pos, value=value)

    def _lex_char(self):
        pos = self._pos()
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated character literal", pos)
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc not in _SIMPLE_ESCAPES:
                raise LexError("unsupported escape '\\%s'" % esc, pos)
            value = _SIMPLE_ESCAPES[esc]
            self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", pos)
        self._advance()
        return T.Token(T.CHARLIT, "'%s'" % chr(value) if 32 <= value < 127 else "'?'", pos, value=value)

    def _lex_string(self):
        pos = self._pos()
        self._advance()  # opening quote
        chars = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", pos)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc not in _SIMPLE_ESCAPES:
                    raise LexError("unsupported escape '\\%s'" % esc, pos)
                chars.append(chr(_SIMPLE_ESCAPES[esc]))
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return T.Token(T.STRINGLIT, '"%s"' % value, pos, value=value)

    def next_token(self):
        """Return the next token, or an EOF token at end of input."""
        self._skip_whitespace_and_comments()
        pos = self._pos()
        ch = self._peek()
        if ch == "":
            return T.Token(T.EOF, "", pos)
        if ch in _IDENT_START:
            start = self._offset
            while self._peek() in _IDENT_CONT:
                self._advance()
            text = self._source[start : self._offset]
            kind = T.KEYWORD if text in T.KEYWORDS else T.IDENT
            return T.Token(kind, text, pos)
        if ch in _DIGITS:
            return self._lex_integer()
        if ch == "'":
            return self._lex_char()
        if ch == '"':
            return self._lex_string()
        for punct in T.PUNCTUATORS:
            if self._source.startswith(punct, self._offset):
                self._advance(len(punct))
                return T.Token(T.PUNCT, punct, pos)
        raise LexError("unexpected character %r" % ch, pos)

    def tokens(self):
        """Yield all tokens including the trailing EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.kind == T.EOF:
                return


def tokenize(source, source_name="<source>"):
    """Return the full token list (including EOF) for ``source``."""
    return list(Lexer(source, source_name).tokens())
