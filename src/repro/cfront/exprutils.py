"""Expression traversal, substitution, and syntactic analyses.

These helpers implement the syntactic notions the paper relies on:
``vars(e)`` and ``drfs(e)`` for signature computation (Section 4.5.2),
*locations* for Morris' axiom of assignment (Section 4.2), and capture-free
syntactic substitution for weakest preconditions.
"""

from repro.cfront import cast as C


def walk(expr):
    """Yield ``expr`` and all sub-expressions, preorder."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def substitute(expr, mapping):
    """Replace maximal sub-expressions of ``expr`` per ``mapping``.

    ``mapping`` maps expressions (matched structurally) to replacement
    expressions.  A matched node is replaced wholesale and its replacement is
    not rescanned, which gives the standard simultaneous substitution
    ``φ[e/x]`` used in weakest preconditions.
    """
    if not mapping:
        return expr
    hit = mapping.get(expr)
    if hit is not None:
        return hit
    children = expr.children()
    if not children:
        return expr
    new_children = tuple(substitute(child, mapping) for child in children)
    if all(a is b for a, b in zip(children, new_children)):
        return expr
    return expr.rebuild(new_children)


def variables(expr):
    """``vars(e)``: the set of variable names referenced in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, C.Id)}


def derefs(expr):
    """``drfs(e)``: variable names dereferenced (via ``*``, ``->``, ``[]``)."""
    result = set()
    for node in walk(expr):
        if isinstance(node, C.Deref):
            result |= variables(node.pointer)
        elif isinstance(node, C.Index):
            result |= variables(node.base)
    return result


def locations(expr):
    """The set of *locations read* by ``expr``.

    A location (Section 4.2) is a variable, a structure field access from a
    location, or a dereference of a location.  Array elements are treated as
    dereferences of the array object under the logical memory model.

    An lvalue under ``&`` is *not* read — ``&x`` uses only x's (immutable)
    address — but the sub-expressions that compute the address are: ``&p->f``
    reads ``p``, ``&a[i]`` reads ``a`` (decayed) and ``i``.
    """
    result = set()

    def collect(node, address_only):
        if isinstance(node, C.AddrOf):
            collect(node.operand, True)
            return
        if isinstance(node, C.Cast):
            collect(node.operand, address_only)
            return
        if node.is_lvalue() and not address_only:
            result.add(node)
        if address_only:
            # Walk the lvalue spine: the outer accesses contribute no
            # reads, but the base pointer / index values do.
            if isinstance(node, C.FieldAccess):
                collect(node.base, True)
                return
            if isinstance(node, C.Deref):
                collect(node.pointer, False)
                return
            if isinstance(node, C.Index):
                collect(node.base, False)
                collect(node.index, False)
                return
            return  # a bare Id under &: no read
        for child in node.children():
            collect(child, False)

    collect(expr, False)
    return result


def max_locations(expr):
    """Locations of ``expr`` that are not sub-expressions of other locations.

    For ``p->val`` this is ``{p->val}`` rather than ``{p->val, p}``: Morris'
    axiom only needs the outermost read locations, since an alias of an inner
    location changes the *identity* of the outer one, which the full
    location-by-location expansion already covers via the inner location's
    occurrence inside the outer's address computation.
    """
    locs = locations(expr)
    result = set()
    for loc in locs:
        inside_other = any(
            other is not loc and loc in set(walk(other)) for other in locs
        )
        if not inside_other:
            result.add(loc)
    return result


def contains_call(expr):
    return any(isinstance(node, C.Call) for node in walk(expr))


def contains_unknown(expr):
    return any(isinstance(node, C.Unknown) for node in walk(expr))


def is_pure_predicate(expr):
    """Whether ``expr`` is a legal C2bp predicate: a pure boolean C
    expression with no function calls and no nondeterminism."""
    return not contains_call(expr) and not contains_unknown(expr)


def multi_deref_depth(expr):
    """The maximum number of nested ``Deref``/``Index`` nodes along any path;
    the intermediate form requires this to be at most 1 per *chain*.

    Note ``p->next->val`` has chain depth 2 (``*(*(p).next).val``... i.e. two
    dereferences of pointers reached from one another) and must be hoisted.
    """

    def depth(node):
        base = 0
        if isinstance(node, (C.Deref, C.Index)):
            base = 1
        child_depth = max((depth(child) for child in node.children()), default=0)
        return base + child_depth

    return depth(expr)


_COMPARISONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _c_div(a, b):
    """C semantics: division truncates toward zero."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a, b):
    return a - _c_div(a, b) * b


def fold_constants(expr):
    """Bottom-up constant folding plus address simplification
    (``*&x`` folds to ``x`` and ``&*p`` to ``p``).  Division by a constant
    zero is left unfolded (the prover treats it as uninterpreted)."""
    children = expr.children()
    if children:
        expr = expr.rebuild(tuple(fold_constants(child) for child in children))
    if isinstance(expr, C.Deref) and isinstance(expr.pointer, C.AddrOf):
        return expr.pointer.operand
    if isinstance(expr, C.AddrOf) and isinstance(expr.operand, C.Deref):
        return expr.operand.pointer
    if isinstance(expr, C.UnOp) and isinstance(expr.operand, C.IntLit):
        v = expr.operand.value
        if expr.op == "-":
            return C.IntLit(-v, expr.pos)
        if expr.op == "+":
            return expr.operand
        if expr.op == "!":
            return C.IntLit(0 if v else 1, expr.pos)
        if expr.op == "~":
            return C.IntLit(~v, expr.pos)
    if (
        isinstance(expr, C.BinOp)
        and isinstance(expr.left, C.IntLit)
        and isinstance(expr.right, C.IntLit)
    ):
        a, b = expr.left.value, expr.right.value
        op = expr.op
        if op == "+":
            return C.IntLit(a + b, expr.pos)
        if op == "-":
            return C.IntLit(a - b, expr.pos)
        if op == "*":
            return C.IntLit(a * b, expr.pos)
        if op == "/" and b != 0:
            return C.IntLit(_c_div(a, b), expr.pos)
        if op == "%" and b != 0:
            return C.IntLit(_c_mod(a, b), expr.pos)
        if op == "<<" and b >= 0:
            return C.IntLit(a << b, expr.pos)
        if op == ">>" and b >= 0:
            return C.IntLit(a >> b, expr.pos)
        if op == "&":
            return C.IntLit(a & b, expr.pos)
        if op == "|":
            return C.IntLit(a | b, expr.pos)
        if op == "^":
            return C.IntLit(a ^ b, expr.pos)
        if op in _COMPARISONS:
            return C.IntLit(1 if _COMPARISONS[op](a, b) else 0, expr.pos)
        if op == "&&":
            return C.IntLit(1 if (a and b) else 0, expr.pos)
        if op == "||":
            return C.IntLit(1 if (a or b) else 0, expr.pos)
    # Short-circuit folds with one constant side (expressions are pure, so
    # dropping the other side is sound).  The remaining operand must be
    # *normalized to a boolean*: `a && 1` is `a != 0`, not `a`.
    if isinstance(expr, C.BinOp) and expr.op in ("&&", "||"):
        for lit, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(lit, C.IntLit):
                if expr.op == "&&":
                    if not lit.value:
                        return C.IntLit(0, expr.pos)
                    return _as_boolean(other, expr.pos)
                if lit.value:
                    return C.IntLit(1, expr.pos)
                return _as_boolean(other, expr.pos)
    return expr


def _as_boolean(expr, pos):
    """The 0/1-valued form of a truth-valued use of ``expr``."""
    if isinstance(expr, C.BinOp) and (expr.op in C.REL_OPS or expr.op in C.LOGIC_OPS):
        return expr
    if isinstance(expr, C.UnOp) and expr.op == "!":
        return expr
    if isinstance(expr, C.IntLit):
        return C.IntLit(1 if expr.value else 0, pos)
    return C.BinOp("!=", expr, C.IntLit(0), pos)


def is_trivially_true(expr):
    folded = fold_constants(expr)
    return isinstance(folded, C.IntLit) and folded.value != 0


def is_trivially_false(expr):
    folded = fold_constants(expr)
    return isinstance(folded, C.IntLit) and folded.value == 0
