"""Lowering to the paper's simple intermediate form (Section 4).

After this pass:

1. all intraprocedural control flow is ``if``/``goto`` (structured ``while``
   loops whose condition needs no hoisting are retained — they translate to
   the same CFG and keep printed boolean programs readable, matching the
   paper's Figure 1 output);
2. expressions are free of side effects and short-circuit evaluation of
   calls, and contain no nested pointer dereferences (``**p``,
   ``p->next->val`` are hoisted through fresh temporaries);
3. function calls occur only at the top level of a statement
   (``z = x + f(y)`` becomes ``t = f(y); z = x + t;``);
4. every function has at most one ``return`` statement, of the form
   ``return r;`` for a canonical return variable ``r``.
"""

from repro.cfront import cast as C
from repro.cfront import ctypes as CT
from repro.cfront.errors import LoweringError
from repro.cfront.exprutils import contains_call, fold_constants, walk


def _contains_deref(expr):
    return any(isinstance(node, (C.Deref, C.Index)) for node in walk(expr))


def _needs_value_lowering(expr):
    """Whether hoisting statements are required to evaluate ``expr``."""
    for node in walk(expr):
        if isinstance(node, (C.Call, C.Cond)):
            return True
        if isinstance(node, (C.Deref, C.Index)):
            inner = node.pointer if isinstance(node, C.Deref) else node.base
            if _contains_deref(inner):
                return True
            if isinstance(node, C.Index) and _contains_deref(node.index):
                return True
    return False


class _FunctionLowerer:
    """Lowers one function body; owns the fresh temp/label counters."""

    def __init__(self, program, func):
        self.program = program
        self.func = func
        self._temp_counter = 0
        self._label_counter = 0
        # Stack of (break_label_holder, continue_label_holder); holders are
        # one-element lists so labels are created only on first use.
        self._loop_stack = []

    # -- fresh names -------------------------------------------------------

    def _fresh_temp(self, ctype, pos):
        name = "__t%d" % self._temp_counter
        self._temp_counter += 1
        self.func.locals.append(C.VarDecl(name, ctype, None, pos))
        ident = C.Id(name, pos)
        ident.type = CT.decay(ctype)
        return ident

    def _fresh_label(self):
        name = "__L%d" % self._label_counter
        self._label_counter += 1
        return name

    # -- expression lowering ------------------------------------------------

    def _lower_value(self, expr, out):
        """Lower ``expr`` for its value; emits prefix statements into ``out``
        and returns a replacement expression that is side-effect free and has
        no nested dereferences."""
        if isinstance(expr, C.Cond):
            cond = self._lower_value(expr.cond, out)
            temp = self._fresh_temp(expr.type or CT.INT, expr.pos)
            then_out = []
            then_value = self._lower_value(expr.then_expr, then_out)
            then_out.append(C.Assign(temp, then_value, expr.pos))
            else_out = []
            else_value = self._lower_value(expr.else_expr, else_out)
            else_out.append(C.Assign(temp, else_value, expr.pos))
            out.append(C.If(cond, then_out, else_out, expr.pos))
            return temp
        if isinstance(expr, C.BinOp) and expr.op in ("&&", "||"):
            right_impure = any(
                isinstance(node, (C.Call, C.Cond)) for node in walk(expr.right)
            )
            if right_impure:
                # Preserve short-circuit evaluation of an impure right side.
                left = self._lower_value(expr.left, out)
                temp = self._fresh_temp(CT.INT, expr.pos)
                eval_out = []
                right = self._lower_value(expr.right, eval_out)
                eval_out.append(
                    C.Assign(temp, C.BinOp("!=", right, C.IntLit(0), expr.pos), expr.pos)
                )
                if expr.op == "&&":
                    short_out = [C.Assign(temp, C.IntLit(0), expr.pos)]
                    out.append(C.If(left, eval_out, short_out, expr.pos))
                else:
                    short_out = [C.Assign(temp, C.IntLit(1), expr.pos)]
                    out.append(C.If(left, short_out, eval_out, expr.pos))
                return temp
            left = self._lower_value(expr.left, out)
            right = self._lower_value(expr.right, out)
            return C.BinOp(expr.op, left, right, expr.pos)
        if isinstance(expr, C.Call):
            args = [self._lower_value(arg, out) for arg in expr.args]
            callee = self.program.functions.get(expr.name)
            ret_type = callee.ret_type if callee is not None else CT.INT
            if ret_type.is_void():
                raise LoweringError(
                    "void call to %s used as a value" % expr.name, expr.pos
                )
            temp = self._fresh_temp(ret_type, expr.pos)
            out.append(C.CallStmt(temp, expr.name, args, expr.pos))
            return temp
        # Generic node: lower children, then hoist nested dereferences.
        children = expr.children()
        if children:
            expr = expr.rebuild(tuple(self._lower_value(child, out) for child in children))
        if isinstance(expr, C.Deref) and _contains_deref(expr.pointer):
            expr = C.Deref(self._hoist_pointer(expr.pointer, out), expr.pos)
        elif isinstance(expr, C.Index):
            base, index = expr.base, expr.index
            if _contains_deref(base):
                base = self._hoist_pointer(base, out)
            if _contains_deref(index):
                index = self._hoist_scalar(index, out)
            if base is not expr.base or index is not expr.index:
                expr = C.Index(base, index, expr.pos)
        elif isinstance(expr, C.AddrOf) and isinstance(expr.operand, C.Deref):
            # &*e folds to e.
            expr = expr.operand.pointer
        return expr

    def _hoist_pointer(self, expr, out):
        temp = self._fresh_temp(expr.type or CT.VOID_PTR, expr.pos)
        out.append(C.Assign(temp, expr, expr.pos))
        return temp

    def _hoist_scalar(self, expr, out):
        temp = self._fresh_temp(expr.type or CT.INT, expr.pos)
        out.append(C.Assign(temp, expr, expr.pos))
        return temp

    def _lower_lvalue(self, expr, out):
        """Lower an assignment target, preserving lvalue-ness of the root."""
        if isinstance(expr, C.Id):
            return expr
        if isinstance(expr, C.Deref):
            pointer = self._lower_value(expr.pointer, out)
            if _contains_deref(pointer):
                pointer = self._hoist_pointer(pointer, out)
            return C.Deref(pointer, expr.pos)
        if isinstance(expr, C.FieldAccess):
            base = self._lower_lvalue(expr.base, out)
            return C.FieldAccess(base, expr.field, expr.pos)
        if isinstance(expr, C.Index):
            base = self._lower_value(expr.base, out)
            index = self._lower_value(expr.index, out)
            if _contains_deref(index):
                index = self._hoist_scalar(index, out)
            return C.Index(base, index, expr.pos)
        if isinstance(expr, C.Cast):
            return self._lower_lvalue(expr.operand, out)
        raise LoweringError("unsupported assignment target", expr.pos)

    # -- statement lowering --------------------------------------------------

    def lower_body(self, stmts):
        out = []
        for stmt in stmts:
            lowered = self._lower_stmt(stmt)
            if stmt.labels:
                if not lowered:
                    lowered = [C.Skip(stmt.pos)]
                lowered[0].labels = list(stmt.labels) + list(lowered[0].labels)
            out.extend(lowered)
        return out

    def _lower_stmt(self, stmt):
        if isinstance(stmt, C.Skip):
            return [self._copy_plain(stmt)]
        if isinstance(stmt, C.Goto):
            new = C.Goto(stmt.label, stmt.pos)
            return [new]
        if isinstance(stmt, C.Assign):
            out = []
            rhs = self._lower_value(stmt.rhs, out)
            lhs = self._lower_lvalue(stmt.lhs, out)
            out.append(C.Assign(lhs, rhs, stmt.pos))
            return out
        if isinstance(stmt, C.CallStmt):
            out = []
            args = [self._lower_value(arg, out) for arg in stmt.args]
            lhs = None
            if stmt.lhs is not None:
                lhs = self._lower_lvalue(stmt.lhs, out)
            out.append(C.CallStmt(lhs, stmt.name, args, stmt.pos))
            return out
        if isinstance(stmt, C.ExprStmt):
            out = []
            value = self._lower_value(stmt.expr, out)
            del value  # pure after lowering; its value is discarded
            if not out:
                return [C.Skip(stmt.pos)]
            return out
        if isinstance(stmt, C.If):
            out = []
            cond = self._lower_value(stmt.cond, out)
            then_body = self.lower_body(stmt.then_body)
            else_body = self.lower_body(stmt.else_body)
            out.append(C.If(cond, then_body, else_body, stmt.pos))
            return out
        if isinstance(stmt, C.While):
            return self._lower_while(stmt)
        if isinstance(stmt, C.DoWhile):
            return self._lower_do_while(stmt)
        if isinstance(stmt, C.For):
            return self._lower_for(stmt)
        if isinstance(stmt, C.Break):
            return [C.Goto(self._break_label(stmt.pos), stmt.pos)]
        if isinstance(stmt, C.Continue):
            return [C.Goto(self._continue_label(stmt.pos), stmt.pos)]
        if isinstance(stmt, C.Return):
            return self._lower_return(stmt)
        if isinstance(stmt, C.Assert):
            out = []
            cond = self._lower_value(stmt.cond, out)
            out.append(C.Assert(cond, stmt.pos))
            return out
        if isinstance(stmt, C.Assume):
            out = []
            cond = self._lower_value(stmt.cond, out)
            out.append(C.Assume(cond, stmt.pos))
            return out
        raise AssertionError("unhandled statement node %r" % type(stmt).__name__)

    def _copy_plain(self, stmt):
        new = C.Skip(stmt.pos)
        return new

    def _break_label(self, pos):
        if not self._loop_stack:
            raise LoweringError("break outside of a loop", pos)
        holder = self._loop_stack[-1][0]
        if holder[0] is None:
            holder[0] = self._fresh_label()
        return holder[0]

    def _continue_label(self, pos):
        if not self._loop_stack:
            raise LoweringError("continue outside of a loop", pos)
        holder = self._loop_stack[-1][1]
        if holder[0] is None:
            holder[0] = self._fresh_label()
        return holder[0]

    def _lower_while(self, stmt):
        cond_needs_stmts = _needs_value_lowering(stmt.cond)
        break_holder = [None]
        continue_holder = [None]
        self._loop_stack.append((break_holder, continue_holder))
        body = self.lower_body(stmt.body)
        self._loop_stack.pop()
        if not cond_needs_stmts:
            # Keep the structured loop; splice in continue/break labels only
            # if they were used.
            if continue_holder[0] is not None:
                tail = C.Skip(stmt.pos)
                tail.labels.append(continue_holder[0])
                body.append(tail)
            result = [C.While(stmt.cond, body, stmt.pos)]
            if break_holder[0] is not None:
                after = C.Skip(stmt.pos)
                after.labels.append(break_holder[0])
                result.append(after)
            return result
        # Condition needs hoisted statements: expand to goto form.
        head_label = continue_holder[0] or self._fresh_label()
        exit_label = break_holder[0] or self._fresh_label()
        out = []
        head = C.Skip(stmt.pos)
        head.labels.append(head_label)
        out.append(head)
        cond_out = []
        cond = self._lower_value(stmt.cond, cond_out)
        out.extend(cond_out)
        exit_jump = C.If(C.negate(cond), [C.Goto(exit_label, stmt.pos)], [], stmt.pos)
        out.append(exit_jump)
        out.extend(body)
        out.append(C.Goto(head_label, stmt.pos))
        tail = C.Skip(stmt.pos)
        tail.labels.append(exit_label)
        out.append(tail)
        return out

    def _lower_do_while(self, stmt):
        break_holder = [None]
        continue_holder = [None]
        self._loop_stack.append((break_holder, continue_holder))
        body = self.lower_body(stmt.body)
        self._loop_stack.pop()
        head_label = self._fresh_label()
        out = []
        head = C.Skip(stmt.pos)
        head.labels.append(head_label)
        out.append(head)
        out.extend(body)
        if continue_holder[0] is not None:
            cont = C.Skip(stmt.pos)
            cont.labels.append(continue_holder[0])
            out.append(cont)
        cond_out = []
        cond = self._lower_value(stmt.cond, cond_out)
        out.extend(cond_out)
        out.append(C.If(cond, [C.Goto(head_label, stmt.pos)], [], stmt.pos))
        if break_holder[0] is not None:
            after = C.Skip(stmt.pos)
            after.labels.append(break_holder[0])
            out.append(after)
        return out

    def _lower_for(self, stmt):
        cond = stmt.cond if stmt.cond is not None else C.IntLit(1, stmt.pos)
        # continue in a for loop must reach the step statements; model that
        # with an explicit label before the step.
        break_holder = [None]
        continue_holder = [None]
        self._loop_stack.append((break_holder, continue_holder))
        body = self.lower_body(stmt.body)
        self._loop_stack.pop()
        init = self.lower_body(stmt.init)
        step = self.lower_body(stmt.step)
        if continue_holder[0] is not None:
            cont = C.Skip(stmt.pos)
            cont.labels.append(continue_holder[0])
            body.append(cont)
        body = body + step
        inner_while = C.While(cond, body, stmt.pos)
        lowered_loop = self._lower_stmt(inner_while)
        result = init + lowered_loop
        if break_holder[0] is not None:
            after = C.Skip(stmt.pos)
            after.labels.append(break_holder[0])
            result.append(after)
        return result

    def _lower_return(self, stmt):
        out = []
        if stmt.value is not None:
            value = self._lower_value(stmt.value, out)
            ret_var = self._ensure_return_var()
            if value != ret_var:
                out.append(C.Assign(ret_var, value, stmt.pos))
        out.append(C.Goto(self._exit_label, stmt.pos))
        return out

    def _pick_return_var(self):
        """Choose the canonical return variable.

        When every ``return`` in the (unlowered) body returns the same local
        or parameter, that variable *is* the return variable — this keeps
        user-written predicates about it attached to the return value, which
        the signature computation of Section 4.5.2 depends on (Figure 2's
        ``bar`` returns ``l1`` and has return predicate ``y == l1``).
        Otherwise a fresh ``__retval`` is synthesized.
        """
        names = set()

        def visit(stmts):
            for stmt in stmts:
                if isinstance(stmt, C.Return) and stmt.value is not None:
                    if isinstance(stmt.value, C.Id):
                        names.add(stmt.value.name)
                    else:
                        names.add(None)
                for sub in stmt.substatements():
                    visit(sub)

        visit(self.func.body)
        if len(names) == 1:
            name = names.pop()
            if name is not None and self.func.lookup_var(name) is not None:
                return name
        return None

    def _ensure_return_var(self):
        if self.func.return_var is None:
            name = self._preferred_return_var
            if name is None:
                name = "__retval"
                self.func.locals.append(
                    C.VarDecl(name, self.func.ret_type, None, self.func.pos)
                )
            self.func.return_var = name
        decl = self.func.lookup_var(self.func.return_var)
        ident = C.Id(self.func.return_var, self.func.pos)
        ident.type = CT.decay(decl.type if decl is not None else self.func.ret_type)
        return ident

    # -- entry point ---------------------------------------------------------

    def _pick_exit_label(self):
        """A fresh exit label (re-lowering already-lowered source must not
        collide with its existing __exit)."""
        used = set()

        def visit(stmts):
            for stmt in stmts:
                used.update(stmt.labels)
                for sub in stmt.substatements():
                    visit(sub)

        visit(self.func.body)
        label = "__exit"
        counter = 1
        while label in used:
            label = "__exit%d" % counter
            counter += 1
        return label

    def lower(self):
        self._preferred_return_var = self._pick_return_var()
        self._exit_label = self._pick_exit_label()
        body = self.lower_body(self.func.body)
        # Canonical single exit: every return jumps to the exit label,
        # which holds the unique `return r;`.
        exit_stmt = C.Skip(self.func.pos)
        exit_stmt.labels.append(self._exit_label)
        body.append(exit_stmt)
        if self.func.ret_type.is_void():
            body.append(C.Return(None, self.func.pos))
        else:
            ret_var = self._ensure_return_var()
            body.append(C.Return(ret_var, self.func.pos))
        self.func.body = _simplify_trivial_gotos(body, self._exit_label)
        return self.func


def _simplify_trivial_gotos(stmts, exit_label):
    """Drop the synthesized ``goto <exit>`` that immediately precedes the
    exit label (the common case of the last ``return`` of a function).
    User-written gotos are preserved verbatim."""
    out = []
    for i, stmt in enumerate(stmts):
        if (
            isinstance(stmt, C.Goto)
            and stmt.label == exit_label
            and not stmt.labels
            and i + 1 < len(stmts)
            and stmt.label in stmts[i + 1].labels
        ):
            continue
        out.append(stmt)
    return out


def simplify_program(program):
    """Lower every defined function of ``program`` in place and fold
    constants in global initializers."""
    for decl in program.globals:
        if decl.init is not None:
            decl.init = fold_constants(decl.init)
            if contains_call(decl.init):
                raise LoweringError(
                    "global initializer may not call functions", decl.pos
                )
    for func in program.defined_functions():
        _FunctionLowerer(program, func).lower()
    return program
