"""Control-flow graphs for functions in the intermediate form.

The CFG is the execution substrate shared by the concrete C interpreter
(used in soundness tests), Newton's path simulation, and the statement
numbering that ties boolean-program statements back to C statements.

Node kinds:

- ``entry`` / ``exit``: unique per function;
- ``stmt``: an atomic statement (Skip, Assign, CallStmt, Assert, Assume);
- ``branch``: the condition of an If or While; two outgoing edges labelled
  with the assumed outcome (True / False).

Every statement node also stamps its statement's ``sid`` with a globally
unique id so later phases can correlate C and boolean program statements.
"""

from repro.cfront import cast as C
from repro.cfront.errors import CFrontError

ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"


class CFGEdge:
    __slots__ = ("target", "assume")

    def __init__(self, target, assume=None):
        self.target = target
        # ``assume``: None for unconditional edges, True/False for the
        # branch outcome this edge commits to.
        self.assume = assume

    def __repr__(self):
        return "CFGEdge(->%d, assume=%r)" % (self.target.uid, self.assume)


class CFGNode:
    __slots__ = ("uid", "kind", "stmt", "cond", "edges", "preds")

    def __init__(self, uid, kind, stmt=None, cond=None):
        self.uid = uid
        self.kind = kind
        self.stmt = stmt
        self.cond = cond
        self.edges = []
        self.preds = []

    def successor(self, assume=None):
        """The unique successor along the given edge label, or None."""
        for edge in self.edges:
            if edge.assume == assume:
                return edge.target
        return None

    def __repr__(self):
        return "CFGNode(%d, %s)" % (self.uid, self.kind)


class ControlFlowGraph:
    """The CFG of one function."""

    def __init__(self, func):
        self.func = func
        self.nodes = []
        self.entry = None
        self.exit = None
        self.labels = {}  # goto label -> node

    def new_node(self, kind, stmt=None, cond=None):
        node = CFGNode(len(self.nodes), kind, stmt, cond)
        self.nodes.append(node)
        return node

    def add_edge(self, source, target, assume=None):
        edge = CFGEdge(target, assume)
        source.edges.append(edge)
        target.preds.append(source)
        return edge

    def statement_nodes(self):
        return [node for node in self.nodes if node.kind == STMT]

    def branch_nodes(self):
        return [node for node in self.nodes if node.kind == BRANCH]

    def reachable_nodes(self):
        """Nodes reachable from entry, in discovery (DFS preorder) order."""
        seen = set()
        order = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            order.append(node)
            for edge in reversed(node.edges):
                stack.append(edge.target)
        return order


class _Builder:
    def __init__(self, func, sid_allocator):
        self.cfg = ControlFlowGraph(func)
        self._pending_gotos = []  # (node, label)
        self._sid_allocator = sid_allocator

    def build(self):
        cfg = self.cfg
        cfg.entry = cfg.new_node(ENTRY)
        cfg.exit = cfg.new_node(EXIT)
        head = self._build_body(self.cfg.func.body, cfg.exit)
        cfg.add_edge(cfg.entry, head)
        for node, label in self._pending_gotos:
            target = cfg.labels.get(label)
            if target is None:
                raise CFrontError(
                    "goto to unknown label %r in %s" % (label, cfg.func.name)
                )
            cfg.add_edge(node, target)
        return cfg

    def _register_labels(self, stmt, node):
        for label in stmt.labels:
            self.cfg.labels[label] = node

    def _stamp(self, stmt):
        if stmt.sid is None:
            stmt.sid = self._sid_allocator()

    def _build_body(self, stmts, follow):
        """Build nodes for ``stmts`` falling through to ``follow``; returns
        the head node of the sequence."""
        head = follow
        # Build back to front so each statement knows its continuation.
        for stmt in reversed(stmts):
            head = self._build_stmt(stmt, head)
        return head

    def _build_stmt(self, stmt, follow):
        cfg = self.cfg
        if isinstance(stmt, C.If):
            self._stamp(stmt)
            node = cfg.new_node(BRANCH, stmt, stmt.cond)
            self._register_labels(stmt, node)
            then_head = self._build_body(stmt.then_body, follow)
            else_head = self._build_body(stmt.else_body, follow)
            cfg.add_edge(node, then_head, assume=True)
            cfg.add_edge(node, else_head, assume=False)
            return node
        if isinstance(stmt, C.While):
            self._stamp(stmt)
            node = cfg.new_node(BRANCH, stmt, stmt.cond)
            self._register_labels(stmt, node)
            body_head = self._build_body(stmt.body, node)
            cfg.add_edge(node, body_head, assume=True)
            cfg.add_edge(node, follow, assume=False)
            return node
        if isinstance(stmt, C.Goto):
            self._stamp(stmt)
            node = cfg.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            self._pending_gotos.append((node, stmt.label))
            return node
        if isinstance(stmt, C.Return):
            self._stamp(stmt)
            node = cfg.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            cfg.add_edge(node, cfg.exit)
            return node
        if isinstance(stmt, (C.Skip, C.Assign, C.CallStmt, C.Assert, C.Assume)):
            self._stamp(stmt)
            node = cfg.new_node(STMT, stmt)
            self._register_labels(stmt, node)
            cfg.add_edge(node, follow)
            return node
        raise AssertionError(
            "statement %r survived lowering; cannot build CFG" % type(stmt).__name__
        )


def build_cfg(func, sid_allocator=None):
    """Build the CFG of one lowered function.

    ``sid_allocator`` supplies globally unique statement ids; when omitted, a
    per-function counter is used.
    """
    if sid_allocator is None:
        counter = iter(range(1_000_000_000))
        sid_allocator = lambda: next(counter)  # noqa: E731
    return _Builder(func, sid_allocator).build()


def build_program_cfgs(program):
    """CFGs for all defined functions with a shared sid space.

    Idempotent with respect to statement ids: statements stamped by an
    earlier pass keep their sids, and fresh statements (e.g. inserted by
    SLAM instrumentation) are numbered above the existing maximum.
    """
    highest = 0

    def scan(stmts):
        nonlocal highest
        for stmt in stmts:
            if stmt.sid is not None:
                highest = max(highest, stmt.sid)
            for sub in stmt.substatements():
                scan(sub)

    for func in program.defined_functions():
        scan(func.body)
    next_sid = [highest]

    def allocate():
        next_sid[0] += 1
        return next_sid[0]

    return {
        func.name: build_cfg(func, allocate) for func in program.defined_functions()
    }
