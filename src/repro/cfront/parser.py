"""Recursive-descent parser for the C subset.

The accepted language covers what the paper's examples and driver-like
programs need: typedefs, structs (including self-referential ones declared
through pointers), enums (as integer constants), global and local variables,
functions, pointers at any depth, arrays, the full C expression grammar with
assignment/increment operators (desugared during parsing), and the statement forms
``if``/``while``/``do``/``for``/``goto``/labels/``break``/``continue``/
``return`` plus the ``assert``/``assume`` extensions.

Syntactic sugar with side effects (``x++``, ``x += e``, chained assignment)
is desugared by the parser itself into plain assignment statements, so the
parsed program is already close to the paper's intermediate form; the
lowering pass in :mod:`repro.cfront.simplify` finishes the job.
"""

from repro.cfront import cast as C
from repro.cfront import ctypes as CT
from repro.cfront import tokens as T
from repro.cfront.errors import ParseError
from repro.cfront.lexer import tokenize

_TYPE_KEYWORDS = frozenset(
    ["void", "char", "short", "int", "long", "signed", "unsigned", "bool", "struct", "union", "enum", "const"]
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])

# Binary operator precedence, loosest first.  Each level is left-associative.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses one translation unit into a :class:`repro.cfront.cast.Program`."""

    def __init__(self, source, name="<program>"):
        self._tokens = tokenize(source, name)
        self._index = 0
        self.program = C.Program(name)
        self._enum_constants = {}
        self._temp_counter = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead=0):
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self):
        token = self._peek()
        if token.kind != T.EOF:
            self._index += 1
        return token

    def _expect_punct(self, text):
        token = self._next()
        if not token.is_punct(text):
            raise ParseError("expected %r, found %r" % (text, token.text), token.pos)
        return token

    def _expect_keyword(self, word):
        token = self._next()
        if not token.is_keyword(word):
            raise ParseError("expected %r, found %r" % (word, token.text), token.pos)
        return token

    def _expect_ident(self):
        token = self._next()
        if token.kind != T.IDENT:
            raise ParseError("expected identifier, found %r" % token.text, token.pos)
        return token

    def _accept_punct(self, text):
        if self._peek().is_punct(text):
            return self._next()
        return None

    def _accept_keyword(self, word):
        if self._peek().is_keyword(word):
            return self._next()
        return None

    # -- types ---------------------------------------------------------

    def _at_type_start(self, ahead=0):
        token = self._peek(ahead)
        if token.kind == T.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind == T.KEYWORD and token.text in ("static", "extern", "auto", "typedef"):
            return True
        return token.kind == T.IDENT and token.text in self.program.typedefs

    def _parse_base_type(self):
        """Parse a type specifier (without declarator pointers/arrays)."""
        token = self._peek()
        # Skip qualifiers and storage classes we do not model.
        while self._accept_keyword("const") or self._accept_keyword("static") or self._accept_keyword(
            "extern"
        ) or self._accept_keyword("auto"):
            token = self._peek()
        if token.is_keyword("struct") or token.is_keyword("union"):
            return self._parse_struct_type()
        if token.is_keyword("enum"):
            return self._parse_enum_type()
        if token.kind == T.KEYWORD and token.text in ("void", "char", "short", "int", "long", "signed", "unsigned", "bool"):
            names = []
            while self._peek().kind == T.KEYWORD and self._peek().text in (
                "void",
                "char",
                "short",
                "int",
                "long",
                "signed",
                "unsigned",
                "bool",
            ):
                names.append(self._next().text)
            if names == ["void"]:
                return CT.VOID
            if "bool" in names:
                return CT.BOOL
            if "char" in names:
                return CT.CHAR
            if "long" in names:
                return CT.LONG
            return CT.INT
        if token.kind == T.IDENT and token.text in self.program.typedefs:
            self._next()
            return self.program.typedefs[token.text]
        raise ParseError("expected a type, found %r" % token.text, token.pos)

    def _parse_struct_type(self):
        token = self._next()  # struct / union (unions share the struct model)
        tag = None
        if self._peek().kind == T.IDENT:
            tag = self._next().text
        if tag is None and not self._peek().is_punct("{"):
            raise ParseError("anonymous struct must have a body", token.pos)
        if tag is None:
            tag = "__anon%d" % len(self.program.structs)
        struct = self.program.structs.get(tag)
        if struct is None:
            struct = CT.StructType(tag)
            self.program.structs[tag] = struct
        if self._accept_punct("{"):
            fields = []
            while not self._peek().is_punct("}"):
                base = self._parse_base_type()
                while True:
                    name, ctype = self._parse_declarator(base)
                    fields.append(CT.StructField(name, ctype, len(fields)))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            self._expect_punct("}")
            struct.define(fields)
        return struct

    def _parse_enum_type(self):
        self._next()  # enum
        if self._peek().kind == T.IDENT:
            self._next()  # tag; enums are just ints
        if self._accept_punct("{"):
            next_value = 0
            while not self._peek().is_punct("}"):
                name = self._expect_ident().text
                if self._accept_punct("="):
                    value_expr = self._parse_conditional()
                    from repro.cfront.exprutils import fold_constants

                    folded = fold_constants(value_expr)
                    if not isinstance(folded, C.IntLit):
                        raise ParseError("enum value must be constant", value_expr.pos)
                    next_value = folded.value
                self._enum_constants[name] = next_value
                next_value += 1
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
        return CT.INT

    def _parse_declarator(self, base):
        """Parse ``* ... name [array]`` and return (name, full type)."""
        ctype = base
        while self._accept_punct("*"):
            while self._accept_keyword("const"):
                pass
            ctype = CT.PointerType(ctype)
        name_token = self._expect_ident()
        while self._accept_punct("["):
            if self._peek().is_punct("]"):
                length = None
            else:
                from repro.cfront.exprutils import fold_constants

                length_expr = fold_constants(self._parse_conditional())
                if not isinstance(length_expr, C.IntLit):
                    raise ParseError("array length must be constant", length_expr.pos)
                length = length_expr.value
            self._expect_punct("]")
            ctype = CT.ArrayType(ctype, length)
        return name_token.text, ctype

    def _parse_abstract_type(self):
        """A type with optional ``*``s and no name, as in casts/sizeof."""
        ctype = self._parse_base_type()
        while self._accept_punct("*"):
            ctype = CT.PointerType(ctype)
        return ctype

    # -- top level -----------------------------------------------------

    def parse_program(self):
        while self._peek().kind != T.EOF:
            self._parse_top_level()
        return self.program

    def _parse_top_level(self):
        if self._accept_keyword("typedef"):
            base = self._parse_base_type()
            while True:
                name, ctype = self._parse_declarator(base)
                self.program.typedefs[name] = ctype
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
            return
        base = self._parse_base_type()
        if self._accept_punct(";"):
            return  # bare struct/enum definition
        # Look ahead past '*'s and the name to distinguish function vs var.
        probe = 0
        while self._peek(probe).is_punct("*"):
            probe += 1
        name_tok = self._peek(probe)
        after = self._peek(probe + 1)
        if name_tok.kind == T.IDENT and after.is_punct("("):
            self._parse_function(base)
        else:
            while True:
                name, ctype = self._parse_declarator(base)
                init = None
                if self._accept_punct("="):
                    init = self._parse_assignment_rhs_expr()
                self.program.globals.append(C.VarDecl(name, ctype, init, name_tok.pos))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")

    def _parse_function(self, base):
        ret_type = base
        while self._accept_punct("*"):
            ret_type = CT.PointerType(ret_type)
        name_token = self._expect_ident()
        self._expect_punct("(")
        params = []
        variadic = False
        if not self._peek().is_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._next()
            else:
                while True:
                    if self._accept_punct("..."):
                        variadic = True
                        break
                    param_base = self._parse_base_type()
                    pname, ptype = self._parse_declarator(param_base)
                    params.append(C.VarDecl(pname, CT.decay(ptype), pos=self._peek().pos))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        func = C.Function(name_token.text, ret_type, params, [], None, name_token.pos)
        del variadic  # accepted syntactically; calls are checked by arity of params provided
        if self._accept_punct(";"):
            if name_token.text not in self.program.functions:
                self.program.functions[name_token.text] = func
            return
        self._current_locals = []
        self._expect_punct("{")
        body = self._parse_block_body()
        func.locals = self._current_locals
        func.body = body
        self.program.functions[name_token.text] = func

    # -- statements ------------------------------------------------------

    def _parse_block_body(self):
        """Statements until the matching '}' (already consumed '{')."""
        stmts = []
        while not self._peek().is_punct("}"):
            stmts.extend(self._parse_statement())
        self._expect_punct("}")
        return stmts

    def _parse_statement(self):
        """Parse one statement, returning a *list* (desugaring may expand)."""
        token = self._peek()
        # Labels: IDENT ':' not followed by something that makes it a decl.
        if token.kind == T.IDENT and self._peek(1).is_punct(":"):
            label = self._next().text
            self._expect_punct(":")
            if self._peek().is_punct("}"):
                stmt = C.Skip(token.pos)
                stmt.labels.append(label)
                return [stmt]
            inner = self._parse_statement()
            if not inner:
                inner = [C.Skip(token.pos)]
            inner[0].labels.insert(0, label)
            return inner
        if token.is_punct("{"):
            self._next()
            return self._parse_block_body()
        if token.is_punct(";"):
            self._next()
            return [C.Skip(token.pos)]
        if self._at_type_start():
            return self._parse_local_decl()
        if token.is_keyword("if"):
            return [self._parse_if()]
        if token.is_keyword("while"):
            return [self._parse_while()]
        if token.is_keyword("do"):
            return [self._parse_do_while()]
        if token.is_keyword("for"):
            return [self._parse_for()]
        if token.is_keyword("goto"):
            self._next()
            label = self._expect_ident().text
            self._expect_punct(";")
            return [C.Goto(label, token.pos)]
        if token.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return [C.Break(token.pos)]
        if token.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return [C.Continue(token.pos)]
        if token.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return [C.Return(value, token.pos)]
        if token.is_keyword("assert"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return [C.Assert(cond, token.pos)]
        if token.is_keyword("assume"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return [C.Assume(cond, token.pos)]
        if token.is_keyword("switch"):
            raise ParseError("switch statements are not supported; use if/else", token.pos)
        # Expression statement (assignment, call, increment...).
        stmts = self._parse_expression_statement()
        self._expect_punct(";")
        return stmts

    def _parse_local_decl(self):
        pos = self._peek().pos
        base = self._parse_base_type()
        stmts = []
        while True:
            name, ctype = self._parse_declarator(base)
            decl = C.VarDecl(name, ctype, None, pos)
            self._current_locals.append(decl)
            if self._accept_punct("="):
                init = self._parse_assignment_rhs_expr()
                stmts.append(C.Assign(C.Id(name, pos), init, pos))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return stmts

    def _parse_if(self):
        pos = self._expect_keyword("if").pos
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_statement()
        else_body = []
        if self._accept_keyword("else"):
            else_body = self._parse_statement()
        return C.If(cond, then_body, else_body, pos)

    def _parse_while(self):
        pos = self._expect_keyword("while").pos
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return C.While(cond, body, pos)

    def _parse_do_while(self):
        pos = self._expect_keyword("do").pos
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return C.DoWhile(cond, body, pos)

    def _parse_for(self):
        pos = self._expect_keyword("for").pos
        self._expect_punct("(")
        init = []
        if not self._peek().is_punct(";"):
            if self._at_type_start():
                init = self._parse_local_decl()
                # _parse_local_decl consumed the ';'
            else:
                init = self._parse_expression_statement()
                self._expect_punct(";")
        else:
            self._next()
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = []
        if not self._peek().is_punct(")"):
            step = self._parse_expression_statement()
        self._expect_punct(")")
        body = self._parse_statement()
        return C.For(init, cond, step, body, pos)

    def _parse_expression_statement(self):
        """Parse assignment / call / ++ / -- statements, desugaring into a
        list of plain Assign/CallStmt/ExprStmt statements."""
        pos = self._peek().pos
        # Prefix increment/decrement.
        if self._peek().is_punct("++") or self._peek().is_punct("--"):
            op = self._next().text
            target = self._parse_unary()
            delta = C.BinOp("+" if op == "++" else "-", target, C.IntLit(1, pos), pos)
            return [C.Assign(target, delta, pos)]
        expr = self._parse_expression_no_assign()
        token = self._peek()
        if token.kind == T.PUNCT and token.text in _ASSIGN_OPS:
            self._next()
            if token.text == "=":
                rhs_stmts, rhs = self._parse_assignment_rhs()
            else:
                rhs_stmts, rhs_value = self._parse_assignment_rhs()
                binop = token.text[:-1]
                rhs = C.BinOp(binop, expr, rhs_value, pos)
            if isinstance(rhs, C.Call):
                return rhs_stmts + [C.CallStmt(expr, rhs.name, list(rhs.args), pos)]
            return rhs_stmts + [C.Assign(expr, rhs, pos)]
        if token.is_punct("++") or token.is_punct("--"):
            op = self._next().text
            delta = C.BinOp("+" if op == "++" else "-", expr, C.IntLit(1, pos), pos)
            return [C.Assign(expr, delta, pos)]
        if isinstance(expr, C.Call):
            return [C.CallStmt(None, expr.name, list(expr.args), pos)]
        return [C.ExprStmt(expr, pos)]

    def _parse_assignment_rhs(self):
        """RHS of '=': may itself be a chained assignment ``x = y = e``.

        Returns (prefix statements, value expression)."""
        save = self._index
        try:
            lhs = self._parse_expression_no_assign()
        except ParseError:
            self._index = save
            return [], self._parse_expression()
        if self._peek().is_punct("="):
            pos = self._next().pos
            inner_stmts, inner_value = self._parse_assignment_rhs()
            if isinstance(inner_value, C.Call):
                stmt = C.CallStmt(lhs, inner_value.name, list(inner_value.args), pos)
            else:
                stmt = C.Assign(lhs, inner_value, pos)
            return inner_stmts + [stmt], lhs
        self._index = save
        return [], self._parse_expression()

    def _parse_assignment_rhs_expr(self):
        stmts, value = self._parse_assignment_rhs()
        if stmts:
            raise ParseError("chained assignment not allowed in this context", value.pos)
        return value

    # -- expressions -----------------------------------------------------

    def _parse_expression(self):
        return self._parse_conditional()

    def _parse_expression_no_assign(self):
        """An expression that stops before a top-level '=' (used to decide
        assignment statements); same grammar as _parse_expression."""
        return self._parse_conditional()

    def _parse_conditional(self):
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then_expr = self._parse_expression()
            self._expect_punct(":")
            else_expr = self._parse_conditional()
            return C.Cond(cond, then_expr, else_expr, cond.pos)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == T.PUNCT and self._peek().text in ops:
            # Avoid consuming '&' of '&&' handled at its own level etc.
            op = self._next().text
            right = self._parse_binary(level + 1)
            left = C.BinOp(op, left, right, left.pos)
        return left

    def _starts_expression(self, ahead):
        token = self._peek(ahead)
        if token.kind in (T.IDENT, T.INTLIT, T.CHARLIT):
            return True
        if token.is_keyword("sizeof"):
            return True
        return token.kind == T.PUNCT and token.text in (
            "(",
            "*",
            "&",
            "-",
            "+",
            "!",
            "~",
        )

    def _parse_unary(self):
        token = self._peek()
        if token.is_punct("*"):
            # A bare '*' (as in ``if (*)``) is the nondeterministic choice
            # expression; '*e' is a dereference.
            if not self._starts_expression(1):
                self._next()
                self._temp_counter += 1
                return C.Unknown(self._temp_counter, token.pos)
            self._next()
            return C.Deref(self._parse_unary(), token.pos)
        if token.is_punct("&"):
            self._next()
            return C.AddrOf(self._parse_unary(), token.pos)
        if token.is_punct("-"):
            self._next()
            return C.UnOp("-", self._parse_unary(), token.pos)
        if token.is_punct("+"):
            self._next()
            return C.UnOp("+", self._parse_unary(), token.pos)
        if token.is_punct("!"):
            self._next()
            return C.UnOp("!", self._parse_unary(), token.pos)
        if token.is_punct("~"):
            self._next()
            return C.UnOp("~", self._parse_unary(), token.pos)
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and self._at_type_start(1):
                self._expect_punct("(")
                ctype = self._parse_abstract_type()
                self._expect_punct(")")
                return C.IntLit(ctype.sizeof(), token.pos)
            operand = self._parse_unary()
            # Size of an expression: use its (unchecked) syntactic type if
            # available; default to word size.
            del operand
            return C.IntLit(4, token.pos)
        if token.is_punct("(") and self._at_type_start(1):
            self._expect_punct("(")
            ctype = self._parse_abstract_type()
            self._expect_punct(")")
            operand = self._parse_unary()
            return C.Cast(ctype, operand, token.pos)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._next()
                field = self._expect_ident().text
                expr = C.FieldAccess(expr, field, token.pos)
            elif token.is_punct("->"):
                self._next()
                field = self._expect_ident().text
                expr = C.arrow(expr, field, token.pos)
            elif token.is_punct("["):
                self._next()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = C.Index(expr, index, token.pos)
            elif token.is_punct("("):
                if not isinstance(expr, C.Id):
                    raise ParseError("calls through expressions are not supported", token.pos)
                self._next()
                args = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = C.Call(expr.name, args, token.pos)
            else:
                return expr

    def _parse_primary(self):
        token = self._next()
        if token.kind == T.INTLIT or token.kind == T.CHARLIT:
            return C.IntLit(token.value, token.pos)
        if token.kind == T.IDENT:
            if token.text in self._enum_constants:
                return C.IntLit(self._enum_constants[token.text], token.pos)
            if token.text == "NULL":
                return C.IntLit(0, token.pos)
            return C.Id(token.text, token.pos)
        if token.is_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("*"):
            # '*' in condition position: nondeterministic choice, as used in
            # boolean-program-style C inputs and SLAM harnesses.
            self._temp_counter += 1
            return C.Unknown(self._temp_counter, token.pos)
        raise ParseError("unexpected token %r in expression" % token.text, token.pos)


def parse_program(source, name="<program>"):
    """Parse C source text into an unlowered :class:`Program`."""
    return Parser(source, name).parse_program()


def parse_expression(source, name="<expr>"):
    """Parse a single C expression (used for predicate input files)."""
    parser = Parser(source, name)
    expr = parser._parse_expression()
    trailing = parser._peek()
    if trailing.kind != T.EOF:
        raise ParseError("trailing input after expression: %r" % trailing.text, trailing.pos)
    return expr
