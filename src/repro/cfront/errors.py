"""Diagnostics for the C front end.

All front-end errors carry a source position so that tools built on top
(C2bp, SLAM) can report problems against the original C text.
"""


class SourcePos:
    """A (line, column) position in a named source buffer."""

    __slots__ = ("source_name", "line", "column")

    def __init__(self, source_name, line, column):
        self.source_name = source_name
        self.line = line
        self.column = column

    def __repr__(self):
        return "SourcePos(%r, %d, %d)" % (self.source_name, self.line, self.column)

    def __str__(self):
        return "%s:%d:%d" % (self.source_name, self.line, self.column)

    def __eq__(self, other):
        if not isinstance(other, SourcePos):
            return NotImplemented
        return (
            self.source_name == other.source_name
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self):
        return hash((self.source_name, self.line, self.column))


UNKNOWN_POS = SourcePos("<unknown>", 0, 0)


class CFrontError(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message, pos=None):
        self.message = message
        self.pos = pos or UNKNOWN_POS
        super().__init__("%s: %s" % (self.pos, message))


class LexError(CFrontError):
    """Raised on malformed input at the token level."""


class ParseError(CFrontError):
    """Raised on syntactically invalid programs."""


class TypeError_(CFrontError):
    """Raised on ill-typed programs.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class LoweringError(CFrontError):
    """Raised when a construct cannot be lowered to the intermediate form."""
