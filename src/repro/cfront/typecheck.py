"""Type checker for the C subset.

Annotates every expression node with its type (``expr.type``) and checks
the usual well-formedness conditions.  Following common C tool practice —
and because SLAM models OS entry points it has no source for — calls to
undeclared functions are accepted and registered as extern functions whose
parameter types are taken from the call site.
"""

from repro.cfront import cast as C
from repro.cfront import ctypes as CT
from repro.cfront.errors import TypeError_


class TypeChecker:
    def __init__(self, program):
        self.program = program

    # -- environment -------------------------------------------------------

    def _var_type(self, func, name, pos):
        decl = self.program.lookup_var(func.name if func else None, name)
        if decl is None:
            raise TypeError_("use of undeclared variable %r" % name, pos)
        return decl.type

    # -- expressions -------------------------------------------------------

    def check_expr(self, expr, func):
        """Type ``expr`` in the scope of ``func`` and return the type."""
        ctype = self._check_expr(expr, func)
        expr.type = ctype
        return ctype

    def _check_expr(self, expr, func):
        if isinstance(expr, C.IntLit):
            return CT.INT
        if isinstance(expr, C.Unknown):
            return CT.INT
        if isinstance(expr, C.Id):
            return CT.decay(self._var_type(func, expr.name, expr.pos))
        if isinstance(expr, C.BinOp):
            left = self.check_expr(expr.left, func)
            right = self.check_expr(expr.right, func)
            op = expr.op
            if op in C.LOGIC_OPS:
                self._require_scalar(left, expr.left)
                self._require_scalar(right, expr.right)
                return CT.INT
            if op in C.REL_OPS:
                if not (
                    (left.is_integer() and right.is_integer())
                    or (left.is_pointer() and right.is_pointer())
                    or (left.is_pointer() and right.is_integer())
                    or (left.is_integer() and right.is_pointer())
                ):
                    raise TypeError_(
                        "cannot compare %s with %s" % (left, right), expr.pos
                    )
                return CT.INT
            # Arithmetic.  Pointer arithmetic yields the pointer type under
            # the logical memory model.
            if op in ("+", "-"):
                if left.is_pointer() and right.is_integer():
                    return left
                if left.is_integer() and right.is_pointer():
                    return right
                if op == "-" and left.is_pointer() and right.is_pointer():
                    return CT.INT
            if not (left.is_integer() and right.is_integer()):
                raise TypeError_(
                    "operator %r requires integers, got %s and %s" % (op, left, right),
                    expr.pos,
                )
            return CT.INT
        if isinstance(expr, C.UnOp):
            operand = self.check_expr(expr.operand, func)
            if expr.op == "!":
                self._require_scalar(operand, expr.operand)
                return CT.INT
            if not operand.is_integer():
                raise TypeError_(
                    "operator %r requires an integer, got %s" % (expr.op, operand),
                    expr.pos,
                )
            return CT.INT
        if isinstance(expr, C.Deref):
            pointer = self.check_expr(expr.pointer, func)
            if not pointer.is_pointer():
                raise TypeError_("cannot dereference non-pointer %s" % pointer, expr.pos)
            if pointer.target.is_void():
                raise TypeError_("cannot dereference void*", expr.pos)
            return CT.decay(pointer.target)
        if isinstance(expr, C.AddrOf):
            operand = self._check_addressable(expr.operand, func)
            return CT.PointerType(operand)
        if isinstance(expr, C.FieldAccess):
            base = self.check_expr(expr.base, func)
            if not base.is_struct():
                raise TypeError_("field access into non-struct %s" % base, expr.pos)
            return CT.decay(base.field(expr.field).type)
        if isinstance(expr, C.Index):
            base = self.check_expr(expr.base, func)
            index = self.check_expr(expr.index, func)
            if not index.is_integer():
                raise TypeError_("array index must be an integer", expr.index.pos)
            if base.is_pointer():
                return CT.decay(base.target)
            raise TypeError_("cannot index non-array %s" % base, expr.pos)
        if isinstance(expr, C.Call):
            return self._check_call(expr.name, expr.args, func, expr.pos)
        if isinstance(expr, C.Cond):
            self._require_scalar(self.check_expr(expr.cond, func), expr.cond)
            then_type = self.check_expr(expr.then_expr, func)
            else_type = self.check_expr(expr.else_expr, func)
            if not (CT.assignable(then_type, else_type) or CT.assignable(else_type, then_type)):
                raise TypeError_(
                    "incompatible branches of ?: (%s vs %s)" % (then_type, else_type),
                    expr.pos,
                )
            return then_type if then_type.is_pointer() else else_type
        if isinstance(expr, C.Cast):
            self.check_expr(expr.operand, func)
            return CT.decay(expr.to_type)
        raise AssertionError("unhandled expression node %r" % type(expr).__name__)

    def _check_addressable(self, expr, func):
        """The type of an lvalue whose address is taken (no array decay)."""
        if isinstance(expr, C.Id):
            return self._var_type(func, expr.name, expr.pos)
        if not expr.is_lvalue():
            raise TypeError_("cannot take the address of a non-lvalue", expr.pos)
        return self.check_expr(expr, func)

    def _check_call(self, name, args, func, pos):
        arg_types = [self.check_expr(arg, func) for arg in args]
        callee = self.program.functions.get(name)
        if callee is None:
            # Register an extern signature inferred from the call site.
            params = [
                C.VarDecl("__p%d" % i, arg_type, pos=pos)
                for i, arg_type in enumerate(arg_types)
            ]
            callee = C.Function(name, CT.INT, params, [], None, pos)
            self.program.functions[name] = callee
            return CT.INT
        if len(args) != len(callee.params):
            raise TypeError_(
                "call to %s with %d arguments, expected %d"
                % (name, len(args), len(callee.params)),
                pos,
            )
        for arg, arg_type, param in zip(args, arg_types, callee.params):
            if not CT.assignable(param.type, arg_type):
                raise TypeError_(
                    "argument %r of call to %s: cannot pass %s as %s"
                    % (param.name, name, arg_type, param.type),
                    arg.pos,
                )
        return CT.decay(callee.ret_type)

    def _require_scalar(self, ctype, expr):
        if not ctype.is_scalar():
            raise TypeError_("expected a scalar value, got %s" % ctype, expr.pos)

    # -- statements ----------------------------------------------------

    def check_stmt(self, stmt, func):
        if isinstance(stmt, (C.Skip, C.Goto, C.Break, C.Continue)):
            return
        if isinstance(stmt, C.Assign):
            if not stmt.lhs.is_lvalue():
                raise TypeError_("assignment to non-lvalue", stmt.pos)
            lhs_type = self.check_expr(stmt.lhs, func)
            rhs_type = self.check_expr(stmt.rhs, func)
            if lhs_type.is_struct() or lhs_type.is_array():
                raise TypeError_(
                    "whole-aggregate assignment is not supported; "
                    "assign members individually",
                    stmt.pos,
                )
            if not CT.assignable(lhs_type, rhs_type):
                raise TypeError_(
                    "cannot assign %s to %s" % (rhs_type, lhs_type), stmt.pos
                )
            return
        if isinstance(stmt, C.CallStmt):
            ret_type = self._check_call(stmt.name, stmt.args, func, stmt.pos)
            if stmt.lhs is not None:
                if not stmt.lhs.is_lvalue():
                    raise TypeError_("assignment to non-lvalue", stmt.pos)
                lhs_type = self.check_expr(stmt.lhs, func)
                if ret_type.is_void():
                    raise TypeError_(
                        "void value of %s used in assignment" % stmt.name, stmt.pos
                    )
                if not CT.assignable(lhs_type, ret_type):
                    raise TypeError_(
                        "cannot assign %s to %s" % (ret_type, lhs_type), stmt.pos
                    )
            return
        if isinstance(stmt, C.If):
            self._require_scalar(self.check_expr(stmt.cond, func), stmt.cond)
            self.check_body(stmt.then_body, func)
            self.check_body(stmt.else_body, func)
            return
        if isinstance(stmt, (C.While, C.DoWhile)):
            self._require_scalar(self.check_expr(stmt.cond, func), stmt.cond)
            self.check_body(stmt.body, func)
            return
        if isinstance(stmt, C.For):
            self.check_body(stmt.init, func)
            if stmt.cond is not None:
                self._require_scalar(self.check_expr(stmt.cond, func), stmt.cond)
            self.check_body(stmt.step, func)
            self.check_body(stmt.body, func)
            return
        if isinstance(stmt, C.Return):
            if stmt.value is not None:
                value_type = self.check_expr(stmt.value, func)
                if func.ret_type.is_void():
                    raise TypeError_("void function returns a value", stmt.pos)
                if not CT.assignable(func.ret_type, value_type):
                    raise TypeError_(
                        "cannot return %s from function returning %s"
                        % (value_type, func.ret_type),
                        stmt.pos,
                    )
            elif not func.ret_type.is_void():
                raise TypeError_("non-void function returns no value", stmt.pos)
            return
        if isinstance(stmt, (C.Assert, C.Assume)):
            self._require_scalar(self.check_expr(stmt.cond, func), stmt.cond)
            return
        if isinstance(stmt, C.ExprStmt):
            self.check_expr(stmt.expr, func)
            return
        raise AssertionError("unhandled statement node %r" % type(stmt).__name__)

    def check_body(self, stmts, func):
        for stmt in stmts:
            self.check_stmt(stmt, func)

    # -- whole program -----------------------------------------------------

    def check(self):
        for decl in self.program.globals:
            if decl.init is not None:
                init_type = self.check_expr(decl.init, None)
                if not CT.assignable(decl.type, init_type):
                    raise TypeError_(
                        "cannot initialize %s with %s" % (decl.type, init_type),
                        decl.pos,
                    )
        self._check_goto_labels()
        for func in list(self.program.functions.values()):
            if func.is_defined:
                self.check_body(func.body, func)

    def _check_goto_labels(self):
        for func in self.program.defined_functions():
            labels = set()
            gotos = []

            def visit(stmts):
                for stmt in stmts:
                    for label in stmt.labels:
                        if label in labels:
                            raise TypeError_(
                                "duplicate label %r in %s" % (label, func.name),
                                stmt.pos,
                            )
                        labels.add(label)
                    if isinstance(stmt, C.Goto):
                        gotos.append(stmt)
                    for sub in stmt.substatements():
                        visit(sub)

            visit(func.body)
            for goto in gotos:
                if goto.label not in labels:
                    raise TypeError_(
                        "goto to undefined label %r in %s" % (goto.label, func.name),
                        goto.pos,
                    )


def typecheck_program(program):
    """Type check ``program`` in place, annotating expression types."""
    TypeChecker(program).check()
    return program
