"""Boolean programs — the target language of C2bp.

A boolean program (Ball & Rajamani [5]) is a C-like program whose only type
is ``bool``.  It has global variables, procedures with call-by-value
parameters, *multiple* return values, parallel assignment, nondeterministic
choice ``*``, ``assume``/``assert``, the ``enforce`` data-invariant
construct of Section 5.1, and the ``choose``/``unknown`` idioms of
Section 4.3:

    bool choose(bool pos, bool neg) {
        if (pos) { return 1; }
        if (neg) { return 0; }
        return unknown();
    }

Variable identifiers are either C identifiers or arbitrary strings enclosed
in ``{`` ``}`` (the printed form of predicates, e.g. ``{curr==NULL}``).

This package provides the AST, a printer and parser for a concrete syntax
matching the paper's Figure 1(b), and a reference interpreter used by the
soundness tests to replay C traces in the abstraction.
"""

from repro.boolprog.ast import (
    BAnd,
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BChoose,
    BConst,
    BGoto,
    BIf,
    BImplies,
    BNondet,
    BNot,
    BOr,
    BProcedure,
    BProgram,
    BReturn,
    BSkip,
    BUnknown,
    BVar,
    BWhile,
)
from repro.boolprog.parser import parse_bool_program
from repro.boolprog.printer import print_bool_program
from repro.boolprog.interp import BoolProgramInterpreter
from repro.boolprog.validate import ValidationError, validate_bool_program

__all__ = [
    "BAnd",
    "BAssert",
    "BAssign",
    "BAssume",
    "BCall",
    "BChoose",
    "BConst",
    "BGoto",
    "BIf",
    "BImplies",
    "BNondet",
    "BNot",
    "BOr",
    "BProcedure",
    "BProgram",
    "BReturn",
    "BSkip",
    "BUnknown",
    "BVar",
    "BWhile",
    "BoolProgramInterpreter",
    "ValidationError",
    "parse_bool_program",
    "print_bool_program",
    "validate_bool_program",
]
