"""Concrete syntax printer for boolean programs (Figure 1(b) style)."""

import re

from repro.boolprog import ast as B

_PLAIN_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _name(name):
    """Names that are not C identifiers are brace-quoted, as in the paper."""
    if _PLAIN_IDENT.match(name):
        return name
    return "{%s}" % name


_PREC = {"or": 1, "implies": 1, "and": 2}


def print_bool_expr(expr, parent_prec=0):
    if isinstance(expr, B.BConst):
        return "1" if expr.value else "0"
    if isinstance(expr, B.BVar):
        return _name(expr.name)
    if isinstance(expr, B.BNondet):
        return "*"
    if isinstance(expr, B.BUnknown):
        return "unknown()"
    if isinstance(expr, B.BChoose):
        return "choose(%s, %s)" % (
            print_bool_expr(expr.pos),
            print_bool_expr(expr.neg),
        )
    if isinstance(expr, B.BNot):
        return "!%s" % print_bool_expr(expr.operand, 3)
    if isinstance(expr, B.BAnd):
        text = "%s && %s" % (
            print_bool_expr(expr.left, _PREC["and"]),
            print_bool_expr(expr.right, _PREC["and"] + 1),
        )
        return "(%s)" % text if _PREC["and"] < parent_prec else text
    if isinstance(expr, B.BOr):
        text = "%s || %s" % (
            print_bool_expr(expr.left, _PREC["or"]),
            print_bool_expr(expr.right, _PREC["or"] + 1),
        )
        return "(%s)" % text if _PREC["or"] < parent_prec else text
    if isinstance(expr, B.BImplies):
        text = "%s => %s" % (
            print_bool_expr(expr.left, _PREC["implies"] + 1),
            print_bool_expr(expr.right, _PREC["implies"]),
        )
        return "(%s)" % text if _PREC["implies"] < parent_prec else text
    raise AssertionError("unhandled boolean expression %r" % type(expr).__name__)


def _indent(depth):
    return "    " * depth


def print_bool_stmt(stmt, depth=0):
    pad = _indent(depth)
    prefix = "".join("%s%s:\n" % (pad, label) for label in stmt.labels)
    comment = "  // %s" % stmt.comment if stmt.comment else ""

    if isinstance(stmt, B.BSkip):
        body = "%sskip;%s\n" % (pad, comment)
    elif isinstance(stmt, B.BAssign):
        body = "%s%s = %s;%s\n" % (
            pad,
            ", ".join(_name(t) for t in stmt.targets),
            ", ".join(print_bool_expr(v) for v in stmt.values),
            comment,
        )
    elif isinstance(stmt, B.BAssume):
        body = "%sassume(%s);%s\n" % (pad, print_bool_expr(stmt.cond), comment)
    elif isinstance(stmt, B.BAssert):
        body = "%sassert(%s);%s\n" % (pad, print_bool_expr(stmt.cond), comment)
    elif isinstance(stmt, B.BIf):
        body = "%sif (%s) {%s\n%s%s}" % (
            pad,
            print_bool_expr(stmt.cond),
            comment,
            print_bool_body(stmt.then_body, depth + 1),
            pad,
        )
        if stmt.else_body:
            body += " else {\n%s%s}" % (print_bool_body(stmt.else_body, depth + 1), pad)
        body += "\n"
    elif isinstance(stmt, B.BWhile):
        body = "%swhile (%s) {%s\n%s%s}\n" % (
            pad,
            print_bool_expr(stmt.cond),
            comment,
            print_bool_body(stmt.body, depth + 1),
            pad,
        )
    elif isinstance(stmt, B.BGoto):
        body = "%sgoto %s;%s\n" % (pad, stmt.label, comment)
    elif isinstance(stmt, B.BReturn):
        if stmt.values:
            body = "%sreturn %s;%s\n" % (
                pad,
                ", ".join(print_bool_expr(v) for v in stmt.values),
                comment,
            )
        else:
            body = "%sreturn;%s\n" % (pad, comment)
    elif isinstance(stmt, B.BCall):
        call = "%s(%s)" % (stmt.name, ", ".join(print_bool_expr(a) for a in stmt.args))
        if stmt.targets:
            body = "%s%s = %s;%s\n" % (
                pad,
                ", ".join(_name(t) for t in stmt.targets),
                call,
                comment,
            )
        else:
            body = "%s%s;%s\n" % (pad, call, comment)
    else:
        raise AssertionError("unhandled statement %r" % type(stmt).__name__)
    return prefix + body


def print_bool_body(stmts, depth):
    return "".join(print_bool_stmt(stmt, depth) for stmt in stmts)


def print_bool_program(program):
    parts = []
    if program.globals:
        parts.append("decl %s;\n" % ", ".join(_name(g) for g in program.globals))
    for proc in program.procedures.values():
        if proc.returns == 0:
            header = "void %s(%s)" % (
                proc.name,
                ", ".join(_name(f) for f in proc.formals),
            )
        elif proc.returns == 1:
            header = "bool %s(%s)" % (
                proc.name,
                ", ".join(_name(f) for f in proc.formals),
            )
        else:
            header = "bool<%d> %s(%s)" % (
                proc.returns,
                proc.name,
                ", ".join(_name(f) for f in proc.formals),
            )
        lines = ["%s {" % header]
        if proc.locals:
            lines.append("    decl %s;" % ", ".join(_name(v) for v in proc.locals))
        if proc.enforce is not None:
            lines.append("    enforce %s;" % print_bool_expr(proc.enforce))
        lines.append(print_bool_body(proc.body, 1).rstrip("\n"))
        lines.append("}\n")
        parts.append("\n".join(lines))
    return "\n".join(parts)
