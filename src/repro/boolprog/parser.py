"""Parser for the boolean program concrete syntax.

The syntax is the one the printer emits (Figure 1(b) style).  The only
lexical subtlety is ``{``: it either opens a block or quotes an arbitrary
variable name (``{curr==NULL}``).  A ``{`` is treated as a quoted name when
its matching ``}`` appears before any ``;``, ``{`` or ``}`` and the text
between is non-empty — which cannot hold for a statement block (every
non-empty block contains a ``;``, and an empty block's braces are adjacent).
"""

import re

from repro.boolprog import ast as B


class BoolParseError(Exception):
    pass


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<braced>\{[^;{}]*[^;{}\s][^;{}]*\})
  | (?P<punct><=|=>|&&|\|\||<|>|[(){};,=!*:])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>[0-9]+)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    ["decl", "void", "bool", "enforce", "skip", "assume", "assert", "if", "else", "while", "goto", "return", "choose", "unknown"]
)


def _tokenize(source):
    tokens = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise BoolParseError(
                "unexpected character %r at offset %d" % (source[index], index)
            )
        index = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "braced":
            tokens.append(("name", text[1:-1].strip()))
        elif match.lastgroup == "ident":
            if text in _KEYWORDS:
                tokens.append(("kw", text))
            else:
                tokens.append(("name", text))
        elif match.lastgroup == "number":
            tokens.append(("num", int(text)))
        else:
            tokens.append(("punct", text))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, source):
        self._tokens = _tokenize(source)
        self._index = 0

    def _peek(self, ahead=0):
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        if token[0] != "eof":
            self._index += 1
        return token

    def _expect(self, kind, value=None):
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise BoolParseError("expected %s %r, found %r" % (kind, value, (token,)))
        return token

    def _accept(self, kind, value=None):
        token = self._peek()
        if token[0] == kind and (value is None or token[1] == value):
            return self._next()
        return None

    # -- program -----------------------------------------------------------

    def parse(self):
        program = B.BProgram()
        while self._peek()[0] != "eof":
            if self._accept("kw", "decl"):
                program.globals.extend(self._name_list())
                self._expect("punct", ";")
            else:
                program.add_procedure(self._parse_procedure())
        return program

    def _name_list(self):
        names = [self._expect("name")[1]]
        while self._accept("punct", ","):
            names.append(self._expect("name")[1])
        return names

    def _parse_procedure(self):
        returns = 0
        if self._accept("kw", "void"):
            returns = 0
        elif self._accept("kw", "bool"):
            returns = 1
            if self._accept("punct", "<"):
                returns = self._expect("num")[1]
                self._expect("punct", ">")
        else:
            raise BoolParseError("expected procedure header, found %r" % (self._peek(),))
        name = self._expect("name")[1]
        self._expect("punct", "(")
        formals = []
        if not self._peek() == ("punct", ")"):
            if self._peek()[0] == "name":
                formals = self._name_list()
        self._expect("punct", ")")
        self._expect("punct", "{")
        locals_ = []
        while self._accept("kw", "decl"):
            locals_.extend(self._name_list())
            self._expect("punct", ";")
        enforce = None
        if self._accept("kw", "enforce"):
            enforce = self._parse_expr()
            self._expect("punct", ";")
        body = self._parse_body()
        return B.BProcedure(name, formals, locals_, returns, body, enforce)

    # -- statements ----------------------------------------------------------

    def _parse_body(self):
        """Statements until the closing '}' (consumed)."""
        stmts = []
        while not self._accept("punct", "}"):
            stmts.extend(self._parse_statement())
        return stmts

    def _parse_statement(self):
        token = self._peek()
        # Label: name ':'
        if token[0] == "name" and self._peek(1) == ("punct", ":"):
            label = self._next()[1]
            self._expect("punct", ":")
            if self._peek() == ("punct", "}"):
                stmt = B.BSkip()
                stmt.labels.append(label)
                return [stmt]
            inner = self._parse_statement()
            inner[0].labels.insert(0, label)
            return inner
        if self._accept("kw", "skip"):
            self._expect("punct", ";")
            return [B.BSkip()]
        if self._accept("kw", "assume"):
            self._expect("punct", "(")
            cond = self._parse_expr()
            self._expect("punct", ")")
            self._expect("punct", ";")
            return [B.BAssume(cond)]
        if self._accept("kw", "assert"):
            self._expect("punct", "(")
            cond = self._parse_expr()
            self._expect("punct", ")")
            self._expect("punct", ";")
            return [B.BAssert(cond)]
        if self._accept("kw", "goto"):
            label = self._expect("name")[1]
            self._expect("punct", ";")
            return [B.BGoto(label)]
        if self._accept("kw", "return"):
            values = []
            if not self._peek() == ("punct", ";"):
                values.append(self._parse_expr())
                while self._accept("punct", ","):
                    values.append(self._parse_expr())
            self._expect("punct", ";")
            return [B.BReturn(values)]
        if self._accept("kw", "if"):
            self._expect("punct", "(")
            cond = self._parse_expr()
            self._expect("punct", ")")
            self._expect("punct", "{")
            then_body = self._parse_body()
            else_body = []
            if self._accept("kw", "else"):
                self._expect("punct", "{")
                else_body = self._parse_body()
            return [B.BIf(cond, then_body, else_body)]
        if self._accept("kw", "while"):
            self._expect("punct", "(")
            cond = self._parse_expr()
            self._expect("punct", ")")
            self._expect("punct", "{")
            body = self._parse_body()
            return [B.BWhile(cond, body)]
        # Assignment or call: starts with a name.
        if token[0] == "name":
            # A void call: name '(' ... ')' ';'
            if self._peek(1) == ("punct", "("):
                name = self._next()[1]
                args = self._parse_args()
                self._expect("punct", ";")
                return [B.BCall([], name, args)]
            targets = self._name_list()
            self._expect("punct", "=")
            # Call with results?
            if (
                self._peek()[0] == "name"
                and self._peek(1) == ("punct", "(")
            ):
                name = self._next()[1]
                args = self._parse_args()
                self._expect("punct", ";")
                return [B.BCall(targets, name, args)]
            values = [self._parse_rhs()]
            while self._accept("punct", ","):
                values.append(self._parse_rhs())
            self._expect("punct", ";")
            if len(values) != len(targets):
                raise BoolParseError(
                    "parallel assignment arity mismatch (%d targets, %d values)"
                    % (len(targets), len(values))
                )
            return [B.BAssign(targets, values)]
        raise BoolParseError("unexpected token %r" % (token,))

    def _parse_args(self):
        self._expect("punct", "(")
        args = []
        if not self._peek() == ("punct", ")"):
            args.append(self._parse_rhs())
            while self._accept("punct", ","):
                args.append(self._parse_rhs())
        self._expect("punct", ")")
        return args

    def _parse_rhs(self):
        """An assignment RHS / call argument: expression, choose, unknown."""
        if self._peek() == ("kw", "choose"):
            self._next()
            self._expect("punct", "(")
            pos = self._parse_expr()
            self._expect("punct", ",")
            neg = self._parse_expr()
            self._expect("punct", ")")
            return B.BChoose(pos, neg)
        if self._peek() == ("kw", "unknown"):
            self._next()
            self._expect("punct", "(")
            self._expect("punct", ")")
            return B.BUnknown()
        return self._parse_expr()

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self):
        left = self._parse_or()
        if self._accept("punct", "=>"):
            right = self._parse_expr()
            return B.BImplies(left, right)
        return left

    def _parse_or(self):
        left = self._parse_and()
        while self._accept("punct", "||"):
            left = B.BOr(left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_unary()
        while self._accept("punct", "&&"):
            left = B.BAnd(left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self._accept("punct", "!"):
            return B.BNot(self._parse_unary())
        token = self._next()
        if token == ("punct", "*"):
            return B.BNondet()
        if token[0] == "num":
            if token[1] in (0, 1):
                return B.BConst(token[1] == 1)
            raise BoolParseError("boolean constant must be 0 or 1")
        if token[0] == "name":
            return B.BVar(token[1])
        if token == ("punct", "("):
            expr = self._parse_expr()
            self._expect("punct", ")")
            return expr
        raise BoolParseError("unexpected token %r in expression" % (token,))


def parse_bool_program(source):
    return _Parser(source).parse()
