"""A reference interpreter for boolean programs.

Nondeterminism (``*``, ``unknown()``, and the fall-through case of
``choose``) is resolved by a pluggable *chooser*.  The soundness tests use
this to replay a concrete C trace inside ``BP(P, E)``: the chooser follows
the C execution's branch outcomes and concrete predicate values, and the
replay must never get stuck on an ``assume`` (Section 4.6 soundness).
"""

import random

from repro.boolprog import ast as B


class BoolInterpError(Exception):
    pass


class BoolAssertionFailure(BoolInterpError):
    def __init__(self, stmt):
        super().__init__("boolean program assertion failed")
        self.stmt = stmt


class AssumeBlocked(Exception):
    """An ``assume`` condition was false: this execution does not exist."""

    def __init__(self, stmt):
        super().__init__("assume blocked")
        self.stmt = stmt


class RandomChooser:
    """Resolves nondeterminism with a seeded RNG (for fuzz-style tests)."""

    def __init__(self, seed=0):
        self._rng = random.Random(seed)

    def choose(self, stmt, what):
        return self._rng.choice([False, True])


class BoolProgramInterpreter:
    def __init__(
        self,
        program,
        chooser=None,
        max_steps=200_000,
        stop_on_assert=True,
        listener=None,
        on_enter=None,
        on_exit=None,
    ):
        self.program = program
        self.chooser = chooser or RandomChooser()
        self.max_steps = max_steps
        self.stop_on_assert = stop_on_assert
        self.listener = listener
        self.on_enter = on_enter
        self.on_exit = on_exit
        self.assert_failures = []
        self._steps = 0
        self.globals = {}
        self.trace = []
        for name in program.globals:
            self.globals[name] = self._choose_initial(name)

    def _choose_initial(self, name):
        # Boolean program variables start unconstrained (Section 2.1).
        return self.chooser.choose(None, ("initial", name))

    # -- expression evaluation --------------------------------------------------

    def eval_expr(self, expr, env, stmt=None, hint=None):
        if isinstance(expr, B.BConst):
            return expr.value
        if isinstance(expr, B.BVar):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.globals:
                return self.globals[expr.name]
            raise BoolInterpError("unbound boolean variable %r" % expr.name)
        if isinstance(expr, B.BNot):
            return not self.eval_expr(expr.operand, env, stmt)
        if isinstance(expr, B.BAnd):
            return self.eval_expr(expr.left, env, stmt) and self.eval_expr(
                expr.right, env, stmt
            )
        if isinstance(expr, B.BOr):
            return self.eval_expr(expr.left, env, stmt) or self.eval_expr(
                expr.right, env, stmt
            )
        if isinstance(expr, B.BImplies):
            return (not self.eval_expr(expr.left, env, stmt)) or self.eval_expr(
                expr.right, env, stmt
            )
        if isinstance(expr, B.BNondet):
            return self.chooser.choose(stmt, ("nondet", hint))
        if isinstance(expr, B.BUnknown):
            return self.chooser.choose(stmt, ("unknown", hint))
        if isinstance(expr, B.BChoose):
            if self.eval_expr(expr.pos, env, stmt):
                return True
            if self.eval_expr(expr.neg, env, stmt):
                return False
            return self.chooser.choose(stmt, ("choose", hint))
        raise AssertionError("unhandled boolean expression %r" % type(expr).__name__)

    # -- execution ----------------------------------------------------------------

    def call(self, name, args=()):
        proc = self.program.procedures.get(name)
        if proc is None:
            raise BoolInterpError("call to undefined procedure %r" % name)
        if len(args) != len(proc.formals):
            raise BoolInterpError("arity mismatch calling %r" % name)
        if self.on_enter is not None:
            self.on_enter(name)
        try:
            env = dict(zip(proc.formals, args))
            for local in proc.locals:
                env[local] = self.chooser.choose(None, ("local", name, local))
            self._check_enforce(proc, env)
            outcome = self._run_slice(proc, proc.body, 0, env)
        finally:
            if self.on_exit is not None:
                self.on_exit(name)
        if isinstance(outcome, _Return):
            return outcome.values
        if proc.returns:
            raise BoolInterpError(
                "procedure %r fell off the end without returning values" % name
            )
        return []

    def _check_enforce(self, proc, env):
        if proc.enforce is not None and not self.eval_expr(proc.enforce, env):
            # The enforce invariant filters states like an assume would.
            raise AssumeBlocked(None)

    def _resume_along(self, proc, body, path, env):
        """Resume execution at the statement addressed by ``path`` (a list
        alternating statement index and substatement-list index), then
        continue normally to the end of ``body``."""
        index = path[0]
        if len(path) > 1:
            stmt = body[index]
            sub_lists = stmt.substatements()
            outcome = self._resume_along(proc, sub_lists[path[1]], path[2:], env)
            if outcome is not _FELL_THROUGH:
                return outcome
            if isinstance(stmt, B.BWhile):
                # Completed an iteration of the loop body: re-test the loop
                # by re-running the While statement itself.
                return self._run_slice(proc, body, index, env)
            index += 1
        return self._run_slice(proc, body, index, env)

    def _run_slice(self, proc, body, start, env):
        index = start
        while index < len(body):
            stmt = body[index]
            self._steps += 1
            if self._steps > self.max_steps:
                raise BoolInterpError("step limit exceeded")
            self.trace.append(stmt)
            outcome = self._exec_stmt(proc, stmt, env)
            if self.listener is not None and not isinstance(stmt, (B.BIf, B.BWhile)):
                # Atomic statements report their post-state; compound ones
                # are covered by their inner statements.
                self.listener(proc.name, stmt, env, self.globals)
            if isinstance(outcome, _Return) or outcome is _FINISHED:
                return outcome
            if isinstance(outcome, _Jump):
                path = _path_to_label(proc.body, outcome.label)
                if path is None:
                    raise BoolInterpError("goto to unknown label %r" % outcome.label)
                resumed = self._resume_along(proc, proc.body, path, env)
                if isinstance(resumed, _Return):
                    return resumed
                # The continuation ran to the end of the procedure.
                return _FINISHED
            index += 1
        return _FELL_THROUGH

    def _exec_stmt(self, proc, stmt, env):
        if isinstance(stmt, B.BSkip):
            return None
        if isinstance(stmt, B.BAssign):
            values = [
                self.eval_expr(value, env, stmt, hint=target)
                for target, value in zip(stmt.targets, stmt.values)
            ]
            for target, value in zip(stmt.targets, values):
                self._store(target, value, env)
            self._check_enforce(proc, env)
            return None
        if isinstance(stmt, B.BAssume):
            if not self.eval_expr(stmt.cond, env, stmt):
                raise AssumeBlocked(stmt)
            return None
        if isinstance(stmt, B.BAssert):
            if not self.eval_expr(stmt.cond, env, stmt):
                if self.stop_on_assert:
                    raise BoolAssertionFailure(stmt)
                self.assert_failures.append(stmt)
            return None
        if isinstance(stmt, B.BIf):
            if self.eval_expr(stmt.cond, env, stmt):
                outcome = self._run_slice(proc, stmt.then_body, 0, env)
            else:
                outcome = self._run_slice(proc, stmt.else_body, 0, env)
            return None if outcome is _FELL_THROUGH else outcome
        if isinstance(stmt, B.BWhile):
            while self.eval_expr(stmt.cond, env, stmt):
                self._steps += 1
                if self._steps > self.max_steps:
                    raise BoolInterpError("step limit exceeded")
                outcome = self._run_slice(proc, stmt.body, 0, env)
                if outcome is not _FELL_THROUGH:
                    return outcome  # _Return, _Jump never escapes, _FINISHED
            return None
        if isinstance(stmt, B.BGoto):
            return _Jump(stmt.label)
        if isinstance(stmt, B.BReturn):
            return _Return([self.eval_expr(v, env, stmt) for v in stmt.values])
        if isinstance(stmt, B.BCall):
            args = [
                self.eval_expr(arg, env, stmt, hint=("arg", stmt.name, index))
                for index, arg in enumerate(stmt.args)
            ]
            results = self.call(stmt.name, args)
            if stmt.targets:
                if len(results) != len(stmt.targets):
                    raise BoolInterpError(
                        "call to %r returned %d values for %d targets"
                        % (stmt.name, len(results), len(stmt.targets))
                    )
                for target, value in zip(stmt.targets, results):
                    self._store(target, value, env)
            self._check_enforce(proc, env)
            return None
        raise AssertionError("unhandled statement %r" % type(stmt).__name__)

    def _store(self, name, value, env):
        if name in env:
            env[name] = value
        elif name in self.globals:
            self.globals[name] = value
        else:
            raise BoolInterpError("assignment to unbound variable %r" % name)


class _Return:
    __slots__ = ("values",)

    def __init__(self, values):
        self.values = values


class _Jump:
    __slots__ = ("label",)

    def __init__(self, label):
        self.label = label


_FELL_THROUGH = object()
_FINISHED = object()


def _path_to_label(body, label):
    """The index path (alternating statement index, substatement-list index)
    leading to the statement carrying ``label``, or None."""
    for index, stmt in enumerate(body):
        if label in stmt.labels:
            return [index]
        for sub_index, sub in enumerate(stmt.substatements()):
            sub_path = _path_to_label(sub, label)
            if sub_path is not None:
                return [index, sub_index] + sub_path
    return None
