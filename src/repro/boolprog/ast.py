"""Abstract syntax for boolean programs.

Expressions are immutable values with structural equality (like the C AST).
``BChoose`` and ``BUnknown`` may only appear at the top level of an
assignment right-hand side or as a call argument — they denote the
``choose``/``unknown`` helper calls from Section 4.3 rather than ordinary
boolean operators, and the model checker gives them relational semantics.
"""


class BExpr:
    __slots__ = ("_hash",)

    def __init__(self):
        self._hash = None

    def _key(self):
        raise NotImplementedError

    def children(self):
        return ()

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, BExpr):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self):
        from repro.boolprog.printer import print_bool_expr

        return "<BExpr %s>" % print_bool_expr(self)


class BConst(BExpr):
    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__()
        self.value = bool(value)

    def _key(self):
        return ("const", self.value)


class BVar(BExpr):
    """A boolean variable; ``name`` is any string (often a predicate text)."""

    __slots__ = ("name",)

    def __init__(self, name):
        super().__init__()
        self.name = name

    def _key(self):
        return ("var", self.name)


class BNot(BExpr):
    __slots__ = ("operand",)

    def __init__(self, operand):
        super().__init__()
        self.operand = operand

    def _key(self):
        return ("not", self.operand._key())

    def children(self):
        return (self.operand,)


class BAnd(BExpr):
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    def _key(self):
        return ("and", self.left._key(), self.right._key())

    def children(self):
        return (self.left, self.right)


class BOr(BExpr):
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    def _key(self):
        return ("or", self.left._key(), self.right._key())

    def children(self):
        return (self.left, self.right)


class BImplies(BExpr):
    __slots__ = ("left", "right")

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    def _key(self):
        return ("implies", self.left._key(), self.right._key())

    def children(self):
        return (self.left, self.right)


class BNondet(BExpr):
    """The control expression ``*``: nondeterministic true or false."""

    __slots__ = ()

    def _key(self):
        return ("nondet",)


class BUnknown(BExpr):
    """``unknown()`` on an assignment right-hand side."""

    __slots__ = ()

    def _key(self):
        return ("unknown",)


class BChoose(BExpr):
    """``choose(pos, neg)``: true if ``pos``, false if ``neg``, else ``*``.

    Section 4.3 guarantees ``pos`` and ``neg`` cannot both hold.
    """

    __slots__ = ("pos", "neg")

    def __init__(self, pos, neg):
        super().__init__()
        self.pos = pos
        self.neg = neg

    def _key(self):
        return ("choose", self.pos._key(), self.neg._key())

    def children(self):
        return (self.pos, self.neg)


def bool_and(exprs):
    exprs = [e for e in exprs if not (isinstance(e, BConst) and e.value)]
    if any(isinstance(e, BConst) and not e.value for e in exprs):
        return BConst(False)
    if not exprs:
        return BConst(True)
    result = exprs[0]
    for expr in exprs[1:]:
        result = BAnd(result, expr)
    return result


def bool_or(exprs):
    exprs = [e for e in exprs if not (isinstance(e, BConst) and not e.value)]
    if any(isinstance(e, BConst) and e.value for e in exprs):
        return BConst(True)
    if not exprs:
        return BConst(False)
    result = exprs[0]
    for expr in exprs[1:]:
        result = BOr(result, expr)
    return result


def bool_not(expr):
    if isinstance(expr, BConst):
        return BConst(not expr.value)
    if isinstance(expr, BNot):
        return expr.operand
    return BNot(expr)


def expr_variables(expr):
    """The set of variable names an expression mentions."""
    result = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BVar):
            result.add(node.name)
        stack.extend(node.children())
    return result


def rename_expr_variables(expr, mapping):
    """The expression with every :class:`BVar` named in ``mapping``
    renamed.  Expressions are immutable values, so affected nodes are
    rebuilt; unaffected subtrees are shared."""
    if isinstance(expr, BVar):
        new_name = mapping.get(expr.name)
        return expr if new_name is None else BVar(new_name)
    if isinstance(expr, BNot):
        return BNot(rename_expr_variables(expr.operand, mapping))
    if isinstance(expr, BAnd):
        return BAnd(
            rename_expr_variables(expr.left, mapping),
            rename_expr_variables(expr.right, mapping),
        )
    if isinstance(expr, BOr):
        return BOr(
            rename_expr_variables(expr.left, mapping),
            rename_expr_variables(expr.right, mapping),
        )
    if isinstance(expr, BImplies):
        return BImplies(
            rename_expr_variables(expr.left, mapping),
            rename_expr_variables(expr.right, mapping),
        )
    if isinstance(expr, BChoose):
        return BChoose(
            rename_expr_variables(expr.pos, mapping),
            rename_expr_variables(expr.neg, mapping),
        )
    return expr  # BConst, BNondet, BUnknown


def rename_stmt_variables(stmts, mapping):
    """Rename variables (including assignment and call targets) across a
    statement list, recursing into compound bodies.  Statement nodes are
    updated in place — labels, source ids, and comments survive — while
    the expressions they hold are rebuilt.  Returns ``stmts``."""
    for stmt in stmts:
        if isinstance(stmt, BAssign):
            stmt.targets = [mapping.get(t, t) for t in stmt.targets]
            stmt.values = [rename_expr_variables(v, mapping) for v in stmt.values]
        elif isinstance(stmt, (BAssume, BAssert)):
            stmt.cond = rename_expr_variables(stmt.cond, mapping)
        elif isinstance(stmt, BIf):
            stmt.cond = rename_expr_variables(stmt.cond, mapping)
            rename_stmt_variables(stmt.then_body, mapping)
            rename_stmt_variables(stmt.else_body, mapping)
        elif isinstance(stmt, BWhile):
            stmt.cond = rename_expr_variables(stmt.cond, mapping)
            rename_stmt_variables(stmt.body, mapping)
        elif isinstance(stmt, BReturn):
            stmt.values = [rename_expr_variables(v, mapping) for v in stmt.values]
        elif isinstance(stmt, BCall):
            stmt.targets = [mapping.get(t, t) for t in stmt.targets]
            stmt.args = [rename_expr_variables(a, mapping) for a in stmt.args]
    return stmts


# -- statements ----------------------------------------------------------------


class BStmt:
    __slots__ = ("labels", "source_sid", "comment")

    def __init__(self):
        self.labels = []
        # The C statement this boolean statement abstracts (for trace
        # correspondence between P and BP(P, E)); None for synthesized code.
        self.source_sid = None
        # Free-form annotation shown by the printer (Figure 1(b) carries the
        # original C statement as a comment).
        self.comment = None

    def substatements(self):
        return ()

    def __repr__(self):
        from repro.boolprog.printer import print_bool_stmt

        return "<%s %s>" % (type(self).__name__, print_bool_stmt(self).strip())


class BSkip(BStmt):
    __slots__ = ()


class BAssign(BStmt):
    """Parallel assignment ``t1, ..., tk = e1, ..., ek;``."""

    __slots__ = ("targets", "values")

    def __init__(self, targets, values):
        super().__init__()
        assert len(targets) == len(values)
        self.targets = list(targets)
        self.values = list(values)


class BAssume(BStmt):
    __slots__ = ("cond",)

    def __init__(self, cond):
        super().__init__()
        self.cond = cond


class BAssert(BStmt):
    __slots__ = ("cond",)

    def __init__(self, cond):
        super().__init__()
        self.cond = cond


class BIf(BStmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond, then_body, else_body=None):
        super().__init__()
        self.cond = cond
        self.then_body = list(then_body)
        self.else_body = list(else_body or [])

    def substatements(self):
        return (self.then_body, self.else_body)


class BWhile(BStmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        super().__init__()
        self.cond = cond
        self.body = list(body)

    def substatements(self):
        return (self.body,)


class BGoto(BStmt):
    __slots__ = ("label",)

    def __init__(self, label):
        super().__init__()
        self.label = label


class BReturn(BStmt):
    """``return e1, ..., ep;`` — boolean programs return multiple values."""

    __slots__ = ("values",)

    def __init__(self, values=()):
        super().__init__()
        self.values = list(values)


class BCall(BStmt):
    """``t1, ..., tp = name(a1, ..., aj);`` (targets may be empty)."""

    __slots__ = ("targets", "name", "args")

    def __init__(self, targets, name, args):
        super().__init__()
        self.targets = list(targets)
        self.name = name
        self.args = list(args)


# -- program structure ------------------------------------------------------------


class BProcedure:
    """A boolean procedure.

    ``returns`` is the number of boolean values the procedure returns;
    every ``BReturn`` in the body must carry exactly that many expressions.
    """

    __slots__ = ("name", "formals", "locals", "returns", "body", "enforce")

    def __init__(self, name, formals, locals_, returns, body, enforce=None):
        self.name = name
        self.formals = list(formals)
        self.locals = list(locals_)
        self.returns = returns
        self.body = list(body)
        self.enforce = enforce  # BExpr invariant or None (Section 5.1)

    def variables_in_scope(self, global_names):
        return list(global_names) + self.formals + self.locals

    def __repr__(self):
        return "BProcedure(%r)" % self.name


class BProgram:
    __slots__ = ("globals", "procedures")

    def __init__(self):
        self.globals = []
        self.procedures = {}

    def add_procedure(self, procedure):
        self.procedures[procedure.name] = procedure

    def statement_count(self):
        total = 0

        def count(stmts):
            nonlocal total
            for stmt in stmts:
                total += 1
                for sub in stmt.substatements():
                    count(sub)

        for proc in self.procedures.values():
            count(proc.body)
        return total

    def __repr__(self):
        return "BProgram(globals=%r, procedures=%r)" % (
            self.globals,
            list(self.procedures),
        )
