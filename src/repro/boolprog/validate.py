"""Well-formedness checking for boolean programs.

C2bp's output is correct by construction, but hand-written ``.bp`` files
(and programs produced by other front ends) benefit from a validator.
Checked properties:

- every variable read or written is a global, formal, or local in scope;
- ``choose``/``unknown()``/``*`` appear only where they are meaningful
  (assignment right-hand sides, call arguments, and — for ``*`` — branch
  conditions), never nested inside boolean operators;
- parallel assignments have matching arities and distinct targets;
- every ``goto`` targets an existing label, and labels are unique within
  a procedure;
- calls name existing procedures with matching argument/result arities;
- every ``return`` carries exactly the procedure's declared number of
  values;
- the ``enforce`` expression is deterministic and in scope.
"""

from repro.boolprog import ast as B


class ValidationError(Exception):
    """Carries the full list of problems found."""

    def __init__(self, problems):
        super().__init__("; ".join(problems))
        self.problems = list(problems)


class _Validator:
    def __init__(self, program):
        self.program = program
        self.problems = []

    def problem(self, text):
        self.problems.append(text)

    def run(self):
        seen_globals = set()
        for name in self.program.globals:
            if name in seen_globals:
                self.problem("duplicate global %r" % name)
            seen_globals.add(name)
        for proc in self.program.procedures.values():
            self._check_procedure(proc)
        if self.problems:
            raise ValidationError(self.problems)
        return True

    # -- procedures -----------------------------------------------------------

    def _check_procedure(self, proc):
        scope = set(self.program.globals)
        for name in proc.formals + proc.locals:
            if name in proc.formals and name in proc.locals:
                self.problem("%s: %r is both formal and local" % (proc.name, name))
            scope.add(name)
        if len(set(proc.formals)) != len(proc.formals):
            self.problem("%s: duplicate formals" % proc.name)
        if len(set(proc.locals)) != len(proc.locals):
            self.problem("%s: duplicate locals" % proc.name)
        labels = self._collect_labels(proc)
        if proc.enforce is not None:
            self._check_expr(proc, proc.enforce, scope, allow_nondet=False)
        self._check_body(proc, proc.body, scope, labels)

    def _collect_labels(self, proc):
        labels = set()

        def visit(stmts):
            for stmt in stmts:
                for label in stmt.labels:
                    if label in labels:
                        self.problem(
                            "%s: duplicate label %r" % (proc.name, label)
                        )
                    labels.add(label)
                for sub in stmt.substatements():
                    visit(sub)

        visit(proc.body)
        return labels

    # -- statements --------------------------------------------------------------

    def _check_body(self, proc, stmts, scope, labels):
        for stmt in stmts:
            self._check_stmt(proc, stmt, scope, labels)

    def _check_stmt(self, proc, stmt, scope, labels):
        where = proc.name
        if isinstance(stmt, B.BSkip):
            return
        if isinstance(stmt, B.BAssign):
            if len(stmt.targets) != len(stmt.values):
                self.problem("%s: assignment arity mismatch" % where)
            if len(set(stmt.targets)) != len(stmt.targets):
                self.problem("%s: repeated target in parallel assignment" % where)
            for target in stmt.targets:
                if target not in scope:
                    self.problem("%s: assignment to unknown %r" % (where, target))
            for value in stmt.values:
                self._check_rhs(proc, value, scope)
            return
        if isinstance(stmt, (B.BAssume, B.BAssert)):
            self._check_expr(proc, stmt.cond, scope, allow_nondet=False)
            return
        if isinstance(stmt, (B.BIf, B.BWhile)):
            cond = stmt.cond
            if not isinstance(cond, B.BNondet):
                self._check_expr(proc, cond, scope, allow_nondet=False)
            for sub in stmt.substatements():
                self._check_body(proc, sub, scope, labels)
            return
        if isinstance(stmt, B.BGoto):
            if stmt.label not in labels:
                self.problem("%s: goto unknown label %r" % (where, stmt.label))
            return
        if isinstance(stmt, B.BReturn):
            if len(stmt.values) != proc.returns:
                self.problem(
                    "%s: return carries %d values, procedure declares %d"
                    % (where, len(stmt.values), proc.returns)
                )
            for value in stmt.values:
                self._check_expr(proc, value, scope, allow_nondet=False)
            return
        if isinstance(stmt, B.BCall):
            callee = self.program.procedures.get(stmt.name)
            if callee is None:
                self.problem("%s: call to unknown procedure %r" % (where, stmt.name))
            else:
                if len(stmt.args) != len(callee.formals):
                    self.problem(
                        "%s: call to %s with %d args, expected %d"
                        % (where, stmt.name, len(stmt.args), len(callee.formals))
                    )
                if stmt.targets and len(stmt.targets) != callee.returns:
                    self.problem(
                        "%s: call to %s binds %d results, procedure returns %d"
                        % (where, stmt.name, len(stmt.targets), callee.returns)
                    )
            for target in stmt.targets:
                if target not in scope:
                    self.problem("%s: call result into unknown %r" % (where, target))
            for arg in stmt.args:
                self._check_rhs(proc, arg, scope)
            return
        self.problem("%s: unknown statement %r" % (where, type(stmt).__name__))

    # -- expressions ----------------------------------------------------------------

    def _check_rhs(self, proc, value, scope):
        """Assignment RHS / call argument: choose/unknown allowed at top."""
        if isinstance(value, B.BUnknown) or isinstance(value, B.BNondet):
            return
        if isinstance(value, B.BChoose):
            self._check_expr(proc, value.pos, scope, allow_nondet=False)
            self._check_expr(proc, value.neg, scope, allow_nondet=False)
            return
        self._check_expr(proc, value, scope, allow_nondet=False)

    def _check_expr(self, proc, expr, scope, allow_nondet):
        if isinstance(expr, B.BConst):
            return
        if isinstance(expr, B.BVar):
            if expr.name not in scope:
                self.problem(
                    "%s: reference to unknown variable %r" % (proc.name, expr.name)
                )
            return
        if isinstance(expr, (B.BNondet, B.BUnknown, B.BChoose)):
            if not allow_nondet:
                self.problem(
                    "%s: nondeterministic expression in deterministic position"
                    % proc.name
                )
            return
        for child in expr.children():
            self._check_expr(proc, child, scope, allow_nondet=False)


def validate_bool_program(program):
    """Raise :class:`ValidationError` unless ``program`` is well formed."""
    return _Validator(program).run()
